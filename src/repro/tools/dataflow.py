"""Interprocedural ``crowdlint`` tier: the CW1xx rule family.

The per-file rules in :mod:`repro.tools.rules` see one AST at a time;
the rules here consume the whole-program :class:`~repro.tools.graph.ProjectGraph`
and check invariants that only exist *between* modules:

``CW101`` **RNG provenance.**  A function that accepts an ``rng`` or
``seed`` parameter promises determinism to its caller, so it must not
transitively reach fresh-entropy creation (``default_rng()`` or
``ensure_rng()`` with no seed) anywhere outside ``util/rng.py`` — the
one module allowed to mint generators.  The reachability walk follows
the call graph breadth-first with a visited set (call-graph cycles
terminate) and reports the shortest call path as the evidence chain.
The second half of the rule guards the process boundary: a callable
submitted to ``util/parallel.run_tasks`` / ``run_recorded_tasks`` must
receive pre-spawned child generators as arguments, never capture a
parent RNG in a closure — closure-captured generators are shared
mutable state across workers and destroy bit-identity.

``CW102`` **Layering.**  The declared layer DAG
(``util/geo/radio → core/crowd/sim → middleware → runtime →
experiments/cli``) is enforced on the import graph.  Imports inside
``if TYPE_CHECKING:`` are annotation-only and exempt; every runtime
back-edge must be listed in the manifest's allowlist with a comment
explaining why it is sanctioned.

``CW103`` **Wire-schema conformance.**  Every member of the
``ProtocolMessage`` union in ``middleware/protocol.py`` must be
registered in ``_MESSAGE_TYPES`` and have both an encoder branch
(``isinstance`` in ``_body_of``/``encode_message``) and a decoder
branch (``cls is X`` in ``_rebuild``/``decode_message``); conversely,
``runtime/`` and ``middleware/fleet.py`` may never hand-roll a wire
body as a dict literal with a ``"type"`` key — bodies go through the
codec, in both directions.

``CW104`` **Telemetry-span discipline.**  Every ``recorder.span(...)``
name must be a static string under the prefix families documented in
docs/OBSERVABILITY.md, so dashboards never see dynamic span names.

Findings are reported in the file where the evidence chain *starts*
(the def site for CW101, the import statement for CW102, …), and the
shared pragma machinery (:mod:`repro.tools.pragmas`) applies to them
exactly as it does to per-file findings.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Dict,
    FrozenSet,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.tools.findings import Finding, sort_findings
from repro.tools.graph import FunctionNode, ModuleNode, ProjectGraph
from repro.tools.pragmas import parse_pragmas

__all__ = [
    "DEFAULT_MANIFEST",
    "LayerManifest",
    "PROJECT_RULES",
    "ProjectRule",
    "SPAN_PREFIXES",
    "analyze_project",
    "check_project",
]


@dataclass(frozen=True)
class ProjectRule:
    """Metadata for one whole-program rule (mirrors the per-file Rule)."""

    rule_id: str
    summary: str


PROJECT_RULES: Tuple[ProjectRule, ...] = (
    ProjectRule(
        "CW101",
        "rng/seed-taking functions must not transitively create fresh "
        "entropy outside util/rng.py, and callables submitted to "
        "util/parallel.run_tasks must take pre-spawned child RNGs as "
        "arguments, not capture a parent RNG in a closure",
    ),
    ProjectRule(
        "CW102",
        "imports must follow the layer DAG util/geo/radio -> "
        "core/crowd/sim -> middleware -> runtime -> experiments/cli; "
        "runtime back-edges require an allowlist entry",
    ),
    ProjectRule(
        "CW103",
        "every ProtocolMessage has a registered encoder and decoder, and "
        "runtime/ + middleware/fleet.py never build wire bodies as raw "
        "dict literals with a 'type' key",
    ),
    ProjectRule(
        "CW104",
        "every recorder.span(...) name is a static string under the "
        "prefix families documented in docs/OBSERVABILITY.md",
    ),
)

#: The sanctioned span-name families (docs/OBSERVABILITY.md §span
#: inventory).  A new family means a docs update *and* an entry here.
SPAN_PREFIXES: Tuple[str, ...] = (
    "engine.",
    "stream.",
    "server.",
    "fleet.",
    "scheduler.",
    "estimate.",
    "transport.",
    "durable.",
    "serving.",
    "crowd.",
)

#: Functions in ``util/parallel`` that ship a callable across the
#: process boundary (CW101's closure-capture check watches their call
#: sites).
_PARALLEL_SUBMIT: FrozenSet[str] = frozenset(
    {"run_tasks", "run_recorded_tasks"}
)


# ---------------------------------------------------------------------------
# Layer manifest (CW102)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LayerManifest:
    """The declared layer DAG of the project.

    ``layers`` is ordered bottom (most foundational) to top; each entry
    is ``(layer name, top packages)``.  An import may point at the same
    layer or any layer *below* the importer's; pointing upward is a
    back-edge and must appear in ``allowed_back_edges`` (pairs of fully
    qualified module names) to pass.
    """

    layers: Tuple[Tuple[str, Tuple[str, ...]], ...]
    allowed_back_edges: FrozenSet[Tuple[str, str]] = field(
        default_factory=frozenset
    )

    def layer_of(self, top_package: str) -> Optional[int]:
        """Layer index of a top package, ``None`` when unassigned."""
        for index, (_, packages) in enumerate(self.layers):
            if top_package in packages:
                return index
        return None

    def layer_name(self, index: int) -> str:
        return self.layers[index][0]

    def package_layers(self) -> Dict[str, str]:
        """Top package → layer name (the ``to_dot`` clustering input)."""
        return {
            package: name
            for name, packages in self.layers
            for package in packages
        }

    def chain(self) -> str:
        """Human-readable bottom→top summary of the DAG."""
        return " -> ".join(name for name, _ in self.layers)


#: The repository's layer manifest.  Grounded in the measured import
#: graph (``crowdwifi-repro lint --graph-dot``); same-layer imports are
#: always allowed.  Every runtime back-edge needs an entry in the
#: allowlist below *with a comment saying why it is sanctioned* — see
#: CONTRIBUTING.md for the policy.
DEFAULT_MANIFEST = LayerManifest(
    layers=(
        (
            "foundation",
            ("util", "geo", "radio", "obs", "metrics", "mobility", "tools"),
        ),
        ("domain", ("core", "crowd", "sim", "handoff", "baselines")),
        ("middleware", ("middleware",)),
        ("runtime", ("runtime",)),
        ("apps", ("experiments", "cli", "repro")),
    ),
    allowed_back_edges=frozenset(
        {
            # FleetCampaign.run defers this import so the middleware can
            # drive the runtime scheduler without a module-level cycle;
            # the seam is documented in docs/RUNTIME.md.
            ("repro.middleware.fleet", "repro.runtime.scheduler"),
        }
    ),
)


# ---------------------------------------------------------------------------
# Shared AST helpers
# ---------------------------------------------------------------------------


def _call_name(call: ast.Call) -> Optional[str]:
    """The trailing name of a call target (``a.b.f(...)`` → ``f``)."""
    if isinstance(call.func, ast.Name):
        return call.func.id
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return None


def _is_rng_home(module_name: str) -> bool:
    """Whether a module is ``util/rng.py`` — the entropy-minting home."""
    return module_name.split(".")[-2:] == ["util", "rng"]


def _is_parallel_home(module_name: str) -> bool:
    return module_name.split(".")[-2:] == ["util", "parallel"]


def _short(qualname: str) -> str:
    """``repro.core.engine:Engine.run`` → ``core.engine:Engine.run``."""
    module, _, name = qualname.partition(":")
    parts = module.split(".")
    trimmed = ".".join(parts[1:]) if len(parts) > 1 else module
    return f"{trimmed}:{name}" if name else trimmed


# ---------------------------------------------------------------------------
# CW101 — RNG provenance
# ---------------------------------------------------------------------------


def _rng_like_param(name: str) -> bool:
    return (
        name in ("rng", "seed")
        or name.endswith("_rng")
        or name.endswith("_seed")
    )


def _rng_like_capture(name: str) -> bool:
    """Closure captures that look like a *generator* (not a plain seed)."""
    return name == "rng" or name.endswith("_rng")


def _entropy_site(call: ast.Call) -> Optional[str]:
    """Describe a fresh-entropy creation site, or ``None``.

    ``default_rng()`` with no seed and ``ensure_rng()`` with no (or an
    explicitly ``None``) argument both mint a generator from OS entropy.
    """
    name = _call_name(call)
    if name == "default_rng":
        if not call.args and not call.keywords:
            return "default_rng() with no seed"
        return None
    if name == "ensure_rng":
        if not call.args and not call.keywords:
            return "ensure_rng() with no seed"
        if (
            call.args
            and isinstance(call.args[0], ast.Constant)
            and call.args[0].value is None
        ):
            return "ensure_rng(None)"
        for keyword in call.keywords:
            if (
                keyword.arg == "rng"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is None
            ):
                return "ensure_rng(rng=None)"
    return None


def _collect_entropy_sites(
    graph: ProjectGraph,
) -> Dict[str, Tuple[int, str]]:
    """Function qualname → first fresh-entropy site in its body."""
    sites: Dict[str, Tuple[int, str]] = {}
    for func in graph.functions.values():
        if _is_rng_home(func.module):
            continue
        for node in ast.walk(func.node):
            if isinstance(node, ast.Call):
                described = _entropy_site(node)
                if described is not None:
                    sites[func.qualname] = (node.lineno, described)
                    break
    return sites


def _entropy_path(
    graph: ProjectGraph,
    start: str,
    sites: Dict[str, Tuple[int, str]],
) -> Optional[List[str]]:
    """Shortest call path from ``start`` to a fresh-entropy site.

    Breadth-first with a visited set, so call-graph cycles terminate.
    """
    parents: Dict[str, Optional[str]] = {start: None}
    queue: deque[str] = deque([start])
    while queue:
        current = queue.popleft()
        if current in sites:
            path: List[str] = []
            cursor: Optional[str] = current
            while cursor is not None:
                path.append(cursor)
                cursor = parents[cursor]
            return list(reversed(path))
        for edge in graph.callees(current):
            if edge.callee not in parents:
                parents[edge.callee] = current
                queue.append(edge.callee)
    return None


def _bound_names(node: ast.AST) -> Set[str]:
    """Every name the closure binds itself (params, stores, defs)."""
    bound: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and isinstance(
            sub.ctx, (ast.Store, ast.Del)
        ):
            bound.add(sub.id)
        elif isinstance(sub, ast.arg):
            bound.add(sub.arg)
        elif isinstance(
            sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            bound.add(sub.name)
    return bound


def _free_loads(node: ast.AST) -> Set[str]:
    """Names the closure reads without binding — its captures."""
    bound = _bound_names(node)
    return {
        sub.id
        for sub in ast.walk(node)
        if isinstance(sub, ast.Name)
        and isinstance(sub.ctx, ast.Load)
        and sub.id not in bound
    }


def _closure_for(
    func: FunctionNode, fn_arg: ast.expr
) -> Optional[Tuple[ast.AST, str, int]]:
    """The closure a ``run_tasks`` first argument refers to, if local.

    Returns ``(node, label, def_lineno)`` for a lambda or a function
    defined *inside* the submitting function; module-level callables
    capture nothing and are skipped.
    """
    if isinstance(fn_arg, ast.Lambda):
        return fn_arg, "lambda", fn_arg.lineno
    if isinstance(fn_arg, ast.Name):
        for sub in ast.walk(func.node):
            if (
                isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef))
                and sub is not func.node
                and sub.name == fn_arg.id
            ):
                return sub, f"'{sub.name}'", sub.lineno
    return None


def _check_rng_provenance(graph: ProjectGraph) -> List[Finding]:
    findings: List[Finding] = []
    sites = _collect_entropy_sites(graph)

    # Part 1: rng/seed-taking functions reaching fresh entropy.
    for qualname in sorted(graph.functions):
        func = graph.functions[qualname]
        if _is_rng_home(func.module):
            continue
        if not any(_rng_like_param(p) for p in func.params):
            continue
        path = _entropy_path(graph, qualname, sites)
        if path is None:
            continue
        sink = graph.functions[path[-1]]
        sink_line, described = sites[path[-1]]
        sink_rel = graph.modules[sink.module].rel
        chain = " -> ".join(_short(step) for step in path)
        findings.append(
            Finding(
                path=graph.modules[func.module].rel,
                line=func.lineno,
                col=1,
                rule="CW101",
                message=(
                    f"'{_short(qualname)}' takes an rng/seed parameter "
                    f"but reaches fresh-entropy creation: {chain}; "
                    f"{described} at {sink_rel}:{sink_line} — thread the "
                    "caller's generator (util/rng.spawn_children) instead "
                    "of minting entropy mid-pipeline"
                ),
            )
        )

    # Part 2: closures submitted to the parallel driver must not capture
    # a parent RNG — children are pre-spawned and passed as arguments.
    for qualname in sorted(graph.functions):
        func = graph.functions[qualname]
        ensure_assigned: Set[str] = set()
        spawn_assigned: Set[str] = set()
        for sub in ast.walk(func.node):
            if isinstance(sub, ast.Assign) and isinstance(
                sub.value, ast.Call
            ):
                called = _call_name(sub.value)
                for target in sub.targets:
                    if isinstance(target, ast.Name):
                        if called == "ensure_rng":
                            ensure_assigned.add(target.id)
                        elif called == "spawn_children":
                            spawn_assigned.add(target.id)
        for node in ast.walk(func.node):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            callee = graph.resolve_call(func, node)
            if callee is None:
                continue
            callee_module, _, callee_name = callee.partition(":")
            if not (
                _is_parallel_home(callee_module)
                and callee_name in _PARALLEL_SUBMIT
            ):
                continue
            closure = _closure_for(func, node.args[0])
            if closure is None:
                continue
            closure_node, label, def_line = closure
            captured = sorted(
                name
                for name in _free_loads(closure_node)
                if (_rng_like_capture(name) or name in ensure_assigned)
                and name not in spawn_assigned
            )
            if not captured:
                continue
            names = ", ".join(f"'{name}'" for name in captured)
            findings.append(
                Finding(
                    path=graph.modules[func.module].rel,
                    line=node.lineno,
                    col=node.col_offset + 1,
                    rule="CW101",
                    message=(
                        f"callable {label} (defined at line {def_line} in "
                        f"'{_short(qualname)}') submitted to "
                        f"util.parallel.{callee_name} captures parent RNG "
                        f"{names} in its closure; pre-spawn child "
                        "generators with util/rng.spawn_children and pass "
                        "one per task as an argument"
                    ),
                )
            )
    return findings


# ---------------------------------------------------------------------------
# CW102 — layering
# ---------------------------------------------------------------------------


def _check_layering(
    graph: ProjectGraph, manifest: LayerManifest
) -> List[Finding]:
    findings: List[Finding] = []
    unknown: Dict[str, ModuleNode] = {}
    for module in graph.modules.values():
        if manifest.layer_of(module.top_package) is None:
            existing = unknown.get(module.top_package)
            if existing is None or module.rel < existing.rel:
                unknown[module.top_package] = module
    for package in sorted(unknown):
        module = unknown[package]
        findings.append(
            Finding(
                path=module.rel,
                line=1,
                col=1,
                rule="CW102",
                message=(
                    f"top package '{package}' is not assigned to any "
                    "layer in the manifest; add it to DEFAULT_MANIFEST "
                    "in repro/tools/dataflow.py (layer DAG: "
                    f"{manifest.chain()})"
                ),
            )
        )
    seen: Set[Tuple[str, str, int]] = set()
    for edge in graph.import_edges():
        if edge.type_checking:
            continue  # annotation-only edges never constrain layering
        src_module = graph.modules[edge.src]
        dst_module = graph.modules[edge.dst]
        src_layer = manifest.layer_of(src_module.top_package)
        dst_layer = manifest.layer_of(dst_module.top_package)
        if src_layer is None or dst_layer is None:
            continue  # the unassigned package is already reported above
        if dst_layer <= src_layer:
            continue
        if (edge.src, edge.dst) in manifest.allowed_back_edges:
            continue
        key = (edge.src, edge.dst, edge.lineno)
        if key in seen:
            continue
        seen.add(key)
        deferred = " (deferred import)" if edge.function_scoped else ""
        findings.append(
            Finding(
                path=src_module.rel,
                line=edge.lineno,
                col=edge.col,
                rule="CW102",
                message=(
                    f"{edge.src} [layer "
                    f"'{manifest.layer_name(src_layer)}'] imports "
                    f"{edge.dst} [layer "
                    f"'{manifest.layer_name(dst_layer)}'] — an upward "
                    f"edge against the layer DAG {manifest.chain()}"
                    f"{deferred}; sanctioned back-edges need an "
                    "allowed_back_edges entry with a comment (see "
                    "CONTRIBUTING.md)"
                ),
            )
        )
    return findings


# ---------------------------------------------------------------------------
# CW103 — wire-schema conformance
# ---------------------------------------------------------------------------

_ENCODER_FUNCTIONS = ("_body_of", "encode_message")
_DECODER_FUNCTIONS = ("_rebuild", "decode_message")


def _union_members(tree: ast.Module) -> Tuple[Dict[str, int], int]:
    """``ProtocolMessage`` union member names → line, plus the def line."""
    members: Dict[str, int] = {}
    union_line = 0
    for stmt in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = list(stmt.targets), stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if not any(
            isinstance(t, ast.Name) and t.id == "ProtocolMessage"
            for t in targets
        ):
            continue
        if not isinstance(value, ast.Subscript):
            continue
        union_line = stmt.lineno
        sliced = value.slice
        elements = (
            list(sliced.elts) if isinstance(sliced, ast.Tuple) else [sliced]
        )
        for element in elements:
            if isinstance(element, ast.Name):
                members[element.id] = element.lineno
    return members, union_line


def _registered_tags(tree: ast.Module) -> Set[str]:
    """Class names listed as values of the ``_MESSAGE_TYPES`` registry."""
    tags: Set[str] = set()
    for stmt in tree.body:
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "_MESSAGE_TYPES"
            for t in stmt.targets
        ):
            value = stmt.value
        elif (
            isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
            and stmt.target.id == "_MESSAGE_TYPES"
        ):
            value = stmt.value
        if isinstance(value, ast.Dict):
            for entry in value.values:
                if isinstance(entry, ast.Name):
                    tags.add(entry.id)
    return tags


def _encoder_classes(tree: ast.Module) -> Set[str]:
    """Classes with an ``isinstance`` branch in the encoder functions."""
    classes: Set[str] = set()
    for stmt in ast.walk(tree):
        if (
            not isinstance(stmt, ast.FunctionDef)
            or stmt.name not in _ENCODER_FUNCTIONS
        ):
            continue
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "isinstance"
                and len(node.args) == 2
            ):
                second = node.args[1]
                elements = (
                    list(second.elts)
                    if isinstance(second, ast.Tuple)
                    else [second]
                )
                classes.update(
                    e.id for e in elements if isinstance(e, ast.Name)
                )
    return classes


def _decoder_classes(tree: ast.Module) -> Set[str]:
    """Classes with a ``cls is X`` branch in the decoder functions."""
    classes: Set[str] = set()
    for stmt in ast.walk(tree):
        if (
            not isinstance(stmt, ast.FunctionDef)
            or stmt.name not in _DECODER_FUNCTIONS
        ):
            continue
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Compare)
                and isinstance(node.left, ast.Name)
                and node.left.id == "cls"
                and any(isinstance(op, ast.Is) for op in node.ops)
            ):
                classes.update(
                    c.id
                    for c in node.comparators
                    if isinstance(c, ast.Name)
                )
    return classes


def _check_wire_schema(graph: ProjectGraph) -> List[Finding]:
    findings: List[Finding] = []
    protocol: Optional[ModuleNode] = None
    for module in graph.modules.values():
        if module.name.split(".")[-2:] == ["middleware", "protocol"]:
            protocol = module
            break
    if protocol is not None:
        members, union_line = _union_members(protocol.tree)
        tags = _registered_tags(protocol.tree)
        encoders = _encoder_classes(protocol.tree)
        decoders = _decoder_classes(protocol.tree)
        class_lines = {
            stmt.name: stmt.lineno
            for stmt in protocol.tree.body
            if isinstance(stmt, ast.ClassDef)
        }
        for name in sorted(members):
            missing = []
            if name not in tags:
                missing.append("a _MESSAGE_TYPES wire tag")
            if name not in encoders:
                missing.append(
                    "an encoder branch "
                    f"({' / '.join(_ENCODER_FUNCTIONS)})"
                )
            if name not in decoders:
                missing.append(
                    "a decoder branch "
                    f"({' / '.join(_DECODER_FUNCTIONS)})"
                )
            if not missing:
                continue
            findings.append(
                Finding(
                    path=protocol.rel,
                    line=class_lines.get(name, members[name]),
                    col=1,
                    rule="CW103",
                    message=(
                        f"'{name}' is in the ProtocolMessage union "
                        f"(line {union_line}) but lacks "
                        f"{' and '.join(missing)}; every wire type must "
                        "round-trip through the codec"
                    ),
                )
            )
        for name in sorted(tags - set(members)):
            findings.append(
                Finding(
                    path=protocol.rel,
                    line=class_lines.get(name, 1),
                    col=1,
                    rule="CW103",
                    message=(
                        f"'{name}' is registered in _MESSAGE_TYPES but is "
                        "not a ProtocolMessage union member; the schema "
                        "and the registry must agree"
                    ),
                )
            )
    codec_rel = (
        protocol.rel if protocol is not None else "middleware/protocol.py"
    )
    for module in graph.modules.values():
        is_fleet = module.name.split(".")[-2:] == ["middleware", "fleet"]
        if module.top_package != "runtime" and not is_fleet:
            continue
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Dict) and any(
                isinstance(key, ast.Constant) and key.value == "type"
                for key in node.keys
                if key is not None
            ):
                findings.append(
                    Finding(
                        path=module.rel,
                        line=node.lineno,
                        col=node.col_offset + 1,
                        rule="CW103",
                        message=(
                            "raw wire-body dict literal with a 'type' "
                            "key; construct and parse protocol bodies "
                            f"only through the codec in {codec_rel} "
                            "(encode_message / decode_message)"
                        ),
                    )
                )
    return findings


# ---------------------------------------------------------------------------
# CW104 — telemetry-span discipline
# ---------------------------------------------------------------------------


def _check_span_discipline(graph: ProjectGraph) -> List[Finding]:
    findings: List[Finding] = []
    families = ", ".join(SPAN_PREFIXES)
    for module in graph.modules.values():
        if module.name.split(".")[-2:] == ["obs", "recorder"]:
            continue  # the span machinery itself, not an instrumentation site
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "span"
            ):
                continue
            name_arg: Optional[ast.expr] = None
            if node.args:
                name_arg = node.args[0]
            else:
                for keyword in node.keywords:
                    if keyword.arg == "name":
                        name_arg = keyword.value
            if name_arg is None:
                message = "span(...) call without a name argument"
            elif isinstance(name_arg, ast.Constant) and isinstance(
                name_arg.value, str
            ):
                if any(
                    name_arg.value.startswith(prefix)
                    for prefix in SPAN_PREFIXES
                ):
                    continue
                message = (
                    f"span name '{name_arg.value}' is outside the "
                    f"documented prefix families ({families}); add the "
                    "family to docs/OBSERVABILITY.md and "
                    "repro.tools.dataflow.SPAN_PREFIXES or rename the span"
                )
            else:
                kind = (
                    "an f-string"
                    if isinstance(name_arg, ast.JoinedStr)
                    else "a computed expression"
                )
                message = (
                    f"span name is {kind}; spans must be static string "
                    "literals under the documented prefixes "
                    f"({families}) so dashboards never see dynamic names "
                    "(docs/OBSERVABILITY.md)"
                )
            findings.append(
                Finding(
                    path=module.rel,
                    line=node.lineno,
                    col=node.col_offset + 1,
                    rule="CW104",
                    message=message,
                )
            )
    return findings


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def check_project(
    graph: ProjectGraph,
    *,
    manifest: Optional[LayerManifest] = None,
    disabled: Optional[Set[str]] = None,
) -> List[Finding]:
    """Run every enabled CW1xx rule over a built project graph.

    Pragma suppression uses the graph's own module sources, keyed by
    the repo-relative paths findings carry, so ``# crowdlint:
    disable=...`` / ``disable-file=...`` work identically for the
    whole-program tier.
    """
    layer_manifest = DEFAULT_MANIFEST if manifest is None else manifest
    off = disabled or set()
    findings: List[Finding] = []
    if "CW101" not in off:
        findings.extend(_check_rng_provenance(graph))
    if "CW102" not in off:
        findings.extend(_check_layering(graph, layer_manifest))
    if "CW103" not in off:
        findings.extend(_check_wire_schema(graph))
    if "CW104" not in off:
        findings.extend(_check_span_discipline(graph))
    pragma_maps = {
        module.rel: parse_pragmas(module.source)
        for module in graph.modules.values()
    }
    kept = [
        finding
        for finding in findings
        if finding.path not in pragma_maps
        or not pragma_maps[finding.path].suppresses(finding)
    ]
    return sort_findings(kept)


def analyze_project(
    src_root: Path,
    *,
    package: str = "repro",
    root: Optional[Path] = None,
    manifest: Optional[LayerManifest] = None,
    disabled: Optional[Set[str]] = None,
) -> List[Finding]:
    """Build the project graph under ``src_root`` and lint it.

    ``root`` anchors the repo-relative paths findings carry (defaults
    to ``src_root``'s parent, i.e. ``src/repro/...`` paths).
    """
    graph = ProjectGraph.build(src_root, package=package, rel_base=root)
    return check_project(graph, manifest=manifest, disabled=disabled)
