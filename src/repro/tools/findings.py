"""Finding records and output formatting for :mod:`repro.tools.lint`.

A :class:`Finding` is one rule violation at one source location.  The
linter collects findings across files, sorts them into a stable order
(path, line, column, rule id), and renders them either as human-readable
``path:line:col: CWxxx message`` lines or as a JSON document for tooling.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import List, Sequence

__all__ = ["Finding", "render_text", "render_json", "sort_findings"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        """Render as ``path:line:col: CWxxx message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def sort_findings(findings: Sequence[Finding]) -> List[Finding]:
    """Stable order: path, then line, then column, then rule id."""
    return sorted(findings)


def render_text(findings: Sequence[Finding]) -> str:
    """One ``path:line:col: CWxxx message`` line per finding plus a summary."""
    ordered = sort_findings(findings)
    lines = [finding.format() for finding in ordered]
    noun = "finding" if len(ordered) == 1 else "findings"
    lines.append(f"crowdlint: {len(ordered)} {noun}")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """A JSON document: ``{"count": N, "findings": [...]}``."""
    ordered = sort_findings(findings)
    payload = {
        "count": len(ordered),
        "findings": [asdict(finding) for finding in ordered],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
