"""Whole-program project model: module, import, symbol and call graphs.

:class:`ProjectGraph` parses every module of a package tree (by default
``src/repro``) with :mod:`ast` — **no import is ever executed** — and
resolves three layers of structure the per-file rules cannot see:

* the **module graph**: which module imports which, with every edge
  annotated by line, ``TYPE_CHECKING``-only-ness (annotation-only edges
  must not constrain the runtime layering), function-scopedness (a
  deliberately deferred import is still a runtime edge, but a visibly
  marked one), and star-ness;
* the **symbol table**: what each module binds at top level, with
  ``from x import y`` chains (and ``import *``) resolved back to their
  defining module;
* the **call graph**: which function statically calls which, across
  module boundaries, resolved through the symbol table (plain names,
  ``module.attr`` on imported modules, and ``self.``/``cls.`` method
  calls).  Resolution is deliberately conservative: a call that cannot
  be resolved statically simply produces no edge.

The interprocedural analyses in :mod:`repro.tools.dataflow` (rules
CW101–CW104) consume this model; every analysis walks the graph with an
explicit visited set, so cycles in either graph are handled, not
special-cased.  Building the graph over the full reproduction tree is a
sub-second operation (CI asserts < 5 s), so the whole-program tier can
run on every ``crowdwifi-repro lint`` invocation.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

__all__ = [
    "CallEdge",
    "FunctionNode",
    "ImportEdge",
    "ModuleNode",
    "ProjectGraph",
    "Resolution",
]

#: How many ``from a import b`` re-export hops symbol resolution will
#: follow before giving up (guards against pathological import cycles).
_MAX_RESOLUTION_HOPS = 16


@dataclass(frozen=True)
class ImportEdge:
    """One module-level dependency: ``src`` imports from ``dst``.

    ``names`` are the imported symbols (empty for a plain ``import x``),
    ``star`` marks ``from dst import *``.  ``type_checking`` edges exist
    only for annotations (inside ``if TYPE_CHECKING:``) and must not
    constrain runtime layering; ``function_scoped`` edges are deferred
    imports inside a function body — real runtime edges, but visibly
    deliberate ones.
    """

    src: str
    dst: str
    lineno: int
    col: int
    names: Tuple[str, ...] = ()
    star: bool = False
    type_checking: bool = False
    function_scoped: bool = False


@dataclass(frozen=True)
class CallEdge:
    """One statically resolved call: ``caller`` invokes ``callee``."""

    caller: str
    callee: str
    lineno: int


@dataclass
class FunctionNode:
    """One function or method in the project.

    ``qualname`` is ``module:name`` or ``module:Class.name``; ``params``
    are every declared argument name (positional, keyword-only and
    positional-only).  ``node`` is the parsed body — the dataflow pass
    scans it (including nested closures) for rule-specific sites.
    """

    qualname: str
    module: str
    name: str
    class_name: Optional[str]
    lineno: int
    params: Tuple[str, ...]
    node: ast.AST


@dataclass
class ModuleNode:
    """One parsed module of the project."""

    name: str
    path: Path
    rel: str
    tree: ast.Module
    source: str
    is_package: bool
    imports: List[ImportEdge] = field(default_factory=list)
    #: top-level binding -> resolution hint (see ``Resolution``)
    bindings: Dict[str, "Resolution"] = field(default_factory=dict)
    #: modules star-imported at top level, in order
    star_sources: List[str] = field(default_factory=list)

    @property
    def top_package(self) -> str:
        """The first package component below the root package.

        ``repro.core.engine`` → ``core``; top-level modules such as
        ``repro.cli`` (and the root ``__init__``) return their own stem
        (``cli`` / ``repro``) so callers can treat them explicitly.
        """
        parts = self.name.split(".")
        if len(parts) == 1:
            return parts[0]
        return parts[1]


@dataclass(frozen=True)
class Resolution:
    """What a name in a module resolves to.

    ``kind`` is one of ``function`` / ``class`` / ``module`` / ``data``.
    For functions and classes ``target`` is the defining qualname
    (``module:Name``); for modules it is the module name; for data it is
    the binding module's name.
    """

    kind: str
    target: str


def _is_type_checking_test(test: ast.expr) -> bool:
    if isinstance(test, ast.Name) and test.id == "TYPE_CHECKING":
        return True
    return (
        isinstance(test, ast.Attribute)
        and test.attr == "TYPE_CHECKING"
        and isinstance(test.value, ast.Name)
        and test.value.id == "typing"
    )


class ProjectGraph:
    """The project model: modules, imports, symbols and calls.

    Build one with :meth:`build`; all attributes are plain dicts/lists
    in deterministic (sorted-file) order, so analyses over the graph
    produce stable findings run to run.
    """

    def __init__(self, package: str) -> None:
        self.package = package
        self.modules: Dict[str, ModuleNode] = {}
        self.functions: Dict[str, FunctionNode] = {}
        #: files skipped because they failed to parse (path, error line);
        #: the per-file tier reports these as CW000.
        self.skipped: List[Tuple[Path, int]] = []
        self._call_edges: Dict[str, List[CallEdge]] = {}

    # -- construction ----------------------------------------------------

    @classmethod
    def build(
        cls,
        src_root: Path,
        *,
        package: str = "repro",
        rel_base: Optional[Path] = None,
    ) -> "ProjectGraph":
        """Parse ``src_root/<package>`` into a project graph.

        ``rel_base`` controls the repo-relative paths findings carry;
        it defaults to ``src_root``'s parent so a standard layout yields
        ``src/repro/...`` paths, matching the per-file lint tier.
        """
        package_dir = src_root / package
        if not package_dir.is_dir():
            raise FileNotFoundError(f"no package directory {package_dir}")
        base = (rel_base if rel_base is not None else src_root.parent).resolve()
        graph = cls(package)
        for file_path in sorted(package_dir.rglob("*.py")):
            if "__pycache__" in file_path.parts:
                continue
            graph._add_module(file_path.resolve(), src_root.resolve(), base)
        for module in graph.modules.values():
            graph._collect_imports(module)
            graph._collect_bindings(module)
            graph._collect_functions(module)
        for module in graph.modules.values():
            graph._collect_calls(module)
        return graph

    def _module_name(self, file_path: Path, src_root: Path) -> Tuple[str, bool]:
        rel_parts = file_path.relative_to(src_root).parts
        is_package = rel_parts[-1] == "__init__.py"
        parts = rel_parts[:-1] if is_package else (
            rel_parts[:-1] + (rel_parts[-1][:-3],)
        )
        return ".".join(parts), is_package

    def _add_module(
        self, file_path: Path, src_root: Path, rel_base: Path
    ) -> None:
        name, is_package = self._module_name(file_path, src_root)
        source = file_path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source)
        except SyntaxError as error:
            # The per-file tier reports the syntax error (CW000); the
            # project model records the skip and proceeds without the
            # broken module.
            self.skipped.append((file_path, error.lineno or 0))
            return
        try:
            rel = file_path.relative_to(rel_base).as_posix()
        except ValueError:
            rel = file_path.as_posix()
        self.modules[name] = ModuleNode(
            name=name,
            path=file_path,
            rel=rel,
            tree=tree,
            source=source,
            is_package=is_package,
        )

    # -- imports ---------------------------------------------------------

    def _resolve_module(self, dotted: str) -> Optional[str]:
        """Longest known prefix of a dotted path that is a project module."""
        parts = dotted.split(".")
        for end in range(len(parts), 0, -1):
            candidate = ".".join(parts[:end])
            if candidate in self.modules:
                return candidate
        return None

    def _import_base(self, module: ModuleNode, node: ast.ImportFrom) -> Optional[str]:
        """The absolute module a ``from ... import`` statement targets."""
        if node.level == 0:
            return node.module
        parts = module.name.split(".")
        if not module.is_package:
            parts = parts[:-1]
        drop = node.level - 1
        if drop > len(parts):
            return None
        if drop:
            parts = parts[: len(parts) - drop]
        if node.module:
            parts = parts + node.module.split(".")
        return ".".join(parts) if parts else None

    def _collect_imports(self, module: ModuleNode) -> None:
        def record(
            stmt: ast.stmt, type_checking: bool, function_scoped: bool
        ) -> None:
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    dst = self._resolve_module(alias.name)
                    if dst is not None:
                        module.imports.append(
                            ImportEdge(
                                src=module.name,
                                dst=dst,
                                lineno=stmt.lineno,
                                col=stmt.col_offset + 1,
                                type_checking=type_checking,
                                function_scoped=function_scoped,
                            )
                        )
            elif isinstance(stmt, ast.ImportFrom):
                base = self._import_base(module, stmt)
                if base is None:
                    return
                for alias in stmt.names:
                    if alias.name == "*":
                        dst = self._resolve_module(base)
                        if dst is not None:
                            module.imports.append(
                                ImportEdge(
                                    src=module.name,
                                    dst=dst,
                                    lineno=stmt.lineno,
                                    col=stmt.col_offset + 1,
                                    star=True,
                                    type_checking=type_checking,
                                    function_scoped=function_scoped,
                                )
                            )
                        continue
                    dst = self._resolve_module(f"{base}.{alias.name}")
                    if dst is None:
                        dst = self._resolve_module(base)
                    if dst is not None:
                        module.imports.append(
                            ImportEdge(
                                src=module.name,
                                dst=dst,
                                lineno=stmt.lineno,
                                col=stmt.col_offset + 1,
                                names=(alias.name,),
                                type_checking=type_checking,
                                function_scoped=function_scoped,
                            )
                        )

        def visit(
            stmts: Sequence[ast.stmt], type_checking: bool, scoped: bool
        ) -> None:
            for stmt in stmts:
                if isinstance(stmt, (ast.Import, ast.ImportFrom)):
                    record(stmt, type_checking, scoped)
                elif isinstance(stmt, ast.If):
                    inside = type_checking or _is_type_checking_test(stmt.test)
                    visit(stmt.body, inside, scoped)
                    visit(stmt.orelse, type_checking, scoped)
                elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    visit(stmt.body, type_checking, True)
                elif isinstance(stmt, ast.ClassDef):
                    visit(stmt.body, type_checking, scoped)
                elif isinstance(stmt, ast.Try):
                    visit(stmt.body, type_checking, scoped)
                    visit(stmt.orelse, type_checking, scoped)
                    visit(stmt.finalbody, type_checking, scoped)
                    for handler in stmt.handlers:
                        visit(handler.body, type_checking, scoped)
                elif isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                    visit(stmt.body, type_checking, scoped)
                    visit(stmt.orelse, type_checking, scoped)
                elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                    visit(stmt.body, type_checking, scoped)

        visit(module.tree.body, False, False)

    # -- symbols ---------------------------------------------------------

    def _collect_bindings(self, module: ModuleNode) -> None:
        for stmt in module.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                module.bindings[stmt.name] = Resolution(
                    "function", f"{module.name}:{stmt.name}"
                )
            elif isinstance(stmt, ast.ClassDef):
                module.bindings[stmt.name] = Resolution(
                    "class", f"{module.name}:{stmt.name}"
                )
            elif isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    if alias.asname:
                        # `import a.b.c as x` binds x to the module a.b.c
                        if alias.name in self.modules:
                            module.bindings[alias.asname] = Resolution(
                                "module", alias.name
                            )
                    else:
                        # `import a.b.c` binds only the top-level name a
                        top = alias.name.split(".")[0]
                        if top in self.modules:
                            module.bindings[top] = Resolution("module", top)
            elif isinstance(stmt, ast.ImportFrom):
                base = self._import_base(module, stmt)
                if base is None:
                    continue
                for alias in stmt.names:
                    if alias.name == "*":
                        src = self._resolve_module(base)
                        if src is not None:
                            module.star_sources.append(src)
                        continue
                    bound = alias.asname or alias.name
                    submodule = self._resolve_module(f"{base}.{alias.name}")
                    if submodule == f"{base}.{alias.name}":
                        module.bindings[bound] = Resolution("module", submodule)
                        continue
                    src = self._resolve_module(base)
                    if src is not None and src == base:
                        module.bindings[bound] = Resolution(
                            "reexport", f"{src}:{alias.name}"
                        )
            elif isinstance(stmt, ast.Assign):
                for target_node in stmt.targets:
                    if isinstance(target_node, ast.Name):
                        module.bindings.setdefault(
                            target_node.id, Resolution("data", module.name)
                        )
            elif isinstance(stmt, ast.AnnAssign):
                if isinstance(stmt.target, ast.Name):
                    module.bindings.setdefault(
                        stmt.target.id, Resolution("data", module.name)
                    )

    def resolve_name(
        self, module_name: str, name: str, _hops: int = 0
    ) -> Optional[Resolution]:
        """Resolve a top-level name of a module through import chains.

        Follows ``from a import b`` re-exports (and ``import *``
        sources, in order) up to a bounded number of hops; returns
        ``None`` for names the graph cannot pin down statically.
        """
        if _hops > _MAX_RESOLUTION_HOPS:
            return None
        module = self.modules.get(module_name)
        if module is None:
            return None
        resolution = module.bindings.get(name)
        if resolution is None:
            for star_src in module.star_sources:
                found = self.resolve_name(star_src, name, _hops + 1)
                if found is not None:
                    return found
            return None
        if resolution.kind == "reexport":
            src, _, original = resolution.target.partition(":")
            return self.resolve_name(src, original, _hops + 1)
        return resolution

    # -- functions & calls ----------------------------------------------

    @staticmethod
    def _params_of(
        node: Union[ast.FunctionDef, ast.AsyncFunctionDef]
    ) -> Tuple[str, ...]:
        args = node.args
        return tuple(
            a.arg for a in (args.posonlyargs + args.args + args.kwonlyargs)
        )

    def _collect_functions(self, module: ModuleNode) -> None:
        for stmt in module.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{module.name}:{stmt.name}"
                self.functions[qualname] = FunctionNode(
                    qualname=qualname,
                    module=module.name,
                    name=stmt.name,
                    class_name=None,
                    lineno=stmt.lineno,
                    params=self._params_of(stmt),
                    node=stmt,
                )
            elif isinstance(stmt, ast.ClassDef):
                for item in stmt.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        qualname = f"{module.name}:{stmt.name}.{item.name}"
                        self.functions[qualname] = FunctionNode(
                            qualname=qualname,
                            module=module.name,
                            name=item.name,
                            class_name=stmt.name,
                            lineno=item.lineno,
                            params=self._params_of(item),
                            node=item,
                        )

    def _callee_of(
        self, func: FunctionNode, call: ast.Call
    ) -> Optional[str]:
        """Statically resolve one call site to a project function."""
        target = call.func
        if isinstance(target, ast.Name):
            resolution = self.resolve_name(func.module, target.id)
            if resolution is None:
                return None
            if resolution.kind == "function":
                return self._as_function(resolution.target)
            if resolution.kind == "class":
                return self._as_function(f"{resolution.target}.__init__")
            return None
        if isinstance(target, ast.Attribute) and isinstance(
            target.value, ast.Name
        ):
            receiver = target.value.id
            if receiver in ("self", "cls") and func.class_name is not None:
                return self._as_function(
                    f"{func.module}:{func.class_name}.{target.attr}"
                )
            resolution = self.resolve_name(func.module, receiver)
            if resolution is not None and resolution.kind == "module":
                member = self.resolve_name(resolution.target, target.attr)
                if member is not None and member.kind == "function":
                    return self._as_function(member.target)
                if member is not None and member.kind == "class":
                    return self._as_function(f"{member.target}.__init__")
        return None

    def _as_function(self, qualname: str) -> Optional[str]:
        return qualname if qualname in self.functions else None

    def resolve_call(
        self, func: FunctionNode, call: ast.Call
    ) -> Optional[str]:
        """Resolve a call expression inside ``func`` to a project function.

        The public entry point the dataflow analyses use for ad-hoc call
        sites (e.g. nested closures submitted to the parallel driver).
        """
        return self._callee_of(func, call)

    def _collect_calls(self, module: ModuleNode) -> None:
        for func in self.functions.values():
            if func.module != module.name:
                continue
            edges: List[CallEdge] = []
            for node in ast.walk(func.node):
                if isinstance(node, ast.Call):
                    callee = self._callee_of(func, node)
                    if callee is not None:
                        edges.append(
                            CallEdge(
                                caller=func.qualname,
                                callee=callee,
                                lineno=node.lineno,
                            )
                        )
            if edges:
                self._call_edges[func.qualname] = edges

    def callees(self, qualname: str) -> List[CallEdge]:
        """The statically resolved outgoing calls of one function."""
        return self._call_edges.get(qualname, [])

    # -- views -----------------------------------------------------------

    def import_edges(self) -> Iterator[ImportEdge]:
        """Every import edge of the project, module by module."""
        for module in self.modules.values():
            yield from module.imports

    def module_dependencies(
        self, *, include_type_checking: bool = False
    ) -> Dict[str, Set[str]]:
        """Module name → set of imported project modules."""
        deps: Dict[str, Set[str]] = {name: set() for name in self.modules}
        for edge in self.import_edges():
            if edge.type_checking and not include_type_checking:
                continue
            deps[edge.src].add(edge.dst)
        return deps

    def to_dot(self, *, layers: Optional[Mapping[str, str]] = None) -> str:
        """The import graph in DOT format, optionally clustered by layer.

        ``layers`` maps a top package (``core``, ``runtime``, …) to a
        layer name; packages sharing a layer land in the same cluster.
        Type-checking-only edges are dashed, function-scoped (deferred)
        edges are dotted — the two edge kinds the layering rule treats
        specially.
        """
        lines = [
            "digraph crowdwifi_imports {",
            "  rankdir=BT;",
            '  node [shape=box, fontsize=10, fontname="Helvetica"];',
        ]
        by_layer: Dict[str, List[str]] = {}
        for name in sorted(self.modules):
            layer = (layers or {}).get(
                self.modules[name].top_package, "unlayered"
            )
            by_layer.setdefault(layer, []).append(name)
        for index, (layer, names) in enumerate(sorted(by_layer.items())):
            lines.append(f"  subgraph cluster_{index} {{")
            lines.append(f'    label="{layer}";')
            for name in names:
                lines.append(f'    "{name}";')
            lines.append("  }")
        seen: Set[Tuple[str, str, bool, bool]] = set()
        for edge in self.import_edges():
            key = (edge.src, edge.dst, edge.type_checking, edge.function_scoped)
            if key in seen or edge.src == edge.dst:
                continue
            seen.add(key)
            style = ""
            if edge.type_checking:
                style = ' [style=dashed, color=gray, label="TYPE_CHECKING"]'
            elif edge.function_scoped:
                style = ' [style=dotted, label="deferred"]'
            lines.append(f'  "{edge.src}" -> "{edge.dst}"{style};')
        lines.append("}")
        return "\n".join(lines)
