"""``crowdlint`` driver: discovery, pragmas, CLI.

Run as ``python -m repro.tools.lint`` or ``crowdwifi-repro lint``::

    python -m repro.tools.lint                 # lint src/ and benchmarks/
    python -m repro.tools.lint src/repro/core  # lint a subtree
    python -m repro.tools.lint --format=json
    python -m repro.tools.lint --disable=CW007,CW003
    python -m repro.tools.lint --list-rules

Inline suppression uses ``# crowdlint: disable=CW001`` (comma-separated
ids) or ``# crowdlint: disable`` (all rules) on the offending line, and
``# crowdlint: disable-file=CWxxx`` at module level for a whole file
(see :mod:`repro.tools.pragmas`; line pragmas take precedence).

On top of the per-file rule pack, the **whole-program tier** builds a
project graph over ``src/repro`` (imports, symbols, calls — resolved
from the AST, nothing executed) and runs the cross-module CW1xx rules
from :mod:`repro.tools.dataflow`.  It is on by default whenever the
linted files include the repository's own ``src/repro`` tree (so
``crowdwifi-repro lint`` always runs it); ``--no-project`` opts out and
``--graph-dot`` dumps the import/layer graph in DOT format instead of
linting.

Exit status: 0 when clean, 1 when findings were reported, 2 on usage or
I/O errors.
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Set

from repro.tools.dataflow import (
    DEFAULT_MANIFEST,
    PROJECT_RULES,
    analyze_project,
)
from repro.tools.findings import Finding, render_json, render_text, sort_findings
from repro.tools.graph import ProjectGraph
from repro.tools.pragmas import apply_pragmas, parse_pragmas
from repro.tools.rules import RULE_IDS, RULES, FileContext, check_file

__all__ = [
    "DEFAULT_TARGETS",
    "ALL_RULE_IDS",
    "build_parser",
    "discover_files",
    "lint_paths",
    "lint_source",
    "main",
]

#: Directories linted when no explicit paths are given, relative to the
#: repository root (the closest ancestor containing ``src/repro``).
DEFAULT_TARGETS = ("src", "benchmarks")

#: Every rule id either tier can emit (used to validate ``--disable``).
ALL_RULE_IDS = RULE_IDS + tuple(rule.rule_id for rule in PROJECT_RULES)

_SKIP_DIRS = {".git", "__pycache__", ".venv", "build", "dist", ".mypy_cache"}


def find_repo_root(start: Path) -> Path:
    """Closest ancestor of ``start`` that contains ``src/repro``."""
    candidate = start.resolve()
    for directory in (candidate, *candidate.parents):
        if (directory / "src" / "repro").is_dir():
            return directory
    return candidate


def discover_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: Set[Path] = set()
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                out.add(path.resolve())
        elif path.is_dir():
            for found in path.rglob("*.py"):
                if not any(part in _SKIP_DIRS for part in found.parts):
                    out.add(found.resolve())
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(out)


def lint_source(
    source: str,
    *,
    path: str = "<string>",
    rel: str = "",
    disabled: Optional[Set[str]] = None,
) -> List[Finding]:
    """Lint one in-memory source buffer (the unit-test entry point)."""
    try:
        tree = ast.parse(source)
    except SyntaxError as error:
        return [
            Finding(
                path=path,
                line=error.lineno or 1,
                col=(error.offset or 0) + 1 if error.offset else 1,
                rule="CW000",
                message=f"syntax error: {error.msg}",
            )
        ]
    ctx = FileContext(path=path, tree=tree, source=source, rel=rel or path)
    findings = check_file(ctx, disabled=disabled)
    return apply_pragmas(findings, parse_pragmas(source))


def lint_paths(
    paths: Sequence[Path],
    *,
    root: Optional[Path] = None,
    disabled: Optional[Set[str]] = None,
) -> List[Finding]:
    """Lint files and directories; paths in findings are root-relative."""
    base = root or find_repo_root(Path.cwd())
    findings: List[Finding] = []
    for file_path in discover_files(paths):
        try:
            rel = file_path.relative_to(base.resolve()).as_posix()
        except ValueError:
            rel = file_path.as_posix()
        source = file_path.read_text(encoding="utf-8")
        findings.extend(
            lint_source(source, path=rel, rel=rel, disabled=disabled)
        )
    return sort_findings(findings)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="crowdlint",
        description="CrowdWiFi reproduction-specific static analysis.",
    )
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories to lint (default: src/ and benchmarks/)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--disable", action="append", default=[], metavar="CWxxx[,CWyyy]",
        help="rule ids to skip; repeatable or comma-separated",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print every rule id with its summary and exit",
    )
    parser.add_argument(
        "--project", dest="project", action="store_true", default=None,
        help=(
            "force the whole-program tier (project graph + CW1xx rules); "
            "the default runs it automatically whenever the linted files "
            "include the repository's src/repro tree"
        ),
    )
    parser.add_argument(
        "--no-project", dest="project", action="store_false",
        help="skip the whole-program tier",
    )
    parser.add_argument(
        "--graph-dot", action="store_true",
        help=(
            "dump the project import/layer graph in DOT format and exit "
            "(debugging and docs; pipe through `dot -Tsvg`)"
        ),
    )
    return parser


def _parse_disabled(values: Sequence[str]) -> Set[str]:
    disabled: Set[str] = set()
    for value in values:
        for token in value.split(","):
            token = token.strip().upper()
            if not token:
                continue
            if token not in ALL_RULE_IDS:
                raise ValueError(f"unknown rule id {token!r}")
            disabled.add(token)
    return disabled


def _project_src_root(root: Path) -> Optional[Path]:
    """The whole-program analysis root, when this repo has one."""
    src_root = root / "src"
    return src_root if (src_root / "repro").is_dir() else None


def _should_run_project(
    flag: Optional[bool], src_root: Optional[Path], files: Sequence[Path]
) -> bool:
    """Decide whether the whole-program tier runs.

    ``--project`` forces it on, ``--no-project`` off; the default (auto)
    runs it exactly when the per-file pass already covers files under
    the repository's own ``src/repro`` — so the meta-gate and the CLI
    default get the full tier, while linting a scratch file elsewhere
    stays a single-file operation.
    """
    if flag is False or src_root is None:
        return False
    if flag is True:
        return True
    package_root = (src_root / "repro").resolve()
    return any(
        package_root in file_path.parents for file_path in files
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        entries = [(rule.rule_id, rule.summary) for rule in RULES]
        entries += [(rule.rule_id, rule.summary) for rule in PROJECT_RULES]
        width = max(len(rule_id) for rule_id, _ in entries)
        for rule_id, summary in entries:
            print(f"{rule_id.ljust(width)}  {summary}")
        return 0
    try:
        disabled = _parse_disabled(args.disable)
    except ValueError as error:
        print(f"crowdlint: {error}", file=sys.stderr)
        return 2
    root = find_repo_root(Path.cwd())
    src_root = _project_src_root(root)
    if args.graph_dot:
        if src_root is None:
            print(
                "crowdlint: no src/repro tree found for --graph-dot",
                file=sys.stderr,
            )
            return 2
        graph = ProjectGraph.build(src_root)
        try:
            print(graph.to_dot(layers=DEFAULT_MANIFEST.package_layers()))
        except BrokenPipeError:
            # Downstream `head`/`dot` closed the pipe; not an error.
            return 0
        return 0
    if args.paths:
        targets = list(args.paths)
    else:
        targets = [root / name for name in DEFAULT_TARGETS if (root / name).is_dir()]
        if not targets:
            print(
                "crowdlint: no default targets found; pass paths explicitly",
                file=sys.stderr,
            )
            return 2
    try:
        files = discover_files(targets)
        findings = lint_paths(targets, root=root, disabled=disabled)
    except FileNotFoundError as error:
        print(f"crowdlint: {error}", file=sys.stderr)
        return 2
    if _should_run_project(args.project, src_root, files):
        assert src_root is not None
        findings = sort_findings(
            findings
            + analyze_project(src_root, root=root, disabled=disabled)
        )
    if args.format == "json":
        print(render_json(findings))
    elif findings:
        print(render_text(findings))
    else:
        print("crowdlint: clean")
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
