"""``crowdlint`` driver: discovery, pragmas, CLI.

Run as ``python -m repro.tools.lint`` or ``crowdwifi-repro lint``::

    python -m repro.tools.lint                 # lint src/ and benchmarks/
    python -m repro.tools.lint src/repro/core  # lint a subtree
    python -m repro.tools.lint --format=json
    python -m repro.tools.lint --disable=CW007,CW003
    python -m repro.tools.lint --list-rules

Inline suppression uses ``# crowdlint: disable=CW001`` (comma-separated
ids) or ``# crowdlint: disable`` (all rules) on the offending line.

Exit status: 0 when clean, 1 when findings were reported, 2 on usage or
I/O errors.
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set

from repro.tools.findings import Finding, render_json, render_text, sort_findings
from repro.tools.rules import RULE_IDS, RULES, FileContext, check_file

__all__ = [
    "DEFAULT_TARGETS",
    "build_parser",
    "discover_files",
    "lint_paths",
    "lint_source",
    "main",
]

#: Directories linted when no explicit paths are given, relative to the
#: repository root (the closest ancestor containing ``src/repro``).
DEFAULT_TARGETS = ("src", "benchmarks")

_PRAGMA = re.compile(
    r"#\s*crowdlint:\s*disable(?:=(?P<rules>[A-Z0-9,\s]+))?", re.IGNORECASE
)

_SKIP_DIRS = {".git", "__pycache__", ".venv", "build", "dist", ".mypy_cache"}


def _pragma_map(source: str) -> Dict[int, FrozenSet[str]]:
    """Map line number -> rule ids disabled on that line (empty = all)."""
    pragmas: Dict[int, FrozenSet[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _PRAGMA.search(line)
        if not match:
            continue
        raw = match.group("rules")
        if raw is None:
            pragmas[lineno] = frozenset()
        else:
            pragmas[lineno] = frozenset(
                token.strip().upper() for token in raw.split(",") if token.strip()
            )
    return pragmas


def _apply_pragmas(
    findings: Iterable[Finding], pragmas: Dict[int, FrozenSet[str]]
) -> List[Finding]:
    kept: List[Finding] = []
    for finding in findings:
        disabled = pragmas.get(finding.line)
        if disabled is not None and (not disabled or finding.rule in disabled):
            continue
        kept.append(finding)
    return kept


def find_repo_root(start: Path) -> Path:
    """Closest ancestor of ``start`` that contains ``src/repro``."""
    candidate = start.resolve()
    for directory in (candidate, *candidate.parents):
        if (directory / "src" / "repro").is_dir():
            return directory
    return candidate


def discover_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: Set[Path] = set()
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                out.add(path.resolve())
        elif path.is_dir():
            for found in path.rglob("*.py"):
                if not any(part in _SKIP_DIRS for part in found.parts):
                    out.add(found.resolve())
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(out)


def lint_source(
    source: str,
    *,
    path: str = "<string>",
    rel: str = "",
    disabled: Optional[Set[str]] = None,
) -> List[Finding]:
    """Lint one in-memory source buffer (the unit-test entry point)."""
    try:
        tree = ast.parse(source)
    except SyntaxError as error:
        return [
            Finding(
                path=path,
                line=error.lineno or 1,
                col=(error.offset or 0) + 1 if error.offset else 1,
                rule="CW000",
                message=f"syntax error: {error.msg}",
            )
        ]
    ctx = FileContext(path=path, tree=tree, source=source, rel=rel or path)
    findings = check_file(ctx, disabled=disabled)
    return _apply_pragmas(findings, _pragma_map(source))


def lint_paths(
    paths: Sequence[Path],
    *,
    root: Optional[Path] = None,
    disabled: Optional[Set[str]] = None,
) -> List[Finding]:
    """Lint files and directories; paths in findings are root-relative."""
    base = root or find_repo_root(Path.cwd())
    findings: List[Finding] = []
    for file_path in discover_files(paths):
        try:
            rel = file_path.relative_to(base.resolve()).as_posix()
        except ValueError:
            rel = file_path.as_posix()
        source = file_path.read_text(encoding="utf-8")
        findings.extend(
            lint_source(source, path=rel, rel=rel, disabled=disabled)
        )
    return sort_findings(findings)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="crowdlint",
        description="CrowdWiFi reproduction-specific static analysis.",
    )
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories to lint (default: src/ and benchmarks/)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--disable", action="append", default=[], metavar="CWxxx[,CWyyy]",
        help="rule ids to skip; repeatable or comma-separated",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print every rule id with its summary and exit",
    )
    return parser


def _parse_disabled(values: Sequence[str]) -> Set[str]:
    disabled: Set[str] = set()
    for value in values:
        for token in value.split(","):
            token = token.strip().upper()
            if not token:
                continue
            if token not in RULE_IDS:
                raise ValueError(f"unknown rule id {token!r}")
            disabled.add(token)
    return disabled


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        width = max(len(rule.rule_id) for rule in RULES)
        for rule in RULES:
            print(f"{rule.rule_id.ljust(width)}  {rule.summary}")
        return 0
    try:
        disabled = _parse_disabled(args.disable)
    except ValueError as error:
        print(f"crowdlint: {error}", file=sys.stderr)
        return 2
    root = find_repo_root(Path.cwd())
    if args.paths:
        targets = list(args.paths)
    else:
        targets = [root / name for name in DEFAULT_TARGETS if (root / name).is_dir()]
        if not targets:
            print(
                "crowdlint: no default targets found; pass paths explicitly",
                file=sys.stderr,
            )
            return 2
    try:
        findings = lint_paths(targets, root=root, disabled=disabled)
    except FileNotFoundError as error:
        print(f"crowdlint: {error}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(render_json(findings))
    elif findings:
        print(render_text(findings))
    else:
        print("crowdlint: clean")
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
