"""Suppression pragmas shared by the per-file and whole-program lint tiers.

Two pragma shapes exist:

* **Line pragma** — ``# crowdlint: disable=CW001,CW004`` (or a bare
  ``# crowdlint: disable``) on the offending line suppresses the named
  rules (or all rules) *on that line only*.
* **File pragma** — ``# crowdlint: disable-file=CW102`` (or a bare
  ``# crowdlint: disable-file``) anywhere in a module suppresses the
  named rules (or all rules) for the *whole file*.  By convention it
  sits in the module header, next to a comment saying why.

Line pragmas take precedence: they are consulted first, so a line-level
suppression keeps working regardless of any file-level pragma present,
and a ``disable-file`` marker never doubles as a line pragma for the
line it happens to sit on (the two regexes are disjoint).

Both tiers of ``crowdlint`` — the per-file rules in
:mod:`repro.tools.rules` and the project-graph rules in
:mod:`repro.tools.dataflow` — route their findings through
:func:`apply_pragmas`, so suppression behaves identically for local and
cross-module findings (a cross-module finding is suppressed by pragmas
in the file it is *reported* in, i.e. where the evidence chain starts).
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.tools.findings import Finding

__all__ = ["PragmaMap", "apply_pragmas", "parse_pragmas", "pragma_maps_by_path"]

#: ``disable`` must not swallow ``disable-file``: the negative lookahead
#: keeps the two pragma shapes disjoint so a file pragma never acts as a
#: bare all-rules line pragma for its own line.
_LINE_PRAGMA = re.compile(
    r"#\s*crowdlint:\s*disable(?!-file)(?:=(?P<rules>[A-Z0-9,\s]+))?",
    re.IGNORECASE,
)
_FILE_PRAGMA = re.compile(
    r"#\s*crowdlint:\s*disable-file(?:=(?P<rules>[A-Z0-9,\s]+))?",
    re.IGNORECASE,
)


def _rule_set(raw: Optional[str]) -> FrozenSet[str]:
    """Parse the ``=CWxxx,CWyyy`` tail; empty set means *all* rules."""
    if raw is None:
        return frozenset()
    return frozenset(
        token.strip().upper() for token in raw.split(",") if token.strip()
    )


class PragmaMap:
    """The parsed suppression pragmas of one source file.

    ``lines`` maps line number → rule ids disabled on that line (the
    empty set meaning all rules); ``file_rules`` is the union of every
    file-level pragma (``None`` when the file has none; the empty set
    meaning all rules are disabled file-wide).
    """

    def __init__(
        self,
        lines: Dict[int, FrozenSet[str]],
        file_rules: Optional[FrozenSet[str]],
    ) -> None:
        self.lines = lines
        self.file_rules = file_rules

    def suppresses(self, finding: Finding) -> bool:
        """Whether this file's pragmas silence ``finding``.

        Line pragmas are consulted first (they take precedence); the
        file pragma is the fallback.
        """
        line_rules = self.lines.get(finding.line)
        if line_rules is not None and (
            not line_rules or finding.rule in line_rules
        ):
            return True
        if self.file_rules is not None and (
            not self.file_rules or finding.rule in self.file_rules
        ):
            return True
        return False


def parse_pragmas(source: str) -> PragmaMap:
    """Extract the line- and file-level pragmas of one source buffer."""
    lines: Dict[int, FrozenSet[str]] = {}
    file_rules: Optional[FrozenSet[str]] = None
    for lineno, line in enumerate(source.splitlines(), start=1):
        file_match = _FILE_PRAGMA.search(line)
        if file_match:
            rules = _rule_set(file_match.group("rules"))
            if file_rules is None:
                file_rules = rules
            elif file_rules and rules:
                file_rules = file_rules | rules
            else:
                file_rules = frozenset()
            continue
        line_match = _LINE_PRAGMA.search(line)
        if line_match:
            lines[lineno] = _rule_set(line_match.group("rules"))
    return PragmaMap(lines, file_rules)


def apply_pragmas(
    findings: Iterable[Finding],
    pragmas: "PragmaMap",
) -> List[Finding]:
    """Drop every finding a pragma suppresses."""
    return [f for f in findings if not pragmas.suppresses(f)]


def pragma_maps_by_path(
    sources: Iterable[Tuple[str, str]],
) -> Dict[str, PragmaMap]:
    """Parse pragmas for many files at once: ``(path, source)`` pairs."""
    return {path: parse_pragmas(source) for path, source in sources}
