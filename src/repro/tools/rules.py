"""The ``crowdlint`` rule pack: CrowdWiFi-specific AST checks.

Each rule encodes an invariant the reproduction depends on but the Python
runtime never enforces.  The rules are deliberately narrow: they target
the failure modes that corrupt *figures* (silent loss of determinism,
dBm/mW unit mixing, shape-contract drift) rather than general style.

========  ==============================================================
Rule      Invariant
========  ==============================================================
CW001     No ``np.random.default_rng()`` / ``np.random.<dist>()`` calls
          outside ``util/rng.py`` — all entropy flows through
          :func:`repro.util.rng.ensure_rng`.
CW002     No stdlib :mod:`random` imports in library code.
CW003     Public functions taking ``rng``/``seed`` must thread it
          (use it, forward it, or explicitly ``del`` it) and must not
          draw from a raw ``rng`` argument without ``ensure_rng``.
CW004     No mutable default arguments.
CW005     No silent exception swallowing: no bare ``except``, no
          handler whose body is just ``pass``/``continue``/``break``/
          ``return None``, and no broad ``except Exception`` without
          re-raise or logging.
CW006     dBm/mW unit discipline: no arithmetic mixing ``*_dbm`` and
          ``*_mw`` operands, and no inline ``10 ** (x / 10)``
          conversions outside ``radio/``.
CW007     Every public module defines a literal ``__all__`` whose names
          are actually bound at module top level.
CW008     No mutation of global numpy state (``np.random.seed``,
          ``np.seterr``, ``np.seterrcall``).
CW009     No ``sequence.index(...)`` scans inside loops in library code
          — each call is O(n), so the loop goes quadratic; precompute a
          value → position mapping before the loop.
CW010     Every public class, function, and method in ``core/``,
          ``crowd/``, and ``middleware/`` carries a docstring — the
          reproduction's API surface must say which paper mechanism
          (§-reference) each entry point implements.
CW011     Client-side code (``middleware/client.py``,
          ``middleware/fleet.py`` and everything under ``runtime/``)
          may not import private names from other modules nor touch
          ``_``-prefixed attributes of foreign objects — the
          transport/server seam is lint-enforced, not aspirational.
========  ==============================================================
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import PurePosixPath
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.tools.findings import Finding

__all__ = ["FileContext", "Rule", "RULES", "RULE_IDS", "check_file"]

#: numpy.random attributes that are types, not entropy sources — referencing
#: (or even instantiating) them does not consume global entropy.
_NP_RANDOM_TYPES = {"Generator", "SeedSequence", "BitGenerator", "PCG64", "Philox"}

#: Callable names whose invocation counts as "logging" for CW005.
_LOG_CALL_NAMES = {
    "print", "warn", "warning", "error", "exception", "critical",
    "info", "debug", "log",
}

_STOCHASTIC_PARAMS = ("rng", "seed")


@dataclass
class FileContext:
    """Everything a rule needs to know about one source file."""

    path: str
    tree: ast.Module
    source: str
    rel: str = ""
    numpy_aliases: Set[str] = field(default_factory=set)
    numpy_random_aliases: Set[str] = field(default_factory=set)
    numpy_random_names: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.rel:
            self.rel = self.path.replace("\\", "/")
        self._collect_numpy_bindings()

    # -- path predicates ------------------------------------------------
    def _parts(self) -> Tuple[str, ...]:
        return PurePosixPath(self.rel.replace("\\", "/")).parts

    @property
    def is_rng_module(self) -> bool:
        parts = self._parts()
        return len(parts) >= 2 and parts[-2:] == ("util", "rng.py")

    @property
    def in_radio(self) -> bool:
        return "radio" in self._parts()[:-1]

    @property
    def in_library(self) -> bool:
        """Whether the file is part of the installable ``repro`` package."""
        return "repro" in self._parts()[:-1]

    # -- numpy alias resolution -----------------------------------------
    def _collect_numpy_bindings(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "numpy":
                        self.numpy_aliases.add(alias.asname or "numpy")
                    elif alias.name == "numpy.random":
                        self.numpy_random_aliases.add(alias.asname or "numpy")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            self.numpy_random_aliases.add(alias.asname or "random")
                elif node.module == "numpy.random":
                    for alias in node.names:
                        self.numpy_random_names[alias.asname or alias.name] = alias.name

    def np_random_attr(self, func: ast.expr) -> Optional[str]:
        """If ``func`` resolves to ``numpy.random.<attr>``, return ``attr``."""
        if isinstance(func, ast.Attribute):
            value = func.value
            if isinstance(value, ast.Attribute) and value.attr == "random":
                if isinstance(value.value, ast.Name) and value.value.id in self.numpy_aliases:
                    return func.attr
            if isinstance(value, ast.Name) and value.id in self.numpy_random_aliases:
                return func.attr
        if isinstance(func, ast.Name) and func.id in self.numpy_random_names:
            return self.numpy_random_names[func.id]
        return None

    def np_attr(self, func: ast.expr) -> Optional[str]:
        """If ``func`` resolves to ``numpy.<attr>``, return ``attr``."""
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in self.numpy_aliases
        ):
            return func.attr
        return None


class Rule:
    """Base class: one rule id, one invariant, one ``check`` pass."""

    rule_id: str = ""
    summary: str = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.rule_id,
            message=message,
        )


class UnseededNumpyRandom(Rule):
    """CW001: all entropy must flow through ``util.rng.ensure_rng``."""

    rule_id = "CW001"
    summary = (
        "no numpy.random calls outside util/rng.py; thread a Generator "
        "through ensure_rng instead"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.is_rng_module:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                attr = ctx.np_random_attr(node.func)
                if attr is not None and attr not in _NP_RANDOM_TYPES:
                    yield self.finding(
                        ctx,
                        node,
                        f"call to numpy.random.{attr} outside util/rng.py; "
                        "accept an rng argument and use util.rng.ensure_rng",
                    )
            elif isinstance(node, ast.ImportFrom) and node.module == "numpy.random":
                names = [a.name for a in node.names if a.name not in _NP_RANDOM_TYPES]
                if names:
                    yield self.finding(
                        ctx,
                        node,
                        f"import of numpy.random.{{{', '.join(names)}}} outside "
                        "util/rng.py; use util.rng.ensure_rng",
                    )


class StdlibRandomImport(Rule):
    """CW002: the stdlib ``random`` module has no place in library code."""

    rule_id = "CW002"
    summary = "no stdlib random in library code; use numpy Generators via ensure_rng"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_library:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self.finding(
                            ctx, node,
                            "stdlib random imported; use a seeded numpy "
                            "Generator from util.rng.ensure_rng",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" and node.level == 0:
                    yield self.finding(
                        ctx, node,
                        "stdlib random imported; use a seeded numpy "
                        "Generator from util.rng.ensure_rng",
                    )


def _iter_public_functions(tree: ast.Module) -> Iterator[ast.AST]:
    """Module-level and class-level defs that form the public surface.

    Nested (closure) functions are skipped: their rng discipline is the
    enclosing public function's responsibility.
    """
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if not node.name.startswith("_"):
                yield node
        elif isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if not item.name.startswith("_") or item.name == "__init__":
                        yield item


class RngThreading(Rule):
    """CW003: an ``rng``/``seed`` parameter must actually be threaded."""

    rule_id = "CW003"
    summary = (
        "public functions taking rng/seed must pass it through ensure_rng, "
        "forward it, or explicitly del it"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for func in _iter_public_functions(ctx.tree):
            assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
            declared = {
                a.arg
                for a in (
                    func.args.args + func.args.kwonlyargs + func.args.posonlyargs
                )
            }
            for param in _STOCHASTIC_PARAMS:
                if param not in declared:
                    continue
                yield from self._check_param(ctx, func, param)

    def _check_param(
        self,
        ctx: FileContext,
        func: ast.AST,
        param: str,
    ) -> Iterator[Finding]:
        loaded = deleted = raw_draw = coerced = False
        for node in ast.walk(func):
            if isinstance(node, ast.Name) and node.id == param:
                if isinstance(node.ctx, ast.Load):
                    loaded = True
                elif isinstance(node.ctx, ast.Del):
                    deleted = True
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == param
            ):
                raw_draw = True
            if isinstance(node, ast.Call):
                callee = node.func
                name = (
                    callee.id
                    if isinstance(callee, ast.Name)
                    else callee.attr if isinstance(callee, ast.Attribute) else ""
                )
                if name in {"ensure_rng", "spawn_children"}:
                    coerced = True
        func_name = getattr(func, "name", "<function>")
        if not loaded and not deleted:
            yield self.finding(
                ctx,
                func,
                f"{func_name} declares {param!r} but never uses it; thread "
                "it through ensure_rng or 'del' it to mark the function "
                "deterministic",
            )
        elif raw_draw and not coerced:
            yield self.finding(
                ctx,
                func,
                f"{func_name} draws from raw {param!r} without ensure_rng; "
                "the argument may be an int seed or None",
            )


class MutableDefault(Rule):
    """CW004: mutable default arguments alias state across calls."""

    rule_id = "CW004"
    summary = "no mutable default arguments"

    _MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "defaultdict"}

    def _is_mutable(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            callee = node.func
            name = (
                callee.id
                if isinstance(callee, ast.Name)
                else callee.attr if isinstance(callee, ast.Attribute) else ""
            )
            return name in self._MUTABLE_CALLS
        return False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                defaults = list(node.args.defaults) + [
                    d for d in node.args.kw_defaults if d is not None
                ]
                for default in defaults:
                    if self._is_mutable(default):
                        name = getattr(node, "name", "<lambda>")
                        yield self.finding(
                            ctx,
                            default,
                            f"mutable default argument in {name}; use None "
                            "and construct inside the function",
                        )


class SilentExcept(Rule):
    """CW005: exceptions must not vanish without a trace."""

    rule_id = "CW005"
    summary = (
        "no bare/broad except without re-raise or logging, no handler "
        "body of just pass/continue/return None"
    )

    def _body_is_silent(self, body: Sequence[ast.stmt]) -> bool:
        for stmt in body:
            if isinstance(stmt, ast.Pass):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
                continue  # docstring or bare ellipsis
            if isinstance(stmt, (ast.Continue, ast.Break)):
                continue  # loop control alone drops the exception on the floor
            if isinstance(stmt, ast.Return) and (
                stmt.value is None
                or (
                    isinstance(stmt.value, ast.Constant)
                    and stmt.value.value is None
                )
            ):
                continue  # `return` / `return None` is as silent as `pass`
            return False
        return True

    def _is_broad(self, handler_type: Optional[ast.expr]) -> bool:
        names: List[str] = []
        if isinstance(handler_type, ast.Name):
            names = [handler_type.id]
        elif isinstance(handler_type, ast.Tuple):
            names = [e.id for e in handler_type.elts if isinstance(e, ast.Name)]
        return any(n in {"Exception", "BaseException"} for n in names)

    def _handles_visibly(self, handler: ast.ExceptHandler) -> bool:
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise):
                return True
            if isinstance(node, ast.Call):
                callee = node.func
                name = (
                    callee.id
                    if isinstance(callee, ast.Name)
                    else callee.attr if isinstance(callee, ast.Attribute) else ""
                )
                if name in _LOG_CALL_NAMES:
                    return True
        return False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    ctx, node, "bare 'except:' catches everything including "
                    "KeyboardInterrupt; name the exception",
                )
                continue
            if self._body_is_silent(node.body):
                yield self.finding(
                    ctx, node, "exception silently swallowed; handle it, "
                    "log it, or re-raise",
                )
                continue
            if self._is_broad(node.type) and not self._handles_visibly(node):
                yield self.finding(
                    ctx, node, "broad 'except Exception' without re-raise or "
                    "logging hides real failures",
                )


def _unit_hint(node: ast.expr) -> Optional[str]:
    """Classify an operand as dBm-like or mW-like from its identifier."""
    name = ""
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    elif isinstance(node, ast.Call):
        return _unit_hint(node.func)
    if not name:
        return None
    lowered = name.lower()
    if lowered == "dbm" or lowered.endswith("_dbm") or lowered.endswith("dbm"):
        return "dbm"
    if lowered == "mw" or lowered.endswith("_mw"):
        return "mw"
    return None


class UnitDiscipline(Rule):
    """CW006: dBm is logarithmic, mW is linear — never mix them inline."""

    rule_id = "CW006"
    summary = (
        "no arithmetic mixing *_dbm and *_mw operands; no inline "
        "10**(x/10) conversions outside radio/"
    )

    _ARITH = (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv, ast.Mod)

    def _is_ten(self, node: ast.expr) -> bool:
        return isinstance(node, ast.Constant) and node.value in (10, 10.0)

    def _is_inline_conversion(self, node: ast.expr) -> bool:
        # 10 ** (x / 10)  — possibly nested in a larger expression.
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Pow):
            if self._is_ten(node.left):
                right = node.right
                if isinstance(right, ast.BinOp) and isinstance(right.op, ast.Div):
                    return self._is_ten(right.right)
        # np.power(10, x / 10)
        if isinstance(node, ast.Call) and len(node.args) == 2:
            callee = node.func
            name = (
                callee.id
                if isinstance(callee, ast.Name)
                else callee.attr if isinstance(callee, ast.Attribute) else ""
            )
            if name == "power" and self._is_ten(node.args[0]):
                arg = node.args[1]
                if isinstance(arg, ast.BinOp) and isinstance(arg.op, ast.Div):
                    return self._is_ten(arg.right)
        return False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, self._ARITH):
                left, right = _unit_hint(node.left), _unit_hint(node.right)
                if left and right and left != right:
                    yield self.finding(
                        ctx, node,
                        "arithmetic mixes dBm (logarithmic) and mW (linear) "
                        "operands; convert explicitly in radio/ first",
                    )
            if not ctx.in_radio and self._is_inline_conversion(node):
                yield self.finding(
                    ctx, node,
                    "inline 10**(x/10) dB↔linear conversion outside radio/; "
                    "use the radio package's conversion helpers",
                )


def _top_level_bindings(body: Sequence[ast.stmt]) -> Tuple[Set[str], bool]:
    """Names bound at module top level; second item is True on star-import."""
    bound: Set[str] = set()
    star = False

    def bind_target(target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            bound.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                bind_target(element)
        elif isinstance(target, ast.Starred):
            bind_target(target.value)

    def visit(statements: Sequence[ast.stmt]) -> None:
        nonlocal star
        for stmt in statements:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                bound.add(stmt.name)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    bind_target(target)
            elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                bind_target(stmt.target)
            elif isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    bound.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(stmt, ast.ImportFrom):
                for alias in stmt.names:
                    if alias.name == "*":
                        star = True
                    else:
                        bound.add(alias.asname or alias.name)
            elif isinstance(stmt, (ast.If, ast.Try)):
                visit(stmt.body)
                visit(getattr(stmt, "orelse", []))
                visit(getattr(stmt, "finalbody", []))
                for handler in getattr(stmt, "handlers", []):
                    visit(handler.body)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                bind_target(stmt.target)
                visit(stmt.body)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    if item.optional_vars is not None:
                        bind_target(item.optional_vars)
                visit(stmt.body)
            elif isinstance(stmt, ast.While):
                visit(stmt.body)

    visit(body)
    return bound, star


class DunderAllDiscipline(Rule):
    """CW007: every public library module declares an honest ``__all__``."""

    rule_id = "CW007"
    summary = (
        "public modules define a literal __all__ whose names are bound at "
        "module top level"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_library:
            return
        stem = PurePosixPath(ctx.rel).stem
        if stem.startswith("_") and stem != "__init__":
            return
        all_nodes = [
            stmt
            for stmt in ctx.tree.body
            if isinstance(stmt, ast.Assign)
            and any(
                isinstance(t, ast.Name) and t.id == "__all__" for t in stmt.targets
            )
        ]
        if not all_nodes:
            yield self.finding(
                ctx, ctx.tree,
                "public module defines no __all__; declare its exported "
                "surface explicitly",
            )
            return
        assign = all_nodes[-1]
        value = assign.value
        if not isinstance(value, (ast.List, ast.Tuple)) or not all(
            isinstance(e, ast.Constant) and isinstance(e.value, str)
            for e in value.elts
        ):
            yield self.finding(
                ctx, assign,
                "__all__ must be a literal list/tuple of string names",
            )
            return
        names = [e.value for e in value.elts]
        seen: Set[str] = set()
        for element, name in zip(value.elts, names):
            if name in seen:
                yield self.finding(
                    ctx, element, f"duplicate name {name!r} in __all__",
                )
            seen.add(name)
        bound, star = _top_level_bindings(ctx.tree.body)
        if star:
            return
        for element, name in zip(value.elts, names):
            if name not in bound:
                yield self.finding(
                    ctx, element,
                    f"__all__ exports {name!r} which is not bound at module "
                    "top level",
                )


class GlobalNumpyState(Rule):
    """CW008: benchmarks and library code share one process — no global knobs."""

    rule_id = "CW008"
    summary = "no np.random.seed / np.seterr / np.seterrcall global-state mutation"

    _NP_STATE_FUNCS = {"seterr", "seterrcall"}

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if ctx.np_random_attr(node.func) == "seed":
                yield self.finding(
                    ctx, node,
                    "np.random.seed mutates the global legacy RNG; pass a "
                    "seed through ensure_rng instead",
                )
            elif ctx.np_attr(node.func) in self._NP_STATE_FUNCS:
                yield self.finding(
                    ctx, node,
                    f"np.{ctx.np_attr(node.func)} mutates process-global "
                    "numpy state; use np.errstate as a context manager",
                )


class LinearIndexInLoop(Rule):
    """CW009: ``.index()`` is a linear scan — in a loop it goes quadratic.

    The offline server's hot paths (label routing, double-edge swaps)
    must stay O(1) per item; a ``sequence.index(...)`` call inside a
    ``for``/``while`` body silently reintroduces the O(n·m) scans this
    PR removed.  Precompute a value → position dict before the loop.
    String-literal receivers (``"abc".index``) are exempt.
    """

    rule_id = "CW009"
    summary = (
        "no sequence.index(...) inside loops in library code; precompute "
        "a value -> position mapping before the loop"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_library:
            return
        reported: Set[int] = set()
        for loop in ast.walk(ctx.tree):
            if not isinstance(loop, (ast.For, ast.AsyncFor, ast.While)):
                continue
            for stmt in list(loop.body) + list(loop.orelse):
                for node in ast.walk(stmt):
                    if (
                        isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr == "index"
                        and not isinstance(node.func.value, ast.Constant)
                        and id(node) not in reported
                    ):
                        reported.add(id(node))
                        yield self.finding(
                            ctx, node,
                            ".index() inside a loop is an O(n) scan per "
                            "iteration; precompute a value -> position "
                            "dict before the loop",
                        )


class PublicApiDocstring(Rule):
    """CW010: the paper-facing packages must document their public API.

    ``core/``, ``crowd/``, and ``middleware/`` are the packages that
    implement named paper mechanisms; every public module-level class
    and function there, and every public method of a public class, must
    carry a docstring (ideally anchoring the §-reference it implements).
    ``_``-prefixed names — including dunders like ``__init__``, whose
    parameters belong in the class docstring — are exempt.
    """

    rule_id = "CW010"
    summary = (
        "public classes/functions/methods in core/, crowd/ and "
        "middleware/ must carry a docstring"
    )

    _DOCUMENTED_PACKAGES = {"core", "crowd", "middleware"}

    def _in_scope(self, ctx: FileContext) -> bool:
        parts = ctx._parts()
        if "repro" not in parts[:-1]:
            return False
        stem = PurePosixPath(ctx.rel).stem
        if stem.startswith("_") and stem != "__init__":
            return False
        return bool(self._DOCUMENTED_PACKAGES.intersection(parts[:-1]))

    @staticmethod
    def _undocumented(node: ast.AST) -> bool:
        return ast.get_docstring(node) is None  # type: ignore[arg-type]

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not self._in_scope(ctx):
            return
        for node in ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name.startswith("_"):
                    continue
                if self._undocumented(node):
                    yield self.finding(
                        ctx, node,
                        f"public function {node.name} has no docstring; say "
                        "what it computes and which paper mechanism it "
                        "implements",
                    )
            elif isinstance(node, ast.ClassDef):
                if node.name.startswith("_"):
                    continue
                if self._undocumented(node):
                    yield self.finding(
                        ctx, node,
                        f"public class {node.name} has no docstring; say "
                        "what it models and which paper mechanism it "
                        "implements",
                    )
                for item in node.body:
                    if not isinstance(
                        item, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        continue
                    if item.name.startswith("_"):
                        continue
                    if self._undocumented(item):
                        yield self.finding(
                            ctx, item,
                            f"public method {node.name}.{item.name} has no "
                            "docstring",
                        )


class SeamPrivateAccess(Rule):
    """CW011: the client side of the runtime seam stays on the public API.

    ``middleware/client.py``, ``middleware/fleet.py`` and every module
    under ``runtime/`` sit on the *client* side of the transport seam:
    anything they need from a :class:`CrowdServer` (or any other foreign
    object) must be reachable through public methods and the wire
    protocol, or a future socket transport breaks silently.  Two shapes
    are flagged: ``from X import _name`` of a private name, and
    attribute access ``expr._name`` where the receiver is not
    ``self``/``cls``.  Dunders (``__class__`` etc.) are exempt, as is
    each module's own private state.
    """

    rule_id = "CW011"
    summary = (
        "middleware/client.py, middleware/fleet.py and runtime/ must not "
        "import private names or touch foreign objects' _attributes"
    )

    _CLIENT_FILES = {("middleware", "client.py"), ("middleware", "fleet.py")}

    @staticmethod
    def _is_private(name: str) -> bool:
        return name.startswith("_") and not (
            name.startswith("__") and name.endswith("__")
        )

    def _in_scope(self, ctx: FileContext) -> bool:
        parts = ctx._parts()
        if "repro" not in parts[:-1]:
            return False
        if parts[-2:] in self._CLIENT_FILES:
            return True
        return "runtime" in parts[:-1]

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not self._in_scope(ctx):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if self._is_private(alias.name):
                        yield self.finding(
                            ctx, node,
                            f"import of private name {alias.name!r} from "
                            f"{node.module or '.'}; seam clients depend on "
                            "public surface only",
                        )
            elif isinstance(node, ast.Attribute):
                if not self._is_private(node.attr):
                    continue
                receiver = node.value
                if isinstance(receiver, ast.Name) and receiver.id in (
                    "self", "cls",
                ):
                    continue
                yield self.finding(
                    ctx, node,
                    f"access to private attribute {node.attr!r} of a "
                    "foreign object; go through the public API or the "
                    "wire protocol",
                )


RULES: Tuple[Rule, ...] = (
    UnseededNumpyRandom(),
    StdlibRandomImport(),
    RngThreading(),
    MutableDefault(),
    SilentExcept(),
    UnitDiscipline(),
    DunderAllDiscipline(),
    GlobalNumpyState(),
    LinearIndexInLoop(),
    PublicApiDocstring(),
    SeamPrivateAccess(),
)

RULE_IDS: Tuple[str, ...] = tuple(rule.rule_id for rule in RULES)


def check_file(
    ctx: FileContext, *, disabled: Optional[Set[str]] = None
) -> List[Finding]:
    """Run every enabled rule over one parsed file."""
    off = disabled or set()
    findings: List[Finding] = []
    for rule in RULES:
        if rule.rule_id in off:
            continue
        findings.extend(rule.check(ctx))
    return findings
