"""Shared utilities: deterministic RNG plumbing, validation, result tables.

Every stochastic component in :mod:`repro` threads a
:class:`numpy.random.Generator` through its API instead of touching global
random state.  :func:`ensure_rng` is the single conversion point from the
user-facing ``seed | Generator | None`` convention to a concrete generator.
"""

from repro.util.rng import ensure_rng, spawn_children
from repro.util.validation import (
    require,
    require_in_range,
    require_positive,
    require_shape,
)
from repro.util.tables import ResultTable

__all__ = [
    "ensure_rng",
    "spawn_children",
    "require",
    "require_in_range",
    "require_positive",
    "require_shape",
    "ResultTable",
]
