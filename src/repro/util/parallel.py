"""Deterministic process-parallel fan-out.

The fleet and experiment runners fan independent units of work
(vehicles, traces) over a :class:`~concurrent.futures.ProcessPoolExecutor`.
Determinism is the callers' contract, and it rests on two rules enforced
here and in :mod:`repro.util.rng`:

1. every unit of work carries its *own* child generator, spawned from
   the parent seed **before** any work is dispatched (so the derivation
   does not depend on scheduling), and
2. results are returned in submission order regardless of completion
   order.

Under those rules a run with ``n_workers=4`` is bit-identical to the
serial run with the same seed — the property the parallel-determinism
tests pin down.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

from repro.obs.recorder import (
    NULL_RECORDER,
    InMemoryRecorder,
    Recorder,
    TelemetrySnapshot,
)

__all__ = ["resolve_workers", "run_recorded_tasks", "run_tasks"]

T = TypeVar("T")
R = TypeVar("R")


def resolve_workers(n_workers: Optional[int], n_tasks: int) -> int:
    """Effective worker count: ``None``/1 → serial, capped at tasks/CPUs."""
    if n_workers is None:
        return 1
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    return max(1, min(n_workers, n_tasks, os.cpu_count() or 1))


def run_tasks(
    fn: Callable[[T], R],
    tasks: Sequence[T],
    *,
    n_workers: Optional[int] = None,
) -> List[R]:
    """Map ``fn`` over ``tasks``, optionally in a process pool.

    ``fn`` and every task must be picklable (``fn`` module-level) when
    ``n_workers`` exceeds 1.  Results come back in task order, so callers
    can zip them against their inputs; with one worker the map runs in
    this process and no pool is created.
    """
    workers = resolve_workers(n_workers, len(tasks))
    if workers <= 1 or len(tasks) <= 1:
        return [fn(task) for task in tasks]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, tasks))


class _NullCall:
    """Picklable wrapper calling ``fn(task, NULL_RECORDER)`` in a worker."""

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[T, Recorder], R]) -> None:
        self.fn = fn

    def __call__(self, task: T) -> R:
        return self.fn(task, NULL_RECORDER)


class _RecordedCall:
    """Picklable wrapper giving each task a fresh child recorder.

    Returns ``(result, snapshot)`` so the parent can absorb child telemetry
    in submission order — the step that makes parallel aggregates equal
    serial ones.
    """

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[T, Recorder], R]) -> None:
        self.fn = fn

    def __call__(self, task: T) -> Tuple[R, TelemetrySnapshot]:
        child = InMemoryRecorder()
        result = self.fn(task, child)
        return result, child.snapshot()


def run_recorded_tasks(
    fn: Callable[[T, Recorder], R],
    tasks: Sequence[T],
    *,
    recorder: Recorder,
    n_workers: Optional[int] = None,
) -> List[R]:
    """Like :func:`run_tasks` for instrumented work: ``fn(task, recorder)``.

    With the default :data:`~repro.obs.recorder.NULL_RECORDER` the overhead
    is a wrapper call per task.  With a live recorder, every task — serial
    or parallel — records into its *own* fresh
    :class:`~repro.obs.recorder.InMemoryRecorder`, whose snapshot the parent
    ``recorder`` absorbs in submission order.  Running the same seed with
    ``n_workers=4`` therefore yields telemetry aggregates identical to the
    serial run (wall-clock span durations excepted, by construction).
    """
    workers = resolve_workers(n_workers, len(tasks))
    if not recorder.enabled:
        if workers <= 1 or len(tasks) <= 1:
            return [fn(task, recorder) for task in tasks]
        null_call = _NullCall(fn)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(null_call, tasks))
    call = _RecordedCall(fn)
    if workers <= 1 or len(tasks) <= 1:
        pairs = [call(task) for task in tasks]
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            pairs = list(pool.map(call, tasks))
    results: List[R] = []
    for result, snapshot in pairs:
        recorder.absorb(snapshot)
        results.append(result)
    return results
