"""Deterministic random-number-generator plumbing.

All stochastic code in the library accepts a ``rng`` argument that may be an
``int`` seed, an existing :class:`numpy.random.Generator`, or ``None`` (fresh
OS entropy).  Components that run sub-simulations derive *independent child
generators* with :func:`spawn_children` so that, e.g., adding one more Monte
Carlo trial does not perturb the random stream of every other trial.
"""

from __future__ import annotations

from typing import List, Union

import numpy as np

__all__ = ["RngLike", "ensure_rng", "spawn_children"]

RngLike = Union[int, np.random.Generator, None]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    rng:
        ``None`` for OS entropy, an ``int`` seed for reproducibility, or an
        existing generator (returned unchanged so callers can share state).
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(
        f"rng must be None, an int seed, or a numpy Generator; got {type(rng)!r}"
    )


def spawn_children(rng: RngLike, count: int) -> List[np.random.Generator]:
    """Derive ``count`` statistically independent child generators.

    Uses the SeedSequence spawning protocol, so children are independent of
    each other *and* of the parent's future output.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    parent = ensure_rng(rng)
    seeds = parent.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
