"""Lightweight column-oriented result tables for benchmark output.

The benchmark harness prints paper-style rows.  ``ResultTable`` keeps that
formatting logic in one place: fixed-width columns, float formatting, and a
plain-text renderer that needs no third-party dependency.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Sequence

__all__ = ["ResultTable"]


class ResultTable:
    """An append-only table with ordered, typed columns.

    >>> t = ResultTable(["k", "error"])
    >>> t.add_row(k=10, error=0.031)
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, columns: Sequence[str], title: str = "") -> None:
        if not columns:
            raise ValueError("a ResultTable needs at least one column")
        if len(set(columns)) != len(columns):
            raise ValueError(f"duplicate column names in {columns}")
        self.title = title
        self.columns: List[str] = list(columns)
        self.rows: List[Dict[str, Any]] = []

    def add_row(self, **values: Any) -> None:
        """Append one row; every column must be supplied exactly once."""
        missing = [c for c in self.columns if c not in values]
        extra = [c for c in values if c not in self.columns]
        if missing:
            raise ValueError(f"row is missing columns {missing}")
        if extra:
            raise ValueError(f"row has unknown columns {extra}")
        self.rows.append(dict(values))

    def column(self, name: str) -> List[Any]:
        """Return all values of one column, in insertion order."""
        if name not in self.columns:
            raise KeyError(name)
        return [row[name] for row in self.rows]

    @staticmethod
    def _format_cell(value: Any) -> str:
        if isinstance(value, bool):
            return str(value)
        if isinstance(value, float):
            return f"{value:.4f}"
        return str(value)

    def render(self) -> str:
        """Render the table as aligned plain text."""
        header = list(self.columns)
        body = [[self._format_cell(row[c]) for c in self.columns] for row in self.rows]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines: List[str] = []
        if self.title:
            lines.append(self.title)
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for r in body:
            lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
        return "\n".join(lines)

    def to_csv(self) -> str:
        """Render the table as CSV (header row first, RFC-4180 quoting)."""
        import csv
        import io

        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.columns)
        for row in self.rows:
            writer.writerow([row[c] for c in self.columns])
        return buffer.getvalue()

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return iter(self.rows)
