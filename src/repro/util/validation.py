"""Small argument-validation helpers with consistent error messages."""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np
from numpy.typing import NDArray

__all__ = ["require", "require_positive", "require_in_range", "require_shape"]


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValueError` with ``message`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def require_positive(value: float, name: str, *, strict: bool = True) -> None:
    """Validate that ``value`` is positive (or non-negative if not strict)."""
    if strict and not value > 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    if not strict and not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value}")


def require_in_range(
    value: float, name: str, low: float, high: float, *, inclusive: bool = True
) -> None:
    """Validate that ``value`` lies in ``[low, high]`` (or ``(low, high)``)."""
    if inclusive:
        if not (low <= value <= high):
            raise ValueError(f"{name} must be in [{low}, {high}], got {value}")
    else:
        if not (low < value < high):
            raise ValueError(f"{name} must be in ({low}, {high}), got {value}")


def require_shape(
    array: Any, shape: Sequence[Optional[int]], name: str
) -> NDArray[Any]:
    """Coerce ``array`` to ndarray and validate its shape.

    ``shape`` entries that are ``None`` match any extent on that axis.
    Returns the coerced array.
    """
    arr = np.asarray(array)
    if arr.ndim != len(shape):
        raise ValueError(
            f"{name} must have {len(shape)} dimensions, got {arr.ndim}"
        )
    for axis, (actual, expected) in enumerate(zip(arr.shape, shape)):
        if expected is not None and actual != expected:
            raise ValueError(
                f"{name} has shape {arr.shape}; expected extent {expected} "
                f"on axis {axis}, got {actual}"
            )
    return arr
