"""Tests for the shared baseline clustering helper."""

import numpy as np
import pytest

from repro.baselines.common import cluster_readings, group_positions, group_rss
from repro.geo.points import Point
from repro.radio.rss import RssMeasurement


def make_trace(cluster_centers, per_cluster, rng, rss_base=-50.0):
    measurements = []
    t = 0.0
    for cx, cy in cluster_centers:
        for _ in range(per_cluster):
            measurements.append(
                RssMeasurement(
                    rss_dbm=rss_base + rng.normal(0, 1.5),
                    position=Point(
                        cx + rng.normal(0, 3.0), cy + rng.normal(0, 3.0)
                    ),
                    timestamp=t,
                )
            )
            t += 1.0
    return measurements


class TestClusterReadings:
    def test_well_separated_clusters_found(self):
        rng = np.random.default_rng(0)
        trace = make_trace([(0, 0), (100, 0), (50, 90)], 8, rng)
        clustered = cluster_readings(trace, max_groups=6, rng=1)
        assert clustered.n_groups == 3

    def test_groups_partition_indices(self):
        rng = np.random.default_rng(1)
        trace = make_trace([(0, 0), (80, 80)], 6, rng)
        clustered = cluster_readings(trace, rng=2)
        indices = sorted(i for g in clustered.groups for i in g)
        assert indices == list(range(len(trace)))

    def test_homogeneous_trace_single_group(self):
        rng = np.random.default_rng(2)
        trace = make_trace([(0, 0)], 10, rng)
        clustered = cluster_readings(trace, rng=3)
        assert clustered.n_groups == 1

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            cluster_readings([])

    def test_max_groups_respected(self):
        rng = np.random.default_rng(3)
        trace = make_trace([(0, 0), (60, 0), (0, 60), (60, 60)], 5, rng)
        clustered = cluster_readings(trace, max_groups=2, rng=4)
        assert clustered.n_groups <= 2

    def test_validation(self):
        rng = np.random.default_rng(4)
        trace = make_trace([(0, 0)], 3, rng)
        with pytest.raises(ValueError):
            cluster_readings(trace, max_groups=0)

    def test_single_reading(self):
        rng = np.random.default_rng(5)
        trace = make_trace([(0, 0)], 1, rng)
        clustered = cluster_readings(trace, rng=6)
        assert clustered.groups == [[0]]


class TestGroupAccessors:
    def test_group_positions_and_rss(self):
        rng = np.random.default_rng(6)
        trace = make_trace([(0, 0)], 4, rng)
        group = [0, 2]
        positions = group_positions(trace, group)
        rss = group_rss(trace, group)
        assert positions == [trace[0].position, trace[2].position]
        assert list(rss) == [trace[0].rss_dbm, trace[2].rss_dbm]
