"""Tests for the LGMM baseline localizer."""

import numpy as np
import pytest

from repro.baselines.lgmm import LgmmConfig, LgmmLocalizer
from repro.geo.grid import Grid
from repro.geo.points import BoundingBox, Point
from repro.metrics.errors import mean_distance_error
from repro.radio.pathloss import PathLossModel
from repro.radio.rss import RssMeasurement


@pytest.fixture
def channel():
    return PathLossModel(shadowing_sigma_db=0.0)


@pytest.fixture
def grid():
    return Grid(box=BoundingBox(0, 0, 120, 120), lattice_length=10.0)


def synth_trace(channel, aps, readings_per_ap, rng):
    measurements = []
    t = 0.0
    for ap in aps:
        for _ in range(readings_per_ap):
            # Readings taken from a ring around the AP.
            angle = rng.uniform(0, 2 * np.pi)
            radius = rng.uniform(8, 30)
            position = Point(
                ap.x + radius * np.cos(angle), ap.y + radius * np.sin(angle)
            )
            rss = float(
                channel.sample_rss_dbm(ap.distance_to(position), rng=rng)
            )
            measurements.append(
                RssMeasurement(rss_dbm=rss, position=position, timestamp=t)
            )
            t += 1.0
    return measurements


class TestLgmmConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_aps": 0},
            {"em_iterations": 0},
            {"rss_sigma_db": 0.0},
            {"restarts": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            LgmmConfig(**kwargs)


class TestLgmmLocalizer:
    def test_single_ap(self, channel, grid):
        rng = np.random.default_rng(0)
        ap = Point(55, 65)
        trace = synth_trace(channel, [ap], 12, rng)
        localizer = LgmmLocalizer(
            grid, channel, LgmmConfig(max_aps=3, restarts=2), rng=1
        )
        estimates = localizer.estimate(trace)
        assert len(estimates) == 1
        assert estimates[0].distance_to(ap) <= 1.5 * grid.diameter

    def test_two_separated_aps(self, channel, grid):
        rng = np.random.default_rng(1)
        aps = [Point(25, 25), Point(95, 95)]
        trace = synth_trace(channel, aps, 12, rng)
        localizer = LgmmLocalizer(
            grid, channel, LgmmConfig(max_aps=4, restarts=2), rng=2
        )
        estimates = localizer.estimate(trace)
        assert len(estimates) == 2
        assert mean_distance_error(aps, estimates) <= 1.5 * grid.diameter

    def test_estimates_on_grid_points(self, channel, grid):
        rng = np.random.default_rng(2)
        trace = synth_trace(channel, [Point(60, 60)], 10, rng)
        localizer = LgmmLocalizer(grid, channel, rng=3)
        for estimate in localizer.estimate(trace):
            snapped = grid.point_at(grid.snap(estimate))
            assert estimate.distance_to(snapped) < 1e-9

    def test_empty_trace(self, channel, grid):
        localizer = LgmmLocalizer(grid, channel, rng=0)
        assert localizer.estimate([]) == []

    def test_deterministic_given_seed(self, channel, grid):
        rng = np.random.default_rng(3)
        trace = synth_trace(channel, [Point(40, 70)], 10, rng)
        a = LgmmLocalizer(grid, channel, rng=5).estimate(trace)
        b = LgmmLocalizer(grid, channel, rng=5).estimate(trace)
        assert a == b
