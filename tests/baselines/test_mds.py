"""Tests for the MDS baseline localizer."""

import numpy as np
import pytest

from repro.baselines.mds import (
    MdsConfig,
    MdsLocalizer,
    classical_mds,
    procrustes_anchor,
)
from repro.geo.points import Point
from repro.metrics.errors import mean_distance_error
from repro.radio.pathloss import PathLossModel
from repro.radio.rss import RssMeasurement


@pytest.fixture
def channel():
    return PathLossModel(shadowing_sigma_db=0.0)


class TestClassicalMds:
    def test_recovers_configuration_distances(self):
        points = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0], [7.0, 7.0]])
        deltas = points[:, None, :] - points[None, :, :]
        distances = np.sqrt((deltas**2).sum(axis=-1))
        embedding = classical_mds(distances)
        deltas_e = embedding[:, None, :] - embedding[None, :, :]
        recovered = np.sqrt((deltas_e**2).sum(axis=-1))
        assert np.allclose(recovered, distances, atol=1e-6)

    def test_asymmetric_rejected(self):
        with pytest.raises(ValueError):
            classical_mds(np.array([[0.0, 1.0], [2.0, 0.0]]))

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            classical_mds(np.zeros((2, 3)))

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            classical_mds(np.zeros((2, 2)), dimensions=0)


class TestProcrustesAnchor:
    def test_aligns_rotated_copy(self):
        rng = np.random.default_rng(0)
        anchors = rng.normal(size=(5, 2)) * 10
        angle = 0.7
        rotation = np.array(
            [[np.cos(angle), -np.sin(angle)], [np.sin(angle), np.cos(angle)]]
        )
        rotated = anchors @ rotation.T + np.array([3.0, -7.0])
        aligned = procrustes_anchor(rotated, anchors)
        assert np.allclose(aligned, anchors, atol=1e-8)

    def test_handles_reflection(self):
        anchors = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
        reflected = anchors * np.array([1.0, -1.0])
        aligned = procrustes_anchor(reflected, anchors)
        assert np.allclose(aligned, anchors, atol=1e-8)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            procrustes_anchor(np.zeros((3, 2)), np.zeros((4, 2)))


def ring_trace(channel, aps, readings_per_ap, rng):
    measurements = []
    t = 0.0
    for ap in aps:
        for _ in range(readings_per_ap):
            angle = rng.uniform(0, 2 * np.pi)
            radius = rng.uniform(8, 25)
            position = Point(
                ap.x + radius * np.cos(angle), ap.y + radius * np.sin(angle)
            )
            rss = float(channel.sample_rss_dbm(ap.distance_to(position), rng=rng))
            measurements.append(
                RssMeasurement(rss_dbm=rss, position=position, timestamp=t)
            )
            t += 1.0
    return measurements


class TestMdsLocalizer:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            MdsConfig(max_aps=0)
        with pytest.raises(ValueError):
            MdsConfig(co_audibility_radius_m=0.0)

    def test_two_aps(self, channel):
        rng = np.random.default_rng(1)
        aps = [Point(20, 20), Point(100, 100)]
        trace = ring_trace(channel, aps, 10, rng)
        localizer = MdsLocalizer(channel, MdsConfig(max_aps=4), rng=2)
        estimates = localizer.estimate(trace)
        assert len(estimates) == 2
        assert mean_distance_error(aps, estimates) < 25.0

    def test_single_ap(self, channel):
        rng = np.random.default_rng(2)
        trace = ring_trace(channel, [Point(50, 50)], 12, rng)
        localizer = MdsLocalizer(channel, rng=3)
        estimates = localizer.estimate(trace)
        assert len(estimates) == 1
        assert estimates[0].distance_to(Point(50, 50)) < 20.0

    def test_empty_trace(self, channel):
        assert MdsLocalizer(channel, rng=0).estimate([]) == []

    def test_three_aps_counting(self, channel):
        rng = np.random.default_rng(3)
        aps = [Point(20, 20), Point(110, 30), Point(60, 110)]
        trace = ring_trace(channel, aps, 10, rng)
        localizer = MdsLocalizer(channel, MdsConfig(max_aps=6), rng=4)
        estimates = localizer.estimate(trace)
        assert 2 <= len(estimates) <= 4
