"""Tests for the Skyhook / Place Lab fingerprint baseline."""

import numpy as np
import pytest

from repro.baselines.skyhook import SkyhookConfig, SkyhookLocalizer
from repro.geo.points import Point
from repro.metrics.errors import mean_distance_error
from repro.radio.pathloss import PathLossModel
from repro.radio.rss import RssMeasurement


@pytest.fixture
def channel():
    return PathLossModel(shadowing_sigma_db=0.5)


def drive_by_trace(channel, aps, rng, n_per_ap=12):
    """Readings taken along lines passing near each AP."""
    measurements = []
    t = 0.0
    for ap in aps:
        for i in range(n_per_ap):
            # Drive past the AP at a 10 m lateral offset.
            along = -30 + 60 * i / (n_per_ap - 1)
            position = Point(ap.x + along, ap.y + 10.0)
            rss = float(channel.sample_rss_dbm(ap.distance_to(position), rng=rng))
            measurements.append(
                RssMeasurement(rss_dbm=rss, position=position, timestamp=t)
            )
            t += 1.0
    return measurements


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [{"max_aps": 0}, {"rank_exponent": -1.0}, {"fusion_radius_m": 0.0}],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            SkyhookConfig(**kwargs)


class TestSingleDrive:
    def test_single_ap_centroid_near_truth(self, channel):
        rng = np.random.default_rng(0)
        ap = Point(50, 50)
        trace = drive_by_trace(channel, [ap], rng)
        localizer = SkyhookLocalizer(rng=1)
        estimates = localizer.estimate(trace)
        assert len(estimates) == 1
        # Fingerprint centroids are biased toward the drive line; the
        # paper's testbed shows ~11.6 m Skyhook error, so allow that order.
        assert estimates[0].distance_to(ap) < 20.0

    def test_two_aps_counted(self, channel):
        rng = np.random.default_rng(1)
        aps = [Point(30, 30), Point(140, 30)]
        trace = drive_by_trace(channel, aps, rng)
        localizer = SkyhookLocalizer(rng=2)
        estimates = localizer.estimate(trace)
        assert len(estimates) == 2
        assert mean_distance_error(aps, estimates) < 20.0

    def test_empty_trace(self):
        assert SkyhookLocalizer(rng=0).estimate([]) == []

    def test_rank_weighting_pulls_toward_strong_readings(self, channel):
        # Strongest readings happen nearest the AP, so a higher rank
        # exponent should move the centroid closer to the AP.
        rng = np.random.default_rng(2)
        ap = Point(50, 50)
        trace = drive_by_trace(channel, [ap], rng)
        flat = SkyhookLocalizer(
            SkyhookConfig(rank_exponent=0.0), rng=3
        ).estimate(trace)[0]
        sharp = SkyhookLocalizer(
            SkyhookConfig(rank_exponent=3.0), rng=3
        ).estimate(trace)[0]
        assert sharp.distance_to(ap) <= flat.distance_to(ap) + 0.5


class TestCrowdsourced:
    def test_fusion_improves_on_single_drive(self, channel):
        ap = Point(60, 40)
        rng = np.random.default_rng(3)
        traces = [drive_by_trace(channel, [ap], rng) for _ in range(5)]
        localizer = SkyhookLocalizer(rng=4)
        single_error = localizer.estimate(traces[0])[0].distance_to(ap)
        fused = localizer.estimate_crowdsourced(traces)
        assert len(fused) == 1
        assert fused[0].distance_to(ap) <= single_error + 2.0

    def test_empty_traces(self):
        assert SkyhookLocalizer(rng=0).estimate_crowdsourced([]) == []
        assert SkyhookLocalizer(rng=0).estimate_crowdsourced([[], []]) == []

    def test_single_trace_passthrough(self, channel):
        rng = np.random.default_rng(4)
        trace = drive_by_trace(channel, [Point(40, 40)], rng)
        localizer = SkyhookLocalizer(rng=5)
        direct = localizer.estimate(trace)
        via_crowd = localizer.estimate_crowdsourced([trace])
        assert len(direct) == len(via_crowd)

    def test_distinct_aps_not_merged(self, channel):
        rng = np.random.default_rng(5)
        aps = [Point(30, 30), Point(160, 30)]
        traces = [drive_by_trace(channel, aps, rng) for _ in range(3)]
        fused = SkyhookLocalizer(rng=6).estimate_crowdsourced(traces)
        assert len(fused) == 2


class TestIdentityGrouping:
    def test_bssid_tagged_traces_group_by_identity(self, channel):
        """With source identities on every reading, grouping is exact —
        one estimate per distinct BSSID regardless of spatial overlap."""
        rng = np.random.default_rng(7)
        # Two APs too close for clustering to separate.
        aps = {"alpha": Point(50, 50), "beta": Point(62, 50)}
        trace = []
        t = 0.0
        for name, ap in aps.items():
            for i in range(10):
                position = Point(ap.x - 25 + 5 * i, ap.y + 8)
                rss = float(
                    channel.sample_rss_dbm(ap.distance_to(position), rng=rng)
                )
                trace.append(
                    RssMeasurement(
                        rss_dbm=rss, position=position, timestamp=t,
                        source_ap=name,
                    )
                )
                t += 1.0
        estimates = SkyhookLocalizer(rng=8).estimate(trace)
        assert len(estimates) == 2

    def test_mixed_identity_trace_falls_back_to_clustering(self, channel):
        rng = np.random.default_rng(9)
        ap = Point(40, 40)
        trace = []
        for i in range(8):
            position = Point(20 + 5 * i, 50)
            rss = float(channel.sample_rss_dbm(ap.distance_to(position), rng=rng))
            trace.append(
                RssMeasurement(
                    rss_dbm=rss,
                    position=position,
                    timestamp=float(i),
                    source_ap="known" if i % 2 == 0 else None,
                )
            )
        estimates = SkyhookLocalizer(rng=10).estimate(trace)
        assert len(estimates) >= 1
