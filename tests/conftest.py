"""Shared fixtures for the CrowdWiFi reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geo.grid import Grid
from repro.geo.points import BoundingBox, Point
from repro.geo.trajectory import Trajectory
from repro.mobility.models import PathFollower
from repro.radio.pathloss import PathLossModel
from repro.sim.collector import CollectorConfig, RssCollector
from repro.sim.world import AccessPoint, World


@pytest.fixture
def rng():
    """A deterministic generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def channel():
    """The paper's UCI channel (no shadowing, for deterministic tests)."""
    return PathLossModel(
        tx_power_dbm=20.0,
        reference_loss_db=45.6,
        path_loss_exponent=1.76,
        shadowing_sigma_db=0.0,
    )


@pytest.fixture
def noisy_channel():
    """The UCI channel with the paper's 0.5 dB shadowing."""
    return PathLossModel(
        tx_power_dbm=20.0,
        reference_loss_db=45.6,
        path_loss_exponent=1.76,
        shadowing_sigma_db=0.5,
    )


@pytest.fixture
def small_grid():
    """A 10×10 grid of 10 m cells over a 100 m square."""
    return Grid(box=BoundingBox(0.0, 0.0, 100.0, 100.0), lattice_length=10.0)


@pytest.fixture
def small_world(channel):
    """Three well-separated APs in a 100 m square."""
    return World(
        access_points=[
            AccessPoint(ap_id="a", position=Point(20.0, 30.0), radio_range_m=60.0),
            AccessPoint(ap_id="b", position=Point(80.0, 20.0), radio_range_m=60.0),
            AccessPoint(ap_id="c", position=Point(55.0, 85.0), radio_range_m=60.0),
        ],
        channel=channel,
    )


@pytest.fixture
def loop_route():
    """A rectangular loop inside the 100 m square."""
    return Trajectory.rectangle(10.0, 10.0, 90.0, 90.0)


@pytest.fixture
def small_trace(small_world, loop_route):
    """A deterministic 40-reading drive-by trace of the small world."""
    collector = RssCollector(
        small_world,
        CollectorConfig(sample_period_s=1.0, communication_radius_m=60.0),
        rng=7,
    )
    follower = PathFollower(loop_route, 8.0)
    return collector.collect_along(follower, n_samples=40)
