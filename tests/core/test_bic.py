"""Tests for BIC model selection (§4.3.5)."""

import math

import pytest

from repro.core.bic import bic_score, score_hypothesis, select_by_bic
from repro.geo.points import Point
from repro.radio.pathloss import PathLossModel


@pytest.fixture
def channel():
    return PathLossModel(shadowing_sigma_db=0.0)


def synth_rss(channel, ap, points):
    return [float(channel.mean_rss_dbm(ap.distance_to(p))) for p in points]


class TestBicScore:
    def test_formula(self):
        assert bic_score(-10.0, 4, 20) == pytest.approx(
            2 * -10.0 - 4 * math.log(20)
        )

    def test_more_parameters_penalized(self):
        assert bic_score(-10.0, 2, 20) > bic_score(-10.0, 4, 20)

    def test_single_sample_no_penalty(self):
        assert bic_score(-1.0, 10, 1) == pytest.approx(-2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            bic_score(0.0, -1, 10)
        with pytest.raises(ValueError):
            bic_score(0.0, 2, 0)


class TestScoreHypothesis:
    def test_true_hypothesis_beats_shifted(self, channel):
        ap = Point(50, 50)
        points = [Point(30, 40), Point(60, 60), Point(45, 70), Point(70, 45)]
        rss = synth_rss(channel, ap, points)
        good = score_hypothesis(rss, points, [ap], channel)
        bad = score_hypothesis(rss, points, [Point(10, 10)], channel)
        assert good > bad

    def test_parameter_count_is_2k(self, channel):
        # Two identical AP hypotheses fit the data identically, so the
        # score difference is exactly the extra 2·log(m) penalty.
        ap = Point(50, 50)
        points = [Point(40, 40), Point(60, 60), Point(55, 45)]
        rss = synth_rss(channel, ap, points)
        one = score_hypothesis(rss, points, [ap], channel)
        two = score_hypothesis(rss, points, [ap, ap], channel)
        # The mixture with a duplicated component has the same likelihood
        # (weights split evenly) but 2 more parameters.
        assert one - two == pytest.approx(2 * math.log(3), abs=0.2)


class TestSelectByBic:
    def test_selects_true_count(self, channel):
        ap1, ap2 = Point(20, 50), Point(80, 50)
        points = [
            Point(15, 45), Point(25, 55), Point(18, 52),
            Point(75, 45), Point(85, 55), Point(82, 48),
        ]
        sources = [ap1, ap1, ap1, ap2, ap2, ap2]
        rss = [
            float(channel.mean_rss_dbm(s.distance_to(p)))
            for s, p in zip(sources, points)
        ]
        hypotheses = [
            [Point(50, 50)],            # K=1, wrong
            [ap1, ap2],                 # K=2, truth
            [ap1, ap2, Point(50, 90)],  # K=3, over-fit
        ]
        best, best_score, scores = select_by_bic(
            hypotheses, rss, points, channel
        )
        assert best == [ap1, ap2]
        assert best_score == max(scores)
        assert len(scores) == 3

    def test_empty_hypothesis_list(self, channel):
        best, score, scores = select_by_bic([], [-60.0], [Point(0, 0)], channel)
        assert best is None
        assert score == float("-inf")
        assert scores == []

    def test_single_hypothesis(self, channel):
        best, _, _ = select_by_bic(
            [[Point(5, 5)]], [-60.0], [Point(0, 0)], channel
        )
        assert best == [Point(5, 5)]
