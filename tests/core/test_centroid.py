"""Tests for threshold-centroid processing (§4.3.4)."""

import numpy as np
import pytest

from repro.core.centroid import threshold_centroid
from repro.geo.grid import Grid
from repro.geo.points import BoundingBox


@pytest.fixture
def grid():
    return Grid(box=BoundingBox(0, 0, 50, 50), lattice_length=10.0)


class TestThresholdCentroid:
    def test_single_spike_returns_cell_center(self, grid):
        theta = np.zeros(grid.n_points)
        theta[12] = 1.0
        location, support = threshold_centroid(theta, grid)
        assert location == grid.point_at(12)
        assert list(support) == [12]

    def test_two_equal_spikes_average(self, grid):
        theta = np.zeros(grid.n_points)
        a, b = 12, 13  # horizontally adjacent cells
        theta[a] = theta[b] = 1.0
        location, support = threshold_centroid(theta, grid)
        pa, pb = grid.point_at(a), grid.point_at(b)
        assert location.x == pytest.approx((pa.x + pb.x) / 2)
        assert location.y == pytest.approx(pa.y)
        assert set(support) == {a, b}

    def test_weighted_average(self, grid):
        theta = np.zeros(grid.n_points)
        theta[12], theta[13] = 3.0, 1.0
        location, _ = threshold_centroid(theta, grid, threshold_fraction=0.1)
        pa, pb = grid.point_at(12), grid.point_at(13)
        assert location.x == pytest.approx(0.75 * pa.x + 0.25 * pb.x)

    def test_threshold_excludes_weak_coefficients(self, grid):
        theta = np.zeros(grid.n_points)
        theta[12] = 1.0
        theta[20] = 0.1  # below the 0.3 default threshold
        location, support = threshold_centroid(theta, grid)
        assert list(support) == [12]
        assert location == grid.point_at(12)

    def test_support_sorted_by_coefficient(self, grid):
        theta = np.zeros(grid.n_points)
        theta[5], theta[6], theta[7] = 0.5, 1.0, 0.8
        _, support = threshold_centroid(theta, grid, threshold_fraction=0.3)
        assert list(support) == [6, 7, 5]

    def test_negative_coefficients_clipped(self, grid):
        theta = np.full(grid.n_points, -1.0)
        theta[9] = 1.0
        location, support = threshold_centroid(theta, grid)
        assert list(support) == [9]

    def test_all_zero_raises(self, grid):
        with pytest.raises(ValueError, match="no positive coefficient"):
            threshold_centroid(np.zeros(grid.n_points), grid)

    def test_wrong_length_raises(self, grid):
        with pytest.raises(ValueError):
            threshold_centroid(np.ones(3), grid)

    @pytest.mark.parametrize("fraction", [0.0, -0.1, 1.5])
    def test_bad_threshold_fraction(self, grid, fraction):
        theta = np.zeros(grid.n_points)
        theta[0] = 1.0
        with pytest.raises(ValueError):
            threshold_centroid(theta, grid, threshold_fraction=fraction)

    def test_threshold_one_keeps_only_peak(self, grid):
        theta = np.zeros(grid.n_points)
        theta[3], theta[4] = 1.0, 0.999
        _, support = threshold_centroid(theta, grid, threshold_fraction=1.0)
        assert list(support) == [3]

    def test_centroid_inside_grid_box(self, grid):
        rng = np.random.default_rng(0)
        theta = rng.random(grid.n_points)
        location, _ = threshold_centroid(theta, grid, threshold_fraction=0.5)
        assert grid.box.contains(location)
