"""Tests for (AP, RSS) combination enumeration (§4.3.3 / Proposition 2)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.combinations import (
    CombinationEnumerator,
    EnumeratorConfig,
    count_partitions,
    enumerate_partitions,
)
from repro.geo.points import Point


def stirling2(n, k):
    """Reference Stirling numbers via inclusion-exclusion."""
    if k == 0:
        return 1 if n == 0 else 0
    return sum(
        (-1) ** j * math.comb(k, j) * (k - j) ** n for j in range(k + 1)
    ) // math.factorial(k)


class TestEnumeratePartitions:
    @pytest.mark.parametrize(
        "n,k", [(1, 1), (3, 2), (4, 2), (5, 3), (6, 4), (7, 3)]
    )
    def test_counts_match_stirling(self, n, k):
        assert len(list(enumerate_partitions(n, k))) == stirling2(n, k)

    def test_partitions_are_valid(self):
        for partition in enumerate_partitions(5, 3):
            items = [i for block in partition for i in block]
            assert sorted(items) == list(range(5))
            assert len(partition) == 3
            assert all(block for block in partition)

    def test_partitions_are_distinct(self):
        partitions = list(enumerate_partitions(6, 3))
        assert len(partitions) == len(set(partitions))

    def test_canonical_ordering(self):
        for partition in enumerate_partitions(5, 2):
            firsts = [block[0] for block in partition]
            assert firsts == sorted(firsts)
            assert partition[0][0] == 0

    def test_k_larger_than_n_empty(self):
        assert list(enumerate_partitions(2, 3)) == []

    def test_zero_blocks(self):
        assert list(enumerate_partitions(0, 0)) == [()]
        assert list(enumerate_partitions(2, 0)) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            list(enumerate_partitions(-1, 1))

    @given(st.integers(1, 7), st.integers(1, 5))
    @settings(max_examples=25, deadline=None)
    def test_count_partitions_agrees_with_enumeration(self, n, k):
        assert count_partitions(n, k) == len(list(enumerate_partitions(n, k)))


class TestCountPartitions:
    def test_bell_number_totals(self):
        # Bell(5) = 52 partitions across all K.
        assert sum(count_partitions(5, k) for k in range(1, 6)) == 52

    def test_proposition2_growth(self):
        # The total search space grows super-exponentially with M,
        # which is why the sliding window must keep M small.
        totals = [
            sum(count_partitions(m, k) for k in range(1, m + 1))
            for m in range(2, 9)
        ]
        ratios = [b / a for a, b in zip(totals, totals[1:])]
        assert all(r2 > r1 for r1, r2 in zip(ratios, ratios[1:]))


def make_readings(cluster_centers, per_cluster, rng):
    positions, rss = [], []
    for cx, cy in cluster_centers:
        for _ in range(per_cluster):
            positions.append(
                Point(cx + rng.normal(0, 2.0), cy + rng.normal(0, 2.0))
            )
            rss.append(-50.0 + rng.normal(0, 1.0))
    return positions, rss


class TestEnumeratorConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_aps": 0},
            {"max_exhaustive_items": 0},
            {"cluster_restarts": 0},
            {"rss_feature_weight": -1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            EnumeratorConfig(**kwargs)


class TestCombinationEnumerator:
    def test_small_input_is_exhaustive(self):
        enum = CombinationEnumerator(
            EnumeratorConfig(max_aps=3, max_exhaustive_items=5), rng=0
        )
        positions = [Point(i, 0) for i in range(4)]
        partitions = enum.candidate_partitions(positions, [-50.0] * 4)
        expected = sum(stirling2(4, k) for k in (1, 2, 3))
        assert len(partitions) == expected

    def test_large_input_is_pruned(self):
        rng = np.random.default_rng(0)
        positions, rss = make_readings([(0, 0), (100, 0), (50, 90)], 5, rng)
        enum = CombinationEnumerator(
            EnumeratorConfig(max_aps=4, max_exhaustive_items=7), rng=1
        )
        partitions = enum.candidate_partitions(positions, rss)
        # Far fewer than the Bell-number blowup for 15 items.
        assert 1 <= len(partitions) <= 20

    def test_pruned_candidates_contain_true_clustering(self):
        rng = np.random.default_rng(1)
        positions, rss = make_readings([(0, 0), (200, 0)], 6, rng)
        enum = CombinationEnumerator(rng=2)
        partitions = enum.candidate_partitions(positions, rss)
        truth = (tuple(range(6)), tuple(range(6, 12)))
        assert truth in partitions

    def test_always_contains_single_block(self):
        rng = np.random.default_rng(2)
        positions, rss = make_readings([(0, 0), (80, 80)], 6, rng)
        enum = CombinationEnumerator(rng=3)
        partitions = enum.candidate_partitions(positions, rss)
        assert (tuple(range(12)),) in partitions

    def test_no_duplicate_candidates(self):
        rng = np.random.default_rng(3)
        positions, rss = make_readings([(0, 0), (60, 60), (0, 120)], 4, rng)
        enum = CombinationEnumerator(rng=4)
        partitions = enum.candidate_partitions(positions, rss)
        assert len(partitions) == len(set(partitions))

    def test_empty_input(self):
        enum = CombinationEnumerator(rng=0)
        assert enum.candidate_partitions([], []) == []

    def test_single_reading(self):
        enum = CombinationEnumerator(rng=0)
        assert enum.candidate_partitions([Point(0, 0)], [-50.0]) == [((0,),)]

    def test_length_mismatch(self):
        enum = CombinationEnumerator(rng=0)
        with pytest.raises(ValueError):
            enum.candidate_partitions([Point(0, 0)], [-50.0, -51.0])

    def test_every_candidate_is_a_valid_partition(self):
        rng = np.random.default_rng(4)
        positions, rss = make_readings([(0, 0), (90, 10)], 6, rng)
        enum = CombinationEnumerator(rng=5)
        for partition in enum.candidate_partitions(positions, rss):
            items = sorted(i for block in partition for i in block)
            assert items == list(range(12))
