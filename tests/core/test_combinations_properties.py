"""Property-based tests for the partition enumeration (§4.3.3).

Pins the combinatorial invariants the batched hot path now leans on:
canonical block tuples are the dedup keys of ``recover_blocks``, so the
enumeration must (a) count right against Bell/Stirling references,
(b) emit only canonical exact covers, and (c) never invent partitions in
pruned mode that exact mode would not have produced.
"""

import math

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.combinations import (
    CombinationEnumerator,
    EnumeratorConfig,
    count_partitions,
    enumerate_partitions,
    unique_blocks,
)
from repro.geo.points import Point


def stirling2_reference(n: int, k: int) -> int:
    """Stirling numbers of the second kind by inclusion-exclusion."""
    if k == 0:
        return 1 if n == 0 else 0
    return sum(
        (-1) ** j * math.comb(k, j) * (k - j) ** n for j in range(k + 1)
    ) // math.factorial(k)


def bell_reference(n: int) -> int:
    """Bell numbers via the triangle recurrence."""
    row = [1]
    for _ in range(n):
        next_row = [row[-1]]
        for value in row:
            next_row.append(next_row[-1] + value)
        row = next_row
    return row[0]


class TestCountsMatchReferences:
    @given(st.integers(0, 8), st.integers(0, 8))
    @settings(max_examples=100, deadline=None)
    def test_count_partitions_is_stirling(self, n, k):
        assert count_partitions(n, k) == stirling2_reference(n, k)

    @given(st.integers(1, 8))
    @settings(max_examples=8, deadline=None)
    def test_totals_are_bell_numbers(self, n):
        total = sum(count_partitions(n, k) for k in range(0, n + 1))
        assert total == bell_reference(n)

    @given(st.integers(1, 8), st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_enumeration_count_matches(self, n, k):
        assert len(list(enumerate_partitions(n, k))) == count_partitions(n, k)


class TestPartitionsAreCanonicalExactCovers:
    @given(st.integers(1, 7), st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_every_partition_is_canonical_and_covers(self, n, k):
        for partition in enumerate_partitions(n, k):
            # Exact cover: every index appears in exactly one block.
            items = [i for block in partition for i in block]
            assert sorted(items) == list(range(n))
            # Canonical: items sorted within blocks, blocks sorted by
            # their smallest element, no empty blocks.
            for block in partition:
                assert block
                assert list(block) == sorted(block)
            firsts = [block[0] for block in partition]
            assert firsts == sorted(firsts)

    @given(st.integers(1, 7), st.integers(1, 5))
    @settings(max_examples=25, deadline=None)
    def test_unique_blocks_dedups_to_subsets(self, n, k):
        partitions = list(enumerate_partitions(n, k))
        blocks = unique_blocks(partitions)
        assert len(blocks) == len(set(blocks))
        universe = {block for partition in partitions for block in partition}
        assert set(blocks) == universe


@st.composite
def clustered_readings(draw):
    """Random readings around a few well-separated centers."""
    seed = draw(st.integers(0, 10_000))
    # Keep n <= 8 so the exact-mode reference enumeration stays small.
    n_centers = 2
    per_center = draw(st.integers(3, 4))
    rng = np.random.default_rng(seed)
    positions, rss = [], []
    for c in range(n_centers):
        cx, cy = 150.0 * c, 40.0 * float(c % 2)
        for _ in range(per_center):
            positions.append(
                Point(cx + rng.normal(0, 3.0), cy + rng.normal(0, 3.0))
            )
            rss.append(-50.0 + rng.normal(0, 2.0))
    return positions, rss


class TestPrunedSubsetOfExact:
    @given(clustered_readings(), st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_pruned_output_is_subset_of_exact_output(self, readings, seed):
        positions, rss = readings
        n = len(positions)
        config_kwargs = dict(max_aps=4, cluster_restarts=3)
        pruned = CombinationEnumerator(
            EnumeratorConfig(max_exhaustive_items=n - 1, **config_kwargs),
            rng=seed,
        ).candidate_partitions(positions, rss)
        exact = CombinationEnumerator(
            EnumeratorConfig(max_exhaustive_items=n, **config_kwargs),
            rng=seed,
        ).candidate_partitions(positions, rss)
        assert set(pruned) <= set(exact)
        # And the pruned path is what keeps Proposition 2 at bay.
        assert len(pruned) <= len(exact)
