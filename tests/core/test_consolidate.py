"""Tests for credit-based consolidation (§4.3.6)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.consolidate import ApEstimate, CreditConsolidator
from repro.geo.points import Point


class TestApEstimate:
    def test_merge_weighted_position(self):
        e = ApEstimate(
            location=Point(0, 0), credits=3.0, first_round=0, last_round=0
        )
        merged = e.merged_with(Point(4, 0), 1.0, round_index=2)
        assert merged.location.x == pytest.approx(1.0)
        assert merged.credits == 4.0
        assert merged.last_round == 2
        assert merged.first_round == 0


class TestConsolidator:
    def test_aligned_estimates_merge(self):
        c = CreditConsolidator(alignment_radius_m=10.0)
        c.ingest_round([Point(0, 0)])
        c.ingest_round([Point(4, 0)])
        estimates = c.all_estimates()
        assert len(estimates) == 1
        assert estimates[0].credits == 2.0
        assert estimates[0].location.x == pytest.approx(2.0)

    def test_distant_estimates_stay_separate(self):
        c = CreditConsolidator(alignment_radius_m=10.0)
        c.ingest_round([Point(0, 0)])
        c.ingest_round([Point(50, 0)])
        assert len(c.all_estimates()) == 2

    def test_credit_filter_drops_singletons(self):
        c = CreditConsolidator(alignment_radius_m=10.0)
        c.ingest_round([Point(0, 0), Point(100, 0)])
        c.ingest_round([Point(1, 0)])
        c.ingest_round([Point(0, 1)])
        locations = c.locations(filtered=True)
        assert len(locations) == 1
        assert locations[0].distance_to(Point(0, 0)) < 2.0

    def test_single_round_fallback_returns_unfiltered(self):
        # After only one round nothing can have 2 credits; the readout
        # falls back to the unfiltered set rather than reporting nothing.
        c = CreditConsolidator()
        c.ingest_round([Point(0, 0), Point(100, 100)])
        assert len(c.filtered_estimates()) == 2

    def test_multi_round_empty_filter_is_empty(self):
        c = CreditConsolidator(alignment_radius_m=5.0)
        c.ingest_round([Point(0, 0)])
        c.ingest_round([Point(100, 0)])
        c.ingest_round([Point(200, 0)])
        assert c.filtered_estimates() == []

    def test_merge_pass_folds_echoes(self):
        # A weak echo 14 m from a strong estimate (alignment radius 10,
        # merge radius 15) is folded into it by the final pass.
        c = CreditConsolidator(alignment_radius_m=10.0)
        for _ in range(4):
            c.ingest_round([Point(0, 0)])
        c.ingest_round([Point(14, 0), Point(200, 0)])
        c.ingest_round([Point(14, 0), Point(200, 0)])
        filtered = c.filtered_estimates()
        assert len(filtered) == 2  # strong AP (+echo) and the distant one
        strong = filtered[0]
        assert strong.credits == 6.0
        assert strong.location.x < 7.0  # pulled only slightly by the echo

    def test_round_counter(self):
        c = CreditConsolidator()
        assert c.round_counter == 0
        c.ingest_round([])
        c.ingest_round([Point(0, 0)])
        assert c.round_counter == 2

    def test_custom_credit(self):
        c = CreditConsolidator()
        c.ingest_round([Point(0, 0)], credit_per_estimate=2.5)
        assert c.all_estimates()[0].credits == 2.5

    def test_reset(self):
        c = CreditConsolidator()
        c.ingest_round([Point(0, 0)])
        c.reset()
        assert c.all_estimates() == []
        assert c.round_counter == 0

    def test_estimates_sorted_by_credits(self):
        c = CreditConsolidator(alignment_radius_m=5.0)
        c.ingest_round([Point(0, 0), Point(100, 0)])
        c.ingest_round([Point(0, 0)])
        c.ingest_round([Point(0, 0)])
        estimates = c.all_estimates()
        assert estimates[0].credits >= estimates[1].credits

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"alignment_radius_m": 0.0},
            {"credit_filter_threshold": -1.0},
            {"merge_radius_m": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            CreditConsolidator(**kwargs)

    def test_bad_credit_rejected(self):
        c = CreditConsolidator()
        with pytest.raises(ValueError):
            c.ingest_round([Point(0, 0)], credit_per_estimate=0.0)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.lists(
                st.tuples(
                    st.floats(min_value=0, max_value=1000),
                    st.floats(min_value=0, max_value=1000),
                ),
                max_size=5,
            ),
            min_size=1,
            max_size=8,
        )
    )
    def test_credit_conservation(self, rounds):
        """Total credits across estimates equals total ingested estimates."""
        c = CreditConsolidator(alignment_radius_m=20.0)
        total = 0
        for locations in rounds:
            points = [Point(x, y) for x, y in locations]
            c.ingest_round(points)
            total += len(points)
        credits = sum(e.credits for e in c.all_estimates())
        assert credits == pytest.approx(total)
