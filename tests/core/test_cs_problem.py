"""Tests for the CS problem assembly and Proposition-1 orthogonalization."""

import numpy as np
import pytest

from repro.core.cs_problem import CsProblem, orthogonalize
from repro.geo.grid import Grid
from repro.geo.points import BoundingBox, Point
from repro.radio.pathloss import PathLossModel


@pytest.fixture
def channel():
    return PathLossModel(shadowing_sigma_db=0.0)


@pytest.fixture
def grid():
    return Grid(box=BoundingBox(0, 0, 100, 100), lattice_length=10.0)


@pytest.fixture
def problem(grid, channel):
    return CsProblem(grid, channel, communication_radius_m=60.0)


class TestOrthogonalize:
    def test_q_has_orthonormal_rows(self):
        rng = np.random.default_rng(0)
        A = rng.normal(size=(5, 20))
        Q, _ = orthogonalize(A, rng.normal(size=5))
        assert np.allclose(Q @ Q.T, np.eye(Q.shape[0]), atol=1e-10)

    def test_transform_preserves_row_space_content(self):
        # For y = A x exactly, y' = Q x whenever x lies in A's row space.
        rng = np.random.default_rng(1)
        A = rng.normal(size=(5, 20))
        x_rowspace = A.T @ rng.normal(size=5)
        y = A @ x_rowspace
        Q, y_prime = orthogonalize(A, y)
        assert np.allclose(Q @ x_rowspace, y_prime, atol=1e-8)

    def test_rank_deficient_matrix(self):
        A = np.vstack([np.ones((2, 10)), np.zeros((2, 10))])
        Q, y_prime = orthogonalize(A, np.array([1.0, 1.0, 0.0, 0.0]))
        assert Q.shape[0] == 1  # rank 1
        assert np.isfinite(y_prime).all()

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            orthogonalize(np.eye(3), np.ones(2))


class TestSignatureBasis:
    def test_psi_shape_and_symmetry(self, problem):
        psi = problem.psi
        n = problem.n_grid_points
        assert psi.shape == (n, n)
        assert np.allclose(psi, psi.T)

    def test_psi_diagonal_is_strongest(self, problem):
        psi = problem.psi
        assert np.all(np.diag(psi) >= psi.max(axis=1) - 1e-9)

    def test_psi_cached(self, problem):
        assert problem.psi is problem.psi

    def test_psi_refused_for_huge_grids(self, channel):
        big = Grid(box=BoundingBox(0, 0, 1000, 1000), lattice_length=2.0)
        problem = CsProblem(big, channel)
        with pytest.raises(MemoryError):
            _ = problem.psi

    def test_sensing_matrix_matches_psi_rows(self, problem):
        rows = np.array([3, 17, 42])
        A = problem.sensing_matrix(rows)
        assert np.allclose(A, problem.psi[rows, :])

    def test_sensing_matrix_validation(self, problem):
        with pytest.raises(ValueError):
            problem.sensing_matrix(np.array([]))


class TestMeasurementRows:
    def test_snaps_positions(self, problem, grid):
        positions = [Point(5, 5), Point(95, 95)]
        rows = problem.measurement_rows(positions)
        assert rows[0] == grid.snap(positions[0])
        assert rows[1] == grid.snap(positions[1])

    def test_empty_rejected(self, problem):
        with pytest.raises(ValueError):
            problem.measurement_rows([])


class TestCandidateColumns:
    def test_no_radius_returns_all(self, grid, channel):
        problem = CsProblem(grid, channel)
        cols = problem.candidate_columns(np.array([0]))
        assert len(cols) == grid.n_points

    def test_pruning_keeps_reachable_cells(self, grid, channel):
        problem = CsProblem(grid, channel, communication_radius_m=30.0)
        rp = grid.snap(Point(50, 50))
        cols = problem.candidate_columns(np.array([rp]))
        assert 0 < len(cols) < grid.n_points
        center = grid.point_at(rp)
        for col in cols:
            assert center.distance_to(grid.point_at(col)) <= (
                30.0 + grid.diameter + 1e-9
            )

    def test_true_ap_cell_always_candidate(self, problem, grid):
        ap = Point(30, 30)
        rps = [Point(20, 20), Point(40, 40), Point(30, 10)]
        rows = problem.measurement_rows(rps)
        cols = problem.candidate_columns(rows)
        assert grid.snap(ap) in cols

    def test_disjoint_rps_fall_back_to_union(self, grid, channel):
        # Two RPs more than 2r apart have no commonly reachable cell;
        # pruning falls back to the any-RP union instead of empty.
        problem = CsProblem(grid, channel, communication_radius_m=20.0)
        rows = problem.measurement_rows([Point(5, 5), Point(95, 95)])
        cols = problem.candidate_columns(rows)
        assert len(cols) > 0


class TestRecovery:
    @pytest.mark.parametrize("method", ["matched", "fista", "omp", "basis_pursuit"])
    def test_recover_on_grid_ap(self, problem, grid, channel, method):
        # AP exactly on a grid point, noise-free readings at 5 RPs.
        ap_cell = grid.rowcol_to_index(4, 4)
        ap = grid.point_at(ap_cell)
        rps = [Point(25, 45), Point(45, 25), Point(65, 45), Point(45, 65),
               Point(35, 35)]
        rows = problem.measurement_rows(rps)
        y = np.array([
            float(channel.mean_rss_dbm(ap.distance_to(grid.point_at(r))))
            for r in rows
        ])
        result = problem.recover_location(y, rows, method=method)
        # Basis pursuit is legitimately weaker here: the deterministic,
        # spatially coherent signature basis does not satisfy RIP, so the
        # relaxed ℓ1 program can undershoot the true support by a cell or
        # two where matched/OMP/FISTA stay on it.
        slack = 2.5 if method == "basis_pursuit" else 1.0
        assert result.location.distance_to(ap) <= slack * grid.diameter

    def test_matched_is_exact_on_grid(self, problem, grid, channel):
        ap_cell = grid.rowcol_to_index(6, 3)
        ap = grid.point_at(ap_cell)
        rps = [Point(25, 55), Point(45, 65), Point(35, 75), Point(25, 45)]
        rows = problem.measurement_rows(rps)
        y = np.array([
            float(channel.mean_rss_dbm(ap.distance_to(grid.point_at(r))))
            for r in rows
        ])
        theta = problem.recover_column(y, rows, method="matched")
        assert int(np.argmax(theta)) == ap_cell

    def test_recovered_theta_nonnegative(self, problem, grid, channel):
        ap = grid.point_at(44)
        rps = [Point(30, 30), Point(50, 50), Point(40, 20)]
        rows = problem.measurement_rows(rps)
        y = np.array([
            float(channel.mean_rss_dbm(ap.distance_to(grid.point_at(r))))
            for r in rows
        ])
        for method in ("matched", "fista", "omp"):
            theta = problem.recover_column(y, rows, method=method)
            assert np.all(theta >= 0)
            assert theta.shape == (problem.n_grid_points,)

    def test_length_mismatch_rejected(self, problem):
        with pytest.raises(ValueError):
            problem.recover_column(np.ones(3), np.array([0, 1]))

    def test_result_fields(self, problem, grid, channel):
        ap = grid.point_at(55)
        rps = [Point(45, 45), Point(55, 55), Point(65, 45)]
        rows = problem.measurement_rows(rps)
        y = np.array([
            float(channel.mean_rss_dbm(ap.distance_to(grid.point_at(r))))
            for r in rows
        ])
        result = problem.recover_location(y, rows, method="matched")
        assert result.residual_norm >= 0
        assert len(result.support) >= 1
        assert result.coefficients.shape == (problem.n_grid_points,)
