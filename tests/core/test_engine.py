"""Tests for the full online CS engine (§4, Fig. 2 online half)."""

import numpy as np
import pytest

from repro.core.engine import EngineConfig, OnlineCsEngine
from repro.core.window import WindowConfig
from repro.geo.grid import Grid
from repro.geo.points import BoundingBox, Point
from repro.geo.trajectory import Trajectory
from repro.metrics.errors import mean_distance_error
from repro.mobility.models import PathFollower
from repro.radio.pathloss import PathLossModel
from repro.sim.collector import CollectorConfig, RssCollector
from repro.sim.world import AccessPoint, World

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def channel():
    return PathLossModel(shadowing_sigma_db=0.5)


@pytest.fixture(scope="module")
def three_ap_world(channel):
    """Three roadside APs spaced wide relative to their radio range.

    Mirrors the UCI geometry at reduced scale: near any route point one AP
    dominates, and the sliding window regularly spans route corners (a
    window of purely collinear reference points cannot distinguish an AP
    from its mirror image across the driving line).
    """
    return World(
        access_points=[
            AccessPoint(ap_id="a", position=Point(30, 30), radio_range_m=60.0),
            AccessPoint(ap_id="b", position=Point(150, 30), radio_range_m=60.0),
            AccessPoint(ap_id="c", position=Point(90, 120), radio_range_m=60.0),
        ],
        channel=channel,
    )


@pytest.fixture(scope="module")
def loop_trace(three_ap_world):
    collector = RssCollector(
        three_ap_world,
        CollectorConfig(sample_period_s=1.0, communication_radius_m=60.0),
        rng=11,
    )
    follower = PathFollower(
        Trajectory.rectangle(10, 10, 170, 140), speed_mps=5.0
    )
    return collector.collect_along(follower, n_samples=120)


@pytest.fixture
def fast_config():
    return EngineConfig(
        window=WindowConfig(size=36, step=12),
        readings_per_round=6,
        max_aps_per_round=4,
        communication_radius_m=60.0,
        lattice_length_m=8.0,
        snr_db=30.0,
    )


class TestEngineConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"lattice_length_m": 0.0},
            {"communication_radius_m": 0.0},
            {"readings_per_round": 0},
            {"max_aps_per_round": 0},
            {"centroid_threshold": 0.0},
            {"centroid_threshold": 1.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            EngineConfig(**kwargs)

    def test_paper_defaults(self):
        config = EngineConfig()
        assert config.window.size == 60
        assert config.window.step == 10
        assert config.lattice_length_m == 8.0
        assert config.snr_db == 30.0

    def test_derived_radii(self):
        config = EngineConfig(lattice_length_m=10.0)
        assert config.effective_alignment_radius_m == 15.0
        assert config.effective_refine_max_shift_m == 30.0
        override = EngineConfig(alignment_radius_m=7.0, refine_max_shift_m=9.0)
        assert override.effective_alignment_radius_m == 7.0
        assert override.effective_refine_max_shift_m == 9.0


class TestProcessTrace:
    def test_finds_the_aps(self, channel, three_ap_world, loop_trace, fast_config):
        engine = OnlineCsEngine(channel, fast_config, rng=13)
        result = engine.process_trace(loop_trace)
        truth = three_ap_world.ap_positions()
        assert result.n_aps == 3
        assert mean_distance_error(truth, result.locations) < 8.0

    def test_count_stable_across_seeds(
        self, channel, three_ap_world, loop_trace, fast_config
    ):
        truth = three_ap_world.ap_positions()
        for seed in (5, 9, 13):
            result = OnlineCsEngine(channel, fast_config, rng=seed).process_trace(
                loop_trace
            )
            assert 2 <= result.n_aps <= 4
            assert mean_distance_error(truth, result.locations) < 10.0

    def test_empty_trace(self, channel, fast_config):
        engine = OnlineCsEngine(channel, fast_config, rng=0)
        result = engine.process_trace([])
        assert result.n_aps == 0
        assert result.rounds == []

    def test_diagnostics_populated(self, channel, loop_trace, fast_config):
        engine = OnlineCsEngine(channel, fast_config, rng=13)
        result = engine.process_trace(loop_trace)
        assert len(result.rounds) >= 4
        for diag in result.rounds:
            assert diag.n_hypotheses >= 1
            assert diag.chosen_k == len(diag.chosen_locations)
            assert np.isfinite(diag.bic_score)

    def test_estimate_wrapper(self, channel, loop_trace, fast_config):
        engine = OnlineCsEngine(channel, fast_config, rng=13)
        locations = engine.estimate(loop_trace)
        assert all(isinstance(p, Point) for p in locations)

    def test_fixed_grid_mode(
        self, channel, three_ap_world, loop_trace, fast_config
    ):
        grid = Grid(box=BoundingBox(-50, -50, 230, 200), lattice_length=8.0)
        engine = OnlineCsEngine(channel, fast_config, grid=grid, rng=13)
        result = engine.process_trace(loop_trace)
        truth = three_ap_world.ap_positions()
        assert 2 <= result.n_aps <= 4
        assert mean_distance_error(truth, result.locations) < 10.0

    def test_no_refine_is_grid_limited(
        self, channel, three_ap_world, loop_trace, fast_config
    ):
        from dataclasses import replace

        config = replace(fast_config, refine=False)
        engine = OnlineCsEngine(channel, config, rng=13)
        result = engine.process_trace(loop_trace)
        error = mean_distance_error(
            three_ap_world.ap_positions(), result.locations
        )
        # Without refinement accuracy is grid-quantization-bound: worse
        # than the refined run but still within a few lattice lengths.
        assert error < 3.0 * config.lattice_length_m

    def test_refine_improves_over_no_refine(
        self, channel, three_ap_world, loop_trace, fast_config
    ):
        from dataclasses import replace

        truth = three_ap_world.ap_positions()
        refined = OnlineCsEngine(channel, fast_config, rng=13).process_trace(
            loop_trace
        )
        coarse = OnlineCsEngine(
            channel, replace(fast_config, refine=False), rng=13
        ).process_trace(loop_trace)
        assert mean_distance_error(truth, refined.locations) <= (
            mean_distance_error(truth, coarse.locations)
        )

    def test_deterministic_given_seed(self, channel, loop_trace, fast_config):
        a = OnlineCsEngine(channel, fast_config, rng=3).process_trace(loop_trace)
        b = OnlineCsEngine(channel, fast_config, rng=3).process_trace(loop_trace)
        assert a.locations == b.locations

    @pytest.mark.parametrize("solver", ["matched", "fista", "omp"])
    def test_all_solvers_run(self, channel, loop_trace, solver):
        config = EngineConfig(
            window=WindowConfig(size=36, step=18),
            readings_per_round=5,
            max_aps_per_round=3,
            communication_radius_m=60.0,
            solver=solver,
        )
        engine = OnlineCsEngine(channel, config, rng=13)
        result = engine.process_trace(loop_trace)
        assert 1 <= result.n_aps <= 5

    def test_snr_none_disables_observation_noise(self, channel, loop_trace):
        config = EngineConfig(
            window=WindowConfig(size=36, step=18),
            readings_per_round=5,
            max_aps_per_round=3,
            communication_radius_m=60.0,
            snr_db=None,
        )
        engine = OnlineCsEngine(channel, config, rng=13)
        result = engine.process_trace(loop_trace)
        assert result.n_aps >= 1


class TestSubsampling:
    def test_subsample_indices_within_budget(self, channel, fast_config):
        engine = OnlineCsEngine(channel, fast_config, rng=0)
        indices = engine._subsample_indices(50)
        assert len(indices) <= fast_config.readings_per_round
        assert indices[0] == 0
        assert indices[-1] == 49

    def test_small_window_keeps_all(self, channel, fast_config):
        engine = OnlineCsEngine(channel, fast_config, rng=0)
        assert list(engine._subsample_indices(4)) == [0, 1, 2, 3]
