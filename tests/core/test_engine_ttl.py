"""Tests for TTL handling in the engine (§4.3.2's expiry rule)."""

import pytest

from repro.core.engine import EngineConfig, OnlineCsEngine
from repro.core.window import WindowConfig
from repro.geo.points import Point
from repro.radio.pathloss import PathLossModel
from repro.radio.rss import RssMeasurement


@pytest.fixture
def channel():
    return PathLossModel(shadowing_sigma_db=0.0)


def reading(channel, ap, position, t, ttl):
    return RssMeasurement(
        rss_dbm=float(channel.mean_rss_dbm(ap.distance_to(position))),
        position=position,
        timestamp=t,
        ttl=ttl,
    )


class TestRespectTtl:
    def _config(self, respect_ttl):
        return EngineConfig(
            window=WindowConfig(size=30, step=30),
            readings_per_round=6,
            max_aps_per_round=2,
            communication_radius_m=80.0,
            respect_ttl=respect_ttl,
            snr_db=None,
        )

    def _trace(self, channel):
        """Stale readings point at a decoy AP; fresh ones at the real AP.

        The fresh readings arrive much later, so with TTL respected the
        decoy's readings have expired by the time the round runs.
        """
        decoy = Point(20, 20)
        real = Point(120, 20)
        trace = []
        for i in range(8):
            trace.append(
                reading(channel, decoy, Point(10 + 3 * i, 10), float(i), ttl=30.0)
            )
        for i in range(8):
            trace.append(
                reading(
                    channel, real, Point(110 + 3 * i, 10), 200.0 + i, ttl=300.0
                )
            )
        return trace

    def test_expired_readings_dropped(self, channel):
        trace = self._trace(channel)
        engine = OnlineCsEngine(channel, self._config(True), rng=0)
        result = engine.process_trace(trace)
        # Only the fresh (real-AP) readings survive: one AP found, near it.
        assert result.n_aps == 1
        assert result.locations[0].distance_to(Point(120, 20)) < 15.0

    def test_ttl_ignored_by_default(self, channel):
        trace = self._trace(channel)
        engine = OnlineCsEngine(channel, self._config(False), rng=0)
        result = engine.process_trace(trace)
        # Without expiry both clusters are seen (decoy + real).
        assert result.n_aps == 2

    def test_fully_expired_window_yields_nothing(self, channel):
        decoy = Point(20, 20)
        trace = [
            reading(channel, decoy, Point(10 + i, 10), float(i), ttl=1.0)
            for i in range(5)
        ]
        # Append one fresh far-future reading so 'now' is late.
        trace.append(
            reading(channel, decoy, Point(30, 10), 500.0, ttl=1000.0)
        )
        engine = OnlineCsEngine(channel, self._config(True), rng=0)
        result = engine.process_trace(trace)
        # Only the single fresh reading remains — a 1-reading round still
        # produces at most one (unfiltered single-round) estimate.
        assert result.n_aps <= 1
