"""Equivalence tests for the batched + cached hot path.

The batched round (`recover_blocks` + `l1_solve_batch` + memoized
Proposition-1 factorizations) is a pure performance rewrite — these
tests pin that it computes the *same numbers* as the one-at-a-time
seed path, so any future divergence is a bug, not drift.
"""

import numpy as np
import pytest

from repro.core.combinations import CombinationEnumerator, EnumeratorConfig, unique_blocks
from repro.core.cs_problem import CsProblem, orthogonalize, orthogonalize_system
from repro.core.l1 import L1Solver, l1_solve, l1_solve_batch
from repro.geo.grid import Grid
from repro.geo.points import BoundingBox, Point
from repro.radio.pathloss import PathLossModel


@pytest.fixture
def channel():
    return PathLossModel(shadowing_sigma_db=0.0)


@pytest.fixture
def problem(channel):
    grid = Grid(box=BoundingBox(0, 0, 120, 80), lattice_length=8.0)
    return CsProblem(grid, channel, communication_radius_m=70.0)


@pytest.fixture
def round_data(problem, channel):
    grid = problem.grid
    ap = grid.point_at(grid.rowcol_to_index(4, 6))
    rps = [
        Point(20, 30), Point(40, 50), Point(60, 40),
        Point(80, 30), Point(50, 20), Point(35, 60),
    ]
    rows = problem.measurement_rows(rps)
    rss = np.array([
        float(channel.mean_rss_dbm(ap.distance_to(grid.point_at(r))))
        for r in rows
    ])
    return rows, rss


class TestCachedOrthogonalization:
    def test_cached_matches_uncached(self, problem, round_data):
        """Memoized (Q, T) agrees with a fresh factorization to 1e-10."""
        rows, _ = round_data
        context = problem.round_context(rows)
        for block in [(0, 1, 2), (2, 3), (0, 1, 2, 3, 4, 5), (4,)]:
            block_rows = np.asarray(block, dtype=int)
            columns = context.candidate_columns(block_rows)
            A = context.sensing[np.ix_(block_rows, columns)]
            fresh_q, fresh_t = orthogonalize_system(A)
            cached_q, cached_t = context.orthogonalized_block(block_rows)
            assert np.allclose(cached_q, fresh_q, atol=1e-10)
            assert np.allclose(cached_t, fresh_t, atol=1e-10)

    def test_cache_returns_same_arrays(self, problem, round_data):
        """A second lookup is a cache hit, not a recomputation."""
        rows, _ = round_data
        context = problem.round_context(rows)
        block = np.array([0, 2, 4])
        first = context.orthogonalized_block(block)
        second = context.orthogonalized_block(block)
        assert first[0] is second[0]
        assert first[1] is second[1]

    def test_wrapper_consistency(self, problem, round_data):
        """orthogonalize(A, y) is exactly (Q, T @ y) of the factorization."""
        rows, rss = round_data
        context = problem.round_context(rows)
        block_rows = np.arange(len(rows))
        columns = context.candidate_columns(block_rows)
        A = context.sensing[np.ix_(block_rows, columns)]
        Q, T = orthogonalize_system(A)
        Q_w, y_w = orthogonalize(A, rss)
        assert np.allclose(Q_w, Q, atol=1e-10)
        assert np.allclose(y_w, T @ rss, atol=1e-10)

    def test_round_context_memoized(self, problem, round_data):
        """Same RP tuple → the same context object (and its caches)."""
        rows, _ = round_data
        assert problem.round_context(rows) is problem.round_context(rows)


def one_sparse_batch(rng, m, n, k):
    """k measurement columns, each from a 1-sparse ground truth."""
    A = rng.normal(size=(m, n)) / np.sqrt(m)
    support = rng.choice(n, size=k, replace=False)
    amplitudes = rng.uniform(1.0, 3.0, size=k)
    Y = A[:, support] * amplitudes
    return A, Y


class TestBatchedSolversMatchLoop:
    @pytest.mark.parametrize("nonnegative", [True, False])
    def test_omp_batch_exact(self, nonnegative):
        rng = np.random.default_rng(0)
        A, Y = one_sparse_batch(rng, m=12, n=80, k=10)
        batch = l1_solve_batch(
            A, Y, method=L1Solver.OMP, sparsity=3, nonnegative=nonnegative
        )
        for j in range(Y.shape[1]):
            solo = l1_solve(
                A, Y[:, j], method=L1Solver.OMP, sparsity=3,
                nonnegative=nonnegative,
            )
            # Same greedy path, same lstsq refits → bitwise-equal result.
            assert np.array_equal(batch[:, j], solo)

    @pytest.mark.parametrize("nonnegative", [True, False])
    def test_fista_batch_close(self, nonnegative):
        rng = np.random.default_rng(1)
        A, Y = one_sparse_batch(rng, m=12, n=80, k=10)
        batch = l1_solve_batch(
            A, Y, method=L1Solver.FISTA, nonnegative=nonnegative
        )
        for j in range(Y.shape[1]):
            solo = l1_solve(
                A, Y[:, j], method=L1Solver.FISTA, nonnegative=nonnegative
            )
            # gemm-vs-gemv accumulation and per-column freeze points can
            # differ in the last iterations, so compare to solver accuracy.
            assert np.allclose(batch[:, j], solo, atol=1e-6)

    def test_basis_pursuit_batch(self):
        rng = np.random.default_rng(2)
        A, Y = one_sparse_batch(rng, m=10, n=40, k=4)
        batch = l1_solve_batch(
            A, Y, method=L1Solver.BASIS_PURSUIT, noise_tolerance=1e-6
        )
        for j in range(Y.shape[1]):
            solo = l1_solve(
                A, Y[:, j], method=L1Solver.BASIS_PURSUIT,
                noise_tolerance=1e-6,
            )
            assert np.allclose(batch[:, j], solo, atol=1e-8)

    def test_single_column_promotion(self):
        rng = np.random.default_rng(3)
        A, Y = one_sparse_batch(rng, m=8, n=30, k=1)
        flat = l1_solve_batch(A, Y[:, 0], method=L1Solver.OMP, sparsity=2)
        assert flat.shape == (30, 1)
        assert np.array_equal(
            flat[:, 0],
            l1_solve(A, Y[:, 0], method=L1Solver.OMP, sparsity=2),
        )


class TestRecoverBlocksMatchesRecoverLocation:
    @pytest.mark.parametrize("method", ["matched", "fista", "omp"])
    def test_parity_per_block(self, problem, round_data, method):
        rows, rss = round_data
        enumerator = CombinationEnumerator(
            EnumeratorConfig(max_aps=3, max_exhaustive_items=len(rows)),
            rng=0,
        )
        positions = [problem.grid.point_at(r) for r in rows]
        partitions = enumerator.candidate_partitions(positions, rss.tolist())
        blocks = unique_blocks(partitions)
        context = problem.round_context(rows)
        recoveries = context.recover_blocks(rss, blocks, method=method)
        assert set(recoveries) == set(blocks)
        for block in blocks:
            block_rows = np.asarray(block, dtype=int)
            solo = context.recover_location(
                rss[block_rows], block_rows, method=method
            )
            batched = recoveries[block]
            assert batched is not None
            assert batched.location.distance_to(solo.location) < 1e-9
            assert np.allclose(
                batched.coefficients, solo.coefficients, atol=1e-9
            )
