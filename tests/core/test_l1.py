"""Tests for the ℓ1-minimization solvers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.l1 import (
    L1Solver,
    l1_solve,
    solve_basis_pursuit,
    solve_bpdn_fista,
    solve_omp,
)


def random_sparse_system(rng, m=20, n=50, k=3, noise=0.0):
    """A Gaussian sensing matrix with a k-sparse ground truth."""
    A = rng.normal(size=(m, n)) / np.sqrt(m)
    support = rng.choice(n, size=k, replace=False)
    x = np.zeros(n)
    x[support] = rng.uniform(1.0, 3.0, size=k) * rng.choice([-1.0, 1.0], size=k)
    y = A @ x + noise * rng.normal(size=m)
    return A, x, y, support


class TestBasisPursuit:
    def test_exact_recovery_noiseless(self):
        rng = np.random.default_rng(0)
        A, x, y, _ = random_sparse_system(rng)
        x_hat = solve_basis_pursuit(A, y)
        assert np.allclose(x_hat, x, atol=1e-6)

    def test_nonnegative_variant(self):
        rng = np.random.default_rng(1)
        A = rng.normal(size=(20, 40)) / np.sqrt(20)
        x = np.zeros(40)
        x[[3, 17]] = [2.0, 1.5]
        y = A @ x
        x_hat = solve_basis_pursuit(A, y, nonnegative=True)
        assert np.all(x_hat >= 0)
        assert np.allclose(x_hat, x, atol=1e-6)

    def test_noise_tolerance_recovers_support(self):
        rng = np.random.default_rng(2)
        A, x, y, support = random_sparse_system(rng, noise=0.01)
        x_hat = solve_basis_pursuit(A, y, noise_tolerance=0.05)
        top = np.argsort(np.abs(x_hat))[-3:]
        assert set(top) == set(support)

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            solve_basis_pursuit(np.eye(2), np.ones(2), noise_tolerance=-1.0)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            solve_basis_pursuit(np.eye(3), np.ones(2))
        with pytest.raises(ValueError):
            solve_basis_pursuit(np.ones((2, 0)), np.ones(2))

    def test_identity_system(self):
        y = np.array([0.0, 3.0, 0.0])
        x_hat = solve_basis_pursuit(np.eye(3), y)
        assert np.allclose(x_hat, y, atol=1e-8)


class TestFista:
    def test_support_recovery(self):
        rng = np.random.default_rng(3)
        A, x, y, support = random_sparse_system(rng, m=30, n=60, k=3)
        x_hat = solve_bpdn_fista(A, y)
        top = np.argsort(np.abs(x_hat))[-3:]
        assert set(top) == set(support)

    def test_lambda_zero_converges_to_least_squares_fit(self):
        rng = np.random.default_rng(4)
        A = rng.normal(size=(30, 10))
        x = rng.normal(size=10)
        y = A @ x
        x_hat = solve_bpdn_fista(A, y, lam=0.0, max_iterations=3000)
        assert np.allclose(A @ x_hat, y, atol=1e-3)

    def test_huge_lambda_gives_zero(self):
        rng = np.random.default_rng(5)
        A, _, y, _ = random_sparse_system(rng)
        x_hat = solve_bpdn_fista(A, y, lam=1e9)
        assert np.allclose(x_hat, 0.0)

    def test_nonnegative_constraint(self):
        rng = np.random.default_rng(6)
        A, _, y, _ = random_sparse_system(rng)
        x_hat = solve_bpdn_fista(A, y, nonnegative=True)
        assert np.all(x_hat >= 0)

    def test_zero_signal(self):
        A = np.eye(4)
        assert np.allclose(solve_bpdn_fista(A, np.zeros(4)), 0.0)

    def test_negative_lambda_rejected(self):
        with pytest.raises(ValueError):
            solve_bpdn_fista(np.eye(2), np.ones(2), lam=-1.0)

    def test_bad_iterations_rejected(self):
        with pytest.raises(ValueError):
            solve_bpdn_fista(np.eye(2), np.ones(2), max_iterations=0)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_always_finite(self, seed):
        rng = np.random.default_rng(seed)
        A, _, y, _ = random_sparse_system(rng, m=10, n=20, k=2, noise=0.1)
        x_hat = solve_bpdn_fista(A, y, max_iterations=50)
        assert np.all(np.isfinite(x_hat))


class TestOmp:
    def test_exact_recovery(self):
        rng = np.random.default_rng(7)
        A, x, y, _ = random_sparse_system(rng)
        x_hat = solve_omp(A, y, sparsity=3)
        assert np.allclose(x_hat, x, atol=1e-8)

    def test_stops_early_on_zero_residual(self):
        rng = np.random.default_rng(8)
        A, x, y, support = random_sparse_system(rng, k=1)
        x_hat = solve_omp(A, y, sparsity=10)
        assert np.count_nonzero(x_hat) == 1

    def test_sparsity_validation(self):
        with pytest.raises(ValueError):
            solve_omp(np.eye(3), np.ones(3), sparsity=0)

    def test_sparsity_capped_at_dimensions(self):
        A = np.eye(3)
        x_hat = solve_omp(A, np.array([1.0, 2.0, 3.0]), sparsity=99)
        assert np.allclose(x_hat, [1, 2, 3])

    def test_nonnegative_clips(self):
        A = np.eye(2)
        y = np.array([-1.0, 2.0])
        x_hat = solve_omp(A, y, sparsity=2, nonnegative=True)
        assert np.all(x_hat >= 0)

    def test_zero_matrix(self):
        x_hat = solve_omp(np.zeros((3, 4)), np.ones(3), sparsity=2)
        assert np.allclose(x_hat, 0.0)


class TestDispatch:
    @pytest.mark.parametrize("method", ["basis_pursuit", "fista", "omp"])
    def test_all_methods_recover_1_sparse(self, method):
        rng = np.random.default_rng(9)
        A = rng.normal(size=(15, 30)) / np.sqrt(15)
        x = np.zeros(30)
        x[11] = 2.0
        y = A @ x
        x_hat = l1_solve(A, y, method=L1Solver(method), nonnegative=False)
        assert int(np.argmax(np.abs(x_hat))) == 11

    def test_enum_roundtrip(self):
        assert L1Solver("fista") is L1Solver.FISTA
        with pytest.raises(ValueError):
            L1Solver("nope")


class TestOmpGramHoisting:
    """Regression: the Gram matrix must be built once per solve/batch,
    never inside the greedy selection loop."""

    @pytest.fixture
    def gram_spy(self, monkeypatch):
        import repro.core.l1 as l1_module

        calls = []
        real = l1_module._gram

        def spy(A):
            calls.append(A.shape)
            return real(A)

        monkeypatch.setattr(l1_module, "_gram", spy)
        return calls

    def test_one_gram_per_solve(self, gram_spy):
        rng = np.random.default_rng(4)
        A, _, y, _ = random_sparse_system(rng, m=15, n=40, k=3)
        solve_omp(A, y, sparsity=4)
        # sparsity=4 means up to 4 selection iterations, but exactly one
        # Gram build.
        assert gram_spy == [(15, 40)]

    def test_one_gram_per_batch(self, gram_spy):
        from repro.core.l1 import solve_omp_batch

        rng = np.random.default_rng(5)
        A, _, _, _ = random_sparse_system(rng, m=15, n=40, k=3)
        Y = rng.normal(size=(15, 8))
        solve_omp_batch(A, Y, sparsity=3)
        # 8 right-hand sides share one Gram.
        assert gram_spy == [(15, 40)]

    def test_wide_systems_skip_gram(self, gram_spy):
        from repro.core.l1 import GRAM_MAX_COLUMNS

        rng = np.random.default_rng(6)
        n = GRAM_MAX_COLUMNS + 1
        A = rng.normal(size=(4, n))
        y = rng.normal(size=4)
        x_wide = solve_omp(A, y, sparsity=2)
        assert gram_spy == []
        assert x_wide.shape == (n,)

    def test_gramless_path_matches(self, monkeypatch):
        """The wide-system fallback computes the same greedy solution."""
        import repro.core.l1 as l1_module

        rng = np.random.default_rng(7)
        A, _, y, _ = random_sparse_system(rng, m=15, n=40, k=3)
        with_gram = solve_omp(A, y, sparsity=3)
        monkeypatch.setattr(l1_module, "GRAM_MAX_COLUMNS", 0)
        without_gram = solve_omp(A, y, sparsity=3)
        assert np.allclose(with_gram, without_gram, atol=1e-10)
