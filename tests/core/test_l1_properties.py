"""Property-based tests of solver invariants (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.cs_problem import orthogonalize
from repro.core.l1 import solve_basis_pursuit, solve_bpdn_fista, solve_omp

seeds = st.integers(min_value=0, max_value=10_000)


def sparse_system(seed, m=12, n=30, k=2, noise=0.0):
    rng = np.random.default_rng(seed)
    A = rng.normal(size=(m, n)) / np.sqrt(m)
    support = rng.choice(n, size=k, replace=False)
    x = np.zeros(n)
    x[support] = rng.uniform(1.0, 2.0, size=k)
    y = A @ x + noise * rng.normal(size=m)
    return A, x, y


class TestBasisPursuitProperties:
    @given(seeds)
    @settings(max_examples=20, deadline=None)
    def test_minimal_l1_among_feasible(self, seed):
        """BP's solution has ℓ1 norm ≤ the planted solution's (which is
        feasible), and satisfies the constraint."""
        A, x, y = sparse_system(seed)
        x_hat = solve_basis_pursuit(A, y)
        assert np.linalg.norm(A @ x_hat - y) < 1e-6
        assert np.abs(x_hat).sum() <= np.abs(x).sum() + 1e-6

    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_scaling_equivariance(self, seed):
        """BP(A, c·y) == c·BP(A, y) for c > 0 (the program is homogeneous)."""
        A, _, y = sparse_system(seed)
        base = solve_basis_pursuit(A, y)
        scaled = solve_basis_pursuit(A, 2.5 * y)
        assert np.allclose(scaled, 2.5 * base, atol=1e-5)


class TestFistaProperties:
    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_objective_no_worse_than_zero_vector(self, seed):
        """The FISTA output never has a worse lasso objective than θ = 0."""
        A, _, y = sparse_system(seed, noise=0.05)
        lam = 0.05 * float(np.abs(A.T @ y).max())
        x_hat = solve_bpdn_fista(A, y, lam=lam)

        def objective(theta):
            return 0.5 * np.linalg.norm(A @ theta - y) ** 2 + lam * np.abs(
                theta
            ).sum()

        assert objective(x_hat) <= objective(np.zeros_like(x_hat)) + 1e-9

    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_nonnegative_flag_respected(self, seed):
        A, _, y = sparse_system(seed, noise=0.1)
        x_hat = solve_bpdn_fista(A, y, nonnegative=True)
        assert np.all(x_hat >= 0)


class TestOmpProperties:
    @given(seeds, st.integers(min_value=1, max_value=6))
    @settings(max_examples=20, deadline=None)
    def test_residual_nonincreasing_in_budget(self, seed, budget):
        """Allowing a larger sparsity budget never increases the residual."""
        A, _, y = sparse_system(seed, k=3, noise=0.05)
        small = solve_omp(A, y, sparsity=budget)
        large = solve_omp(A, y, sparsity=budget + 2)
        res_small = np.linalg.norm(A @ small - y)
        res_large = np.linalg.norm(A @ large - y)
        assert res_large <= res_small + 1e-8

    @given(seeds)
    @settings(max_examples=20, deadline=None)
    def test_support_size_bounded(self, seed):
        A, _, y = sparse_system(seed, k=2)
        x_hat = solve_omp(A, y, sparsity=4)
        assert np.count_nonzero(x_hat) <= 4


class TestOrthogonalizeProperties:
    @given(seeds)
    @settings(max_examples=20, deadline=None)
    def test_rows_orthonormal_for_random_systems(self, seed):
        rng = np.random.default_rng(seed)
        m = int(rng.integers(2, 8))
        n = int(rng.integers(m, 25))
        A = rng.normal(size=(m, n))
        Q, y_prime = orthogonalize(A, rng.normal(size=m))
        assert Q.shape[1] == n
        assert np.allclose(Q @ Q.T, np.eye(Q.shape[0]), atol=1e-8)
        assert np.all(np.isfinite(y_prime))

    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_exact_signal_survives_transform(self, seed):
        """For y = A x with x in A's row space, Q x equals y'."""
        rng = np.random.default_rng(seed)
        A = rng.normal(size=(5, 15))
        x = A.T @ rng.normal(size=5)
        Q, y_prime = orthogonalize(A, A @ x)
        assert np.allclose(Q @ x, y_prime, atol=1e-7)
