"""Tests for the offline (batch) CS estimator."""

import pytest

from repro.core.engine import EngineConfig, OnlineCsEngine
from repro.core.offline import OfflineConfig, OfflineCsEstimator
from repro.core.window import WindowConfig
from repro.geo.points import Point
from repro.geo.trajectory import Trajectory
from repro.metrics.errors import mean_distance_error
from repro.mobility.models import PathFollower
from repro.radio.pathloss import PathLossModel
from repro.sim.collector import CollectorConfig, RssCollector
from repro.sim.world import AccessPoint, World

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def channel():
    return PathLossModel(shadowing_sigma_db=0.5)


@pytest.fixture(scope="module")
def world(channel):
    return World(
        access_points=[
            AccessPoint(ap_id="a", position=Point(30, 30), radio_range_m=60.0),
            AccessPoint(ap_id="b", position=Point(150, 30), radio_range_m=60.0),
            AccessPoint(ap_id="c", position=Point(90, 120), radio_range_m=60.0),
        ],
        channel=channel,
    )


@pytest.fixture(scope="module")
def trace(world):
    collector = RssCollector(
        world,
        CollectorConfig(sample_period_s=1.0, communication_radius_m=60.0),
        rng=11,
    )
    follower = PathFollower(Trajectory.rectangle(10, 10, 170, 140), 5.0)
    return collector.collect_along(follower, n_samples=120)


class TestOfflineConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"lattice_length_m": 0.0},
            {"communication_radius_m": 0.0},
            {"max_aps": 0},
            {"readings_budget": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            OfflineConfig(**kwargs)


class TestOfflineEstimator:
    def test_finds_aps(self, channel, world, trace):
        estimator = OfflineCsEstimator(
            channel,
            OfflineConfig(
                communication_radius_m=60.0, max_aps=5, readings_budget=12
            ),
            rng=3,
        )
        estimates = estimator.estimate(trace)
        assert 2 <= len(estimates) <= 5
        error = mean_distance_error(
            world.ap_positions(), estimates, max_match_distance_m=30.0
        )
        assert error < 15.0

    def test_empty_trace(self, channel):
        estimator = OfflineCsEstimator(channel, rng=0)
        assert estimator.estimate([]) == []

    def test_deterministic(self, channel, trace):
        config = OfflineConfig(communication_radius_m=60.0, readings_budget=10)
        a = OfflineCsEstimator(channel, config, rng=5).estimate(trace)
        b = OfflineCsEstimator(channel, config, rng=5).estimate(trace)
        assert a == b

    def test_both_modes_accurate_on_small_world(self, channel, world, trace):
        """On a small well-separated deployment both the batch and the
        sliding-window estimators succeed; the online scheme's advantage
        (locality, bounded per-round cost, anytime output) shows at scale
        and is quantified by the online-vs-offline ablation, not here."""
        offline = OfflineCsEstimator(
            channel,
            OfflineConfig(
                communication_radius_m=60.0, max_aps=5, readings_budget=12
            ),
            rng=3,
        ).estimate(trace)
        online = OnlineCsEngine(
            channel,
            EngineConfig(
                window=WindowConfig(size=36, step=12),
                readings_per_round=6,
                max_aps_per_round=4,
                communication_radius_m=60.0,
            ),
            rng=13,
        ).process_trace(trace)
        truth = world.ap_positions()
        for estimates in (online.locations, offline):
            assert 2 <= len(estimates) <= 4
            assert mean_distance_error(
                truth, estimates, max_match_distance_m=30.0
            ) < 10.0

    def test_no_refine_mode(self, channel, trace):
        estimator = OfflineCsEstimator(
            channel,
            OfflineConfig(
                communication_radius_m=60.0, readings_budget=10, refine=False
            ),
            rng=7,
        )
        estimates = estimator.estimate(trace)
        assert len(estimates) >= 1
