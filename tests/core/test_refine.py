"""Tests for continuous location refinement."""

import numpy as np
import pytest

from repro.core.refine import refine_hypothesis, refine_location
from repro.geo.points import Point
from repro.radio.pathloss import PathLossModel


@pytest.fixture
def channel():
    return PathLossModel(shadowing_sigma_db=0.0)


def synth(channel, ap, points, noise=0.0, rng=None):
    rss = np.array(
        [float(channel.mean_rss_dbm(ap.distance_to(p))) for p in points]
    )
    if noise and rng is not None:
        rss = rss + rng.normal(0, noise, size=rss.shape)
    return rss.tolist()


class TestRefineLocation:
    def test_noiseless_converges_to_truth(self, channel):
        ap = Point(47.3, 52.8)
        points = [Point(30, 40), Point(60, 60), Point(50, 30), Point(40, 70)]
        rss = synth(channel, ap, points)
        refined = refine_location(channel, points, rss, Point(44.0, 50.0))
        assert refined.distance_to(ap) < 0.5

    def test_noisy_still_close(self, channel):
        rng = np.random.default_rng(0)
        ap = Point(50, 50)
        points = [
            Point(30 + 5 * i, 40 + 3 * ((i * 7) % 5)) for i in range(10)
        ]
        rss = synth(channel, ap, points, noise=0.5, rng=rng)
        refined = refine_location(channel, points, rss, Point(46, 53))
        assert refined.distance_to(ap) < 3.0

    def test_max_shift_rejects_wandering(self, channel):
        ap = Point(50, 50)
        points = [Point(30, 40), Point(60, 60), Point(50, 30)]
        rss = synth(channel, ap, points)
        start = Point(10.0, 10.0)  # far from truth
        refined = refine_location(
            channel, points, rss, start, max_shift_m=5.0
        )
        assert refined == start

    def test_empty_readings_returns_initial(self, channel):
        start = Point(1, 2)
        assert refine_location(channel, [], [], start) == start

    def test_length_mismatch(self, channel):
        with pytest.raises(ValueError):
            refine_location(channel, [Point(0, 0)], [-60.0, -61.0], Point(0, 0))

    def test_single_reading_stays_near_start(self, channel):
        # One reading defines a ring of solutions; the optimiser moves to
        # the nearest ring point, which must stay within the implied range.
        start = Point(10, 0)
        refined = refine_location(
            channel, [Point(0, 0)], [-60.0], start, max_shift_m=100.0
        )
        implied = float(channel.distance_for_rss(-60.0))
        assert abs(refined.distance_to(Point(0, 0)) - implied) < 1.0


class TestRefineHypothesis:
    def test_refines_each_block(self, channel):
        ap1, ap2 = Point(20, 20), Point(80, 80)
        pts1 = [Point(10, 15), Point(30, 25), Point(20, 35)]
        pts2 = [Point(70, 75), Point(90, 85), Point(80, 95)]
        refined = refine_hypothesis(
            channel,
            [pts1, pts2],
            [synth(channel, ap1, pts1), synth(channel, ap2, pts2)],
            [Point(22, 18), Point(78, 83)],
        )
        assert refined[0].distance_to(ap1) < 1.0
        assert refined[1].distance_to(ap2) < 1.0

    def test_length_mismatch(self, channel):
        with pytest.raises(ValueError):
            refine_hypothesis(channel, [[]], [[], []], [Point(0, 0)])

    def test_empty_hypothesis(self, channel):
        assert refine_hypothesis(channel, [], [], []) == []
