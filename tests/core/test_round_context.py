"""Tests for the per-round recovery context (cached-matrix fast path)."""

import numpy as np
import pytest

from repro.core.cs_problem import CsProblem
from repro.geo.grid import Grid
from repro.geo.points import BoundingBox, Point
from repro.radio.pathloss import PathLossModel


@pytest.fixture
def channel():
    return PathLossModel(shadowing_sigma_db=0.0)


@pytest.fixture
def problem(channel):
    grid = Grid(box=BoundingBox(0, 0, 100, 100), lattice_length=10.0)
    return CsProblem(grid, channel, communication_radius_m=60.0)


@pytest.fixture
def round_data(problem, channel):
    grid = problem.grid
    ap = grid.point_at(grid.rowcol_to_index(5, 5))
    rps = [Point(35, 45), Point(45, 65), Point(65, 55), Point(55, 35),
           Point(25, 55)]
    rows = problem.measurement_rows(rps)
    y = np.array([
        float(channel.mean_rss_dbm(ap.distance_to(grid.point_at(r))))
        for r in rows
    ])
    return ap, rows, y


class TestRoundContext:
    def test_matches_legacy_recovery(self, problem, round_data):
        """The cached-context path must agree with the one-shot API."""
        ap, rows, y = round_data
        context = problem.round_context(rows)
        for method in ("matched", "fista", "omp"):
            block = np.arange(len(rows))
            via_context = context.recover_location(
                y, block, method=method
            )
            via_legacy = problem.recover_location(y, rows, method=method)
            assert via_context.location.distance_to(
                via_legacy.location
            ) < 1e-9
            assert np.allclose(
                via_context.coefficients, via_legacy.coefficients, atol=1e-9
            )

    def test_sub_block_recovery(self, problem, round_data):
        """Recovering from a subset of the round's rows works and uses
        only those rows' readings."""
        ap, rows, y = round_data
        context = problem.round_context(rows)
        block = np.array([0, 2, 4])
        result = context.recover_location(y[block], block, method="matched")
        assert result.location.distance_to(ap) <= problem.grid.diameter

    def test_candidate_columns_match_problem(self, problem, round_data):
        _, rows, _ = round_data
        context = problem.round_context(rows)
        all_rows = np.arange(len(rows))
        assert np.array_equal(
            context.candidate_columns(all_rows),
            problem.candidate_columns(rows),
        )

    def test_reachability_disabled_without_radius(self, channel):
        grid = Grid(box=BoundingBox(0, 0, 50, 50), lattice_length=10.0)
        problem = CsProblem(grid, channel)
        context = problem.round_context(np.array([0, 5]))
        assert context.reachable is None
        assert len(context.candidate_columns(np.array([0]))) == grid.n_points

    def test_empty_rp_indices_rejected(self, problem):
        with pytest.raises(ValueError):
            problem.round_context(np.array([], dtype=int))

    def test_sensing_matrix_cached_shape(self, problem, round_data):
        _, rows, _ = round_data
        context = problem.round_context(rows)
        assert context.sensing.shape == (len(rows), problem.n_grid_points)
        assert context.distances.shape == context.sensing.shape
