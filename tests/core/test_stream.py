"""Streaming engine tests: push-at-a-time == batch, bit for bit.

The batch engine is a thin wrapper over the streaming consumer, so the
equivalence tests here are the contract that lets it be one: same
rounds, same RNG draw order, same estimates, diagnostics and BIC scores
on a fixed seed — across solvers, grid modes, TTL handling and the
cross-round caches.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.engine import EngineConfig, OnlineCsEngine
from repro.core.stream import StreamingCsEngine
from repro.core.window import SlidingWindow, WindowConfig
from repro.geo.grid import Grid
from repro.geo.points import BoundingBox, Point
from repro.geo.trajectory import Trajectory
from repro.mobility.models import PathFollower
from repro.obs.recorder import InMemoryRecorder
from repro.radio.pathloss import PathLossModel
from repro.radio.rss import RssMeasurement
from repro.sim.collector import CollectorConfig, RssCollector
from repro.sim.world import AccessPoint, World


@pytest.fixture(scope="module")
def channel():
    return PathLossModel(shadowing_sigma_db=0.5)


@pytest.fixture(scope="module")
def three_ap_world(channel):
    return World(
        access_points=[
            AccessPoint(ap_id="a", position=Point(30, 30), radio_range_m=60.0),
            AccessPoint(ap_id="b", position=Point(150, 30), radio_range_m=60.0),
            AccessPoint(ap_id="c", position=Point(90, 120), radio_range_m=60.0),
        ],
        channel=channel,
    )


@pytest.fixture(scope="module")
def loop_trace(three_ap_world):
    collector = RssCollector(
        three_ap_world,
        CollectorConfig(sample_period_s=1.0, communication_radius_m=60.0),
        rng=11,
    )
    follower = PathFollower(
        Trajectory.rectangle(10, 10, 170, 140), speed_mps=5.0
    )
    return list(
        collector.collect_along(follower, n_samples=80)
    )


def _config(**overrides):
    base = dict(
        window=WindowConfig(size=30, step=10),
        readings_per_round=5,
        max_aps_per_round=3,
        communication_radius_m=60.0,
        lattice_length_m=8.0,
        snr_db=30.0,
    )
    base.update(overrides)
    return EngineConfig(**base)


def _stream_result(channel, config, trace, *, grid=None, rng=13, recorder=None):
    engine = StreamingCsEngine(
        channel, config, grid=grid, rng=rng, recorder=recorder
    )
    for measurement in trace:
        engine.push(measurement)
    return engine.finalize()


def _batch_result(channel, config, trace, *, grid=None, rng=13, recorder=None):
    engine = OnlineCsEngine(
        channel, config, grid=grid, rng=rng, recorder=recorder
    )
    return engine.process_trace(trace)


def assert_identical(a, b):
    """Bit-identical results: estimates, diagnostics and BIC scores."""
    assert a.estimates == b.estimates
    assert len(a.rounds) == len(b.rounds)
    for ra, rb in zip(a.rounds, b.rounds):
        assert dataclasses.asdict(ra) == dataclasses.asdict(rb)
        assert ra.bic_score == rb.bic_score  # exact, not approx


class TestStreamingMatchesBatch:
    @pytest.mark.parametrize("solver", ["matched", "fista", "omp"])
    def test_bit_identical_per_solver(self, channel, loop_trace, solver):
        config = _config(solver=solver)
        assert_identical(
            _stream_result(channel, config, loop_trace),
            _batch_result(channel, config, loop_trace),
        )

    def test_bit_identical_fixed_grid(self, channel, loop_trace):
        grid = Grid(box=BoundingBox(-50, -50, 230, 200), lattice_length=8.0)
        config = _config()
        assert_identical(
            _stream_result(channel, config, loop_trace, grid=grid),
            _batch_result(channel, config, loop_trace, grid=grid),
        )

    def test_bit_identical_with_ttl(self, channel, loop_trace):
        # Re-stamp the trace so a mid-trace batch of readings expires.
        trace = [
            dataclasses.replace(m, timestamp=float(i), ttl=18.0)
            for i, m in enumerate(loop_trace)
        ]
        config = _config(respect_ttl=True)
        result = _stream_result(channel, config, trace)
        assert_identical(
            result, _batch_result(channel, config, trace)
        )
        # TTL actually bit: some round saw fewer readings than its window.
        assert any(r.n_readings < 30 for r in result.rounds)

    def test_cache_off_is_bit_identical(self, channel, loop_trace):
        # Everything the cross-round cache stores is a pure function of
        # its key, so disabling it must not move a single bit.  (FISTA
        # warm start is the one documented exception — it is disabled
        # here and covered by its own tolerance test below.)
        for solver in ("matched", "fista"):
            on = _config(solver=solver, solver_warm_start=False)
            off = _config(
                solver=solver,
                solver_warm_start=False,
                cross_round_cache=False,
            )
            assert_identical(
                _stream_result(channel, on, loop_trace),
                _stream_result(channel, off, loop_trace),
            )

    def test_short_trace_single_partial_round(self, channel, loop_trace):
        trace = loop_trace[:12]  # shorter than one window
        config = _config()
        a = _stream_result(channel, config, trace)
        b = _batch_result(channel, config, trace)
        assert_identical(a, b)
        assert len(a.rounds) <= 1


class TestTtlWindowView:
    """The incremental expiry heap against the specification filter."""

    class _WindowSpy(StreamingCsEngine):
        def __init__(self, *args, **kwargs):
            super().__init__(*args, **kwargs)
            self.windows = []

        def _process_round(self, round_index, window):
            self.windows.append(list(window))
            return None

    @staticmethod
    def _reading(t, ttl):
        return RssMeasurement(
            rss_dbm=-60.0, position=Point(t, 0.0), timestamp=t, ttl=ttl
        )

    def _spec_windows(self, config, trace):
        """The batch rule: per round, drop readings expired at the
        window's newest timestamp."""
        out = []
        for start, end in SlidingWindow(config.window).rounds(len(trace)):
            window = trace[start:end]
            now = window[-1].timestamp
            out.append([m for m in window if not m.expired(now)])
        return out

    def _spy_windows(self, channel, config, trace):
        spy = self._WindowSpy(channel, config, rng=0)
        for m in trace:
            spy.push(m)
        spy.finalize()
        return spy.windows

    @pytest.mark.parametrize("ttl", [2.5, 7.0, 1000.0])
    def test_monotone_expiry_matches_spec(self, channel, ttl):
        config = _config(
            window=WindowConfig(size=8, step=3), respect_ttl=True
        )
        trace = [self._reading(float(t), ttl) for t in range(23)]
        assert self._spy_windows(channel, config, trace) == (
            self._spec_windows(config, trace)
        )

    def test_regressing_timestamps_fall_back_to_exact_scan(self, channel):
        config = _config(
            window=WindowConfig(size=8, step=3), respect_ttl=True
        )
        times = [0.0, 1.0, 2.0, 9.0, 3.0, 4.0, 12.0, 5.0, 13.0, 14.0, 6.0,
                 15.0, 16.0, 17.0, 18.0]
        trace = [self._reading(t, 4.0) for t in times]
        assert self._spy_windows(channel, config, trace) == (
            self._spec_windows(config, trace)
        )

    def test_heap_compaction_keeps_the_filter_exact(self, channel):
        config = _config(
            window=WindowConfig(size=4, step=1), respect_ttl=True
        )
        trace = [self._reading(float(t), 2.0) for t in range(60)]
        assert self._spy_windows(channel, config, trace) == (
            self._spec_windows(config, trace)
        )


class TestStreamingApi:
    def test_push_after_finalize_raises(self, channel, loop_trace):
        engine = StreamingCsEngine(channel, _config(), rng=1)
        engine.push(loop_trace[0])
        engine.finalize()
        with pytest.raises(RuntimeError, match="finalized"):
            engine.push(loop_trace[1])

    def test_finalize_is_idempotent(self, channel, loop_trace):
        engine = StreamingCsEngine(channel, _config(), rng=13)
        for m in loop_trace:
            engine.push(m)
        first = engine.finalize()
        second = engine.finalize()
        assert_identical(first, second)

    def test_empty_stream(self, channel):
        engine = StreamingCsEngine(channel, _config(), rng=0)
        result = engine.finalize()
        assert result.estimates == []
        assert result.rounds == []

    def test_extend_collects_round_diagnostics(self, channel, loop_trace):
        engine = StreamingCsEngine(channel, _config(), rng=13)
        emitted = engine.extend(loop_trace)
        result = engine.finalize()
        assert engine.rounds_emitted == len(
            SlidingWindow(engine.config.window).rounds(len(loop_trace))
        )
        # extend() saw every round except the tail owed to finalize().
        assert [r.round_index for r in emitted] == [
            r.round_index for r in result.rounds[: len(emitted)]
        ]

    def test_reset_reuses_the_engine(self, channel, loop_trace):
        # snr_db=None and an exhaustive-only combination search keep the
        # RNG untouched, so a reset engine must match a fresh one bit
        # for bit on its second trace.
        config = _config(snr_db=None)
        first, second = loop_trace[:40], loop_trace[40:]
        engine = StreamingCsEngine(channel, config, rng=7)
        engine.extend(first)
        engine.finalize()
        engine.reset()
        for m in second:
            engine.push(m)
        reused = engine.finalize()
        fresh = _stream_result(channel, config, second, rng=7)
        assert_identical(reused, fresh)


class TestFloat32OptIn:
    def test_rejected_outside_fista(self):
        with pytest.raises(ValueError, match="float32"):
            EngineConfig(solver="matched", solver_dtype="float32")
        with pytest.raises(ValueError, match="solver_dtype"):
            EngineConfig(solver="fista", solver_dtype="float16")

    def test_float32_stays_within_documented_tolerance(
        self, channel, loop_trace
    ):
        exact = _stream_result(
            channel, _config(solver="fista"), loop_trace
        )
        fast = _stream_result(
            channel,
            _config(solver="fista", solver_dtype="float32"),
            loop_trace,
        )
        # Documented contract (docs/ARCHITECTURE.md §2): float32 solves
        # deviate by ~1e-4 in coefficients; after centroiding and
        # refinement the estimated AP set is the same size and each AP
        # sits within a small fraction of a lattice length.
        assert fast.n_aps == exact.n_aps
        for a, b in zip(exact.locations, fast.locations):
            assert a.distance_to(b) < 2.0


class TestStreamTelemetry:
    # Cross-round reuse needs rounds that share a recovery grid (the
    # online formation builds a fresh grid per round, so these tests run
    # the fixed-grid mode) AND a step that lands the same readings in
    # consecutive subsamples: with size 30 / budget 5 the subsample
    # offsets are {0, 7, 15, 22, 29}, so step 7 re-picks three of each
    # round's readings in the next round.
    GRID = Grid(box=BoundingBox(-50, -50, 230, 200), lattice_length=8.0)
    WINDOW = WindowConfig(size=30, step=7)

    def test_stream_counters_inventory(self, channel, loop_trace):
        recorder = InMemoryRecorder()
        result = _stream_result(
            channel,
            _config(solver="fista", window=self.WINDOW),
            loop_trace,
            grid=self.GRID,
            recorder=recorder,
        )
        counters = recorder.counters
        assert counters["stream.readings.pushed"] == len(loop_trace)
        assert counters["stream.rounds.emitted"] == len(result.rounds)
        # Overlapping windows on a drive revisit grid cells, so the
        # cross-round cache must both miss (first sight) and hit (reuse).
        assert counters["stream.context.misses"] > 0
        assert counters["stream.context.hits"] > 0
        assert counters["stream.warm.hits"] > 0
        assert "stream.finalize" in recorder.spans

    def test_warm_start_reports_fewer_fista_iterations(
        self, channel, loop_trace
    ):
        warm_rec, cold_rec = InMemoryRecorder(), InMemoryRecorder()
        _stream_result(
            channel,
            _config(solver="fista", window=self.WINDOW),
            loop_trace,
            grid=self.GRID,
            recorder=warm_rec,
        )
        _stream_result(
            channel,
            _config(
                solver="fista",
                window=self.WINDOW,
                solver_warm_start=False,
            ),
            loop_trace,
            grid=self.GRID,
            recorder=cold_rec,
        )
        warm = warm_rec.histograms["l1.fista.iterations"]
        cold = cold_rec.histograms["l1.fista.iterations"]
        # Same seed, same rounds — warm start must shed total sweeps.
        assert warm["total"] < cold["total"]
        assert warm_rec.counters["stream.warm.iterations_saved"] > 0

    def test_batch_wrapper_emits_identical_round_telemetry(
        self, channel, loop_trace
    ):
        stream_rec, batch_rec = InMemoryRecorder(), InMemoryRecorder()
        _stream_result(channel, _config(), loop_trace, recorder=stream_rec)
        _batch_result(channel, _config(), loop_trace, recorder=batch_rec)
        for name in (
            "engine.rounds",
            "engine.readings",
            "engine.partitions",
            "engine.hypotheses",
        ):
            assert stream_rec.counters[name] == batch_rec.counters[name]
