"""Tests for sliding-window scheduling (§4.3.2)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.window import SlidingWindow, WindowConfig


class TestWindowConfig:
    def test_paper_defaults(self):
        config = WindowConfig()
        assert config.size == 60
        assert config.step == 10

    @pytest.mark.parametrize(
        "kwargs",
        [{"size": 0}, {"step": 0}, {"size": 5, "step": 6}],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            WindowConfig(**kwargs)


class TestRounds:
    def test_paper_case_180_readings(self):
        window = SlidingWindow(WindowConfig(size=60, step=10))
        rounds = window.rounds(180)
        assert rounds[0] == (0, 60)
        assert rounds[1] == (10, 70)
        assert rounds[-1] == (120, 180)
        assert len(rounds) == 13

    def test_short_sequence_single_round(self):
        window = SlidingWindow(WindowConfig(size=60, step=10))
        assert window.rounds(30) == [(0, 30)]
        assert window.rounds(60) == [(0, 60)]

    def test_empty_sequence(self):
        window = SlidingWindow()
        assert window.rounds(0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            SlidingWindow().rounds(-1)

    def test_tail_always_covered(self):
        window = SlidingWindow(WindowConfig(size=10, step=4))
        rounds = window.rounds(25)
        assert rounds[-1] == (15, 25)

    def test_no_tail_duplicate_when_aligned(self):
        window = SlidingWindow(WindowConfig(size=10, step=5))
        rounds = window.rounds(20)
        assert rounds == [(0, 10), (5, 15), (10, 20)]

    @given(
        st.integers(min_value=0, max_value=500),
        st.integers(min_value=1, max_value=50),
        st.integers(min_value=1, max_value=50),
    )
    def test_invariants(self, n, size, step):
        if step > size:
            step = size
        window = SlidingWindow(WindowConfig(size=size, step=step))
        rounds = window.rounds(n)
        if n == 0:
            assert rounds == []
            return
        # Every reading is covered by at least one round.
        covered = set()
        for start, end in rounds:
            assert 0 <= start < end <= n
            assert end - start <= size
            covered.update(range(start, end))
        assert covered == set(range(n))
        # Rounds are sorted and distinct.
        assert rounds == sorted(set(rounds))
        # The first reading is in the first round, the last in the last.
        assert rounds[0][0] == 0
        assert rounds[-1][1] == n


class TestSlices:
    def test_slices_match_rounds(self):
        window = SlidingWindow(WindowConfig(size=4, step=2))
        sequence = list(range(10))
        slices = list(window.slices(sequence))
        assert slices[0] == [0, 1, 2, 3]
        assert slices[1] == [2, 3, 4, 5]
        assert slices[-1] == [6, 7, 8, 9]

    def test_round_count(self):
        window = SlidingWindow(WindowConfig(size=4, step=2))
        assert window.round_count(10) == len(list(window.slices(list(range(10)))))
