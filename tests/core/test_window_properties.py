"""Property tests: the incremental WindowCursor equals batch rounds().

The streaming engine's correctness rests on one invariant — pushing n
readings through a :class:`~repro.core.window.WindowCursor` and then
calling :meth:`finish` emits exactly the ``(start, end)`` rounds of
:meth:`~repro.core.window.SlidingWindow.rounds`, in order, for every
``(size, step, n)``.  Hypothesis sweeps the space, including the
anchored-tail and shorter-than-one-window corners.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.window import SlidingWindow, WindowConfig, WindowCursor

configs = st.integers(min_value=1, max_value=40).flatmap(
    lambda size: st.integers(min_value=1, max_value=size).map(
        lambda step: WindowConfig(size=size, step=step)
    )
)


def incremental_rounds(config, n):
    cursor = WindowCursor(config)
    out = []
    for _ in range(n):
        emitted = cursor.push()
        if emitted is not None:
            out.append(emitted)
    tail = cursor.finish()
    if tail is not None:
        out.append(tail)
    return out


@settings(max_examples=300)
@given(config=configs, n=st.integers(min_value=0, max_value=200))
def test_cursor_equals_batch_rounds(config, n):
    assert incremental_rounds(config, n) == SlidingWindow(config).rounds(n)


@settings(max_examples=200)
@given(config=configs, n=st.integers(min_value=0, max_value=200))
def test_every_round_fits_in_a_size_bounded_ring_buffer(config, n):
    """Each round emitted at reading ``end`` covers a suffix of the
    readings seen so far no longer than ``size`` — the streaming
    engine's ``deque(maxlen=size)`` invariant."""
    cursor = WindowCursor(config)
    for i in range(1, n + 1):
        emitted = cursor.push()
        if emitted is None:
            continue
        start, end = emitted
        assert end == i  # completes exactly at the reading that lands
        assert 0 < end - start <= config.size
    tail = cursor.finish()
    if tail is not None:
        start, end = tail
        assert end == n
        assert 0 < end - start <= config.size


@settings(max_examples=100)
@given(config=configs, n=st.integers(min_value=1, max_value=200))
def test_short_trace_emits_single_partial_round(config, n):
    if n <= config.size:
        assert incremental_rounds(config, n) == [(0, n)]


@settings(max_examples=100)
@given(config=configs, n=st.integers(min_value=0, max_value=200))
def test_no_reading_is_dropped_and_tail_is_anchored(config, n):
    rounds = incremental_rounds(config, n)
    if n == 0:
        assert rounds == []
        return
    assert rounds[0][0] == 0
    assert rounds[-1][1] == n  # the last reading is always covered
    covered = set()
    for start, end in rounds:
        covered.update(range(start, end))
    assert covered == set(range(n))


def test_finish_is_none_after_exact_regular_tail():
    # 12 readings, size 6, step 3: the reading at index 11 completes the
    # regular round (6, 12), so finish() owes nothing.
    cursor = WindowCursor(WindowConfig(size=6, step=3))
    emitted = [cursor.push() for _ in range(12)]
    assert [e for e in emitted if e] == [(0, 6), (3, 9), (6, 12)]
    assert cursor.finish() is None


def test_cursor_factory_on_sliding_window():
    window = SlidingWindow(WindowConfig(size=4, step=2))
    cursor = window.cursor()
    assert isinstance(cursor, WindowCursor)
    assert cursor.config == window.config
