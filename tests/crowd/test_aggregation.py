"""Tests for the baseline aggregators (MV, rank-order, oracle)."""

import numpy as np
import pytest

from repro.crowd.aggregation import majority_vote, oracle_vote, rank_order_vote
from repro.crowd.assignment import BipartiteAssignment, regular_assignment
from repro.crowd.inference import kos_inference
from repro.crowd.labels import generate_labels
from repro.crowd.workers import SpammerHammerPrior
from repro.metrics.errors import bitwise_error_rate


def instance(n_tasks, l, g, seed):
    rng = np.random.default_rng(seed)
    assignment = regular_assignment(n_tasks, l, g, rng=rng)
    q = SpammerHammerPrior(hammer_fraction=0.5).sample(
        assignment.n_workers, rng=rng
    )
    z = np.where(rng.random(n_tasks) < 0.5, 1, -1)
    labels = generate_labels(z, assignment, q, rng=rng)
    return assignment, q, z, labels


class TestMajorityVote:
    def test_simple_majority(self):
        a = BipartiteAssignment(
            n_tasks=1, n_workers=3, edges=[(0, 0), (0, 1), (0, 2)]
        )
        labels = np.array([[1, 1, -1]])
        assert majority_vote(labels, a)[0] == 1

    def test_tie_breaks_positive(self):
        a = BipartiteAssignment(n_tasks=1, n_workers=2, edges=[(0, 0), (0, 1)])
        labels = np.array([[1, -1]])
        assert majority_vote(labels, a)[0] == 1

    def test_shape_validation(self):
        a = regular_assignment(4, 1, 2, rng=0)
        with pytest.raises(ValueError):
            majority_vote(np.zeros((2, 2)), a)


class TestOracleVote:
    def test_down_weights_known_spammers(self):
        # One hammer against three spammers: the oracle trusts the hammer.
        a = BipartiteAssignment(
            n_tasks=1,
            n_workers=4,
            edges=[(0, 0), (0, 1), (0, 2), (0, 3)],
        )
        labels = np.array([[1, -1, -1, -1]])
        q = [0.99, 0.5, 0.5, 0.5]
        assert oracle_vote(labels, a, q)[0] == 1
        assert majority_vote(labels, a)[0] == -1

    def test_is_lower_bound_on_error(self):
        oracle_errors, kos_errors = [], []
        for seed in range(6):
            assignment, q, z, labels = instance(400, 5, 5, seed)
            oracle_errors.append(
                bitwise_error_rate(z, oracle_vote(labels, assignment, q))
            )
            kos_errors.append(
                bitwise_error_rate(
                    z, kos_inference(labels, assignment).estimates
                )
            )
        assert np.mean(oracle_errors) <= np.mean(kos_errors) + 1e-9

    def test_reliability_shape_validation(self):
        a = regular_assignment(4, 1, 2, rng=0)
        labels = generate_labels(
            np.ones(4, dtype=int), a, np.ones(a.n_workers), rng=0
        )
        with pytest.raises(ValueError):
            oracle_vote(labels, a, [0.9])

    def test_extreme_reliabilities_clipped(self):
        a = BipartiteAssignment(n_tasks=1, n_workers=1, edges=[(0, 0)])
        labels = np.array([[1]])
        out = oracle_vote(labels, a, [1.0])  # would be log(inf) unclipped
        assert out[0] == 1


class TestRankOrderVote:
    def test_reduces_spammer_influence(self):
        errors_rank, errors_mv = [], []
        for seed in range(8):
            assignment, q, z, labels = instance(400, 15, 5, seed)
            errors_rank.append(
                bitwise_error_rate(z, rank_order_vote(labels, assignment))
            )
            errors_mv.append(
                bitwise_error_rate(z, majority_vote(labels, assignment))
            )
        assert np.mean(errors_rank) < np.mean(errors_mv)

    def test_output_is_pm1(self):
        assignment, _, _, labels = instance(100, 5, 5, seed=9)
        out = rank_order_vote(labels, assignment)
        assert set(np.unique(out)) <= {-1, 1}

    def test_single_worker_fallback(self):
        a = BipartiteAssignment(n_tasks=2, n_workers=1, edges=[(0, 0), (1, 0)])
        labels = np.array([[1], [-1]])
        out = rank_order_vote(a and labels, a)
        assert list(out) == [1, -1]


class TestFig7Ordering:
    def test_algorithm_ordering_matches_paper(self):
        """Fig. 7: oracle ≤ KOS ≤ rank-order < MV on spammer-hammer."""
        sums = {"oracle": 0.0, "kos": 0.0, "rank": 0.0, "mv": 0.0}
        n_trials = 8
        for seed in range(n_trials):
            assignment, q, z, labels = instance(500, 15, 5, seed=200 + seed)
            sums["oracle"] += bitwise_error_rate(
                z, oracle_vote(labels, assignment, q)
            )
            sums["kos"] += bitwise_error_rate(
                z, kos_inference(labels, assignment).estimates
            )
            sums["rank"] += bitwise_error_rate(
                z, rank_order_vote(labels, assignment)
            )
            sums["mv"] += bitwise_error_rate(
                z, majority_vote(labels, assignment)
            )
        assert sums["oracle"] <= sums["kos"] + 1e-9
        assert sums["kos"] <= sums["rank"] + 0.01 * n_trials
        assert sums["rank"] < sums["mv"]
