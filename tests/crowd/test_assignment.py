"""Tests for (ℓ,γ)-regular bipartite task assignment (§5.2)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.crowd.assignment import BipartiteAssignment, regular_assignment


class TestBipartiteAssignment:
    def test_adjacency_views(self):
        a = BipartiteAssignment(
            n_tasks=2, n_workers=2, edges=[(0, 0), (0, 1), (1, 1)]
        )
        assert a.workers_of_task[0] == [0, 1]
        assert a.workers_of_task[1] == [1]
        assert a.tasks_of_worker[1] == [0, 1]
        assert a.n_edges == 3

    def test_duplicate_edge_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            BipartiteAssignment(n_tasks=1, n_workers=1, edges=[(0, 0), (0, 0)])

    def test_out_of_range_edge(self):
        with pytest.raises(ValueError):
            BipartiteAssignment(n_tasks=1, n_workers=1, edges=[(0, 1)])

    def test_degree_vectors(self):
        a = BipartiteAssignment(
            n_tasks=2, n_workers=3, edges=[(0, 0), (0, 1), (1, 2)]
        )
        assert list(a.task_degrees()) == [2, 1]
        assert list(a.worker_degrees()) == [1, 1, 1]

    def test_matrix_mask(self):
        a = BipartiteAssignment(n_tasks=2, n_workers=2, edges=[(0, 1), (1, 0)])
        mask = a.to_matrix_mask()
        assert mask.tolist() == [[False, True], [True, False]]

    def test_empty_dimensions_rejected(self):
        with pytest.raises(ValueError):
            BipartiteAssignment(n_tasks=0, n_workers=1, edges=[])


class TestRegularAssignment:
    def test_worker_count_formula(self):
        a = regular_assignment(100, workers_per_task=5, tasks_per_worker=10, rng=0)
        assert a.n_workers == 50  # N·ℓ/γ

    def test_degrees_nearly_regular(self):
        a = regular_assignment(200, 5, 10, rng=1)
        # Multi-edge collapse may shave a handful of edges.
        assert a.n_edges >= 0.98 * 200 * 5
        assert np.all(a.task_degrees() <= 5)
        assert np.all(a.worker_degrees() <= 10)
        assert a.task_degrees().mean() == pytest.approx(5, rel=0.02)

    def test_indivisible_rejected(self):
        with pytest.raises(ValueError, match="divisible"):
            regular_assignment(10, 3, 4, rng=0)

    def test_validation(self):
        with pytest.raises(ValueError):
            regular_assignment(0, 1, 1)
        with pytest.raises(ValueError):
            regular_assignment(10, 0, 1)

    def test_reproducible(self):
        a = regular_assignment(50, 3, 5, rng=42)
        b = regular_assignment(50, 3, 5, rng=42)
        assert a.edges == b.edges

    def test_randomness_across_seeds(self):
        a = regular_assignment(50, 3, 5, rng=1)
        b = regular_assignment(50, 3, 5, rng=2)
        assert a.edges != b.edges

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=10, max_value=100),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=6),
    )
    def test_structure_invariants(self, n_tasks, l, g):
        if (n_tasks * l) % g != 0:
            return
        a = regular_assignment(n_tasks, l, g, rng=0)
        assert a.n_tasks == n_tasks
        assert a.n_workers == n_tasks * l // g
        # Every edge valid and unique.
        assert len(set(a.edges)) == len(a.edges)
        for task, worker in a.edges:
            assert 0 <= task < a.n_tasks
            assert 0 <= worker < a.n_workers
