"""The adversarial reliability-drift workload and its detection metrics."""

import numpy as np
import pytest

from repro.crowd.assignment import regular_assignment
from repro.crowd.simulate import (
    DriftSpec,
    drifted_reliabilities,
    generate_drift_labels,
    run_drift_campaign,
)
from repro.obs.recorder import InMemoryRecorder
from repro.util.rng import ensure_rng


class TestDriftSpec:
    def test_mode_validated(self):
        with pytest.raises(ValueError, match="mode"):
            DriftSpec(mode="melt", workers=(0,), onset_round=1)

    def test_workers_required(self):
        with pytest.raises(ValueError, match="worker"):
            DriftSpec(mode="degrade", workers=(), onset_round=1)

    def test_collusion_strength_validated(self):
        with pytest.raises(ValueError, match="collusion_strength"):
            DriftSpec(
                mode="collude", workers=(0,), onset_round=0,
                collusion_strength=0.0,
            )

    def test_out_of_range_workers_rejected_by_campaign(self):
        spec = DriftSpec(mode="degrade", workers=(9999,), onset_round=0)
        with pytest.raises(ValueError, match="out of range"):
            run_drift_campaign(60, 6, 18, n_rounds=2, specs=[spec], rng=0)


class TestDriftedReliabilities:
    def test_before_onset_unchanged(self):
        base = np.full(10, 0.9)
        spec = DriftSpec(mode="degrade", workers=(2,), onset_round=5)
        assert np.array_equal(drifted_reliabilities(base, [spec], 4), base)

    def test_degrade_ramps_linearly_then_clamps(self):
        base = np.full(4, 0.9)
        spec = DriftSpec(
            mode="degrade", workers=(1,), onset_round=2,
            degrade_to=0.5, degrade_rounds=2,
        )
        at_onset = drifted_reliabilities(base, [spec], 2)
        assert at_onset[1] == pytest.approx(0.7)
        assert at_onset[0] == 0.9
        settled = drifted_reliabilities(base, [spec], 9)
        assert settled[1] == pytest.approx(0.5)

    def test_flip_swaps_spectrum_ends(self):
        base = np.array([0.95, 0.5])
        spec = DriftSpec(
            mode="flip", workers=(0, 1), onset_round=0,
            flip_low=0.5, flip_high=0.95,
        )
        flipped = drifted_reliabilities(base, [spec], 0)
        assert flipped[0] == 0.5
        assert flipped[1] == 0.95

    def test_collude_leaves_marginals_alone(self):
        base = np.full(6, 0.9)
        spec = DriftSpec(mode="collude", workers=(0, 1), onset_round=0)
        assert np.array_equal(drifted_reliabilities(base, [spec], 3), base)


class TestGenerateDriftLabels:
    def test_no_colluders_matches_honest_generation(self):
        rng = ensure_rng(3)
        assignment = regular_assignment(60, 6, 18, rng=rng)
        truths = np.where(rng.random(60) < 0.5, 1, -1)
        q = np.full(assignment.n_workers, 0.9)
        honest = generate_drift_labels(
            truths, assignment, q, colluders=set(),
            collusion_strength=0.9, rng=ensure_rng(5),
        )
        from repro.crowd.labels import generate_labels

        assert np.array_equal(
            honest, generate_labels(truths, assignment, q, rng=ensure_rng(5))
        )

    def test_colluders_agree_on_wrong_answers(self):
        rng = ensure_rng(4)
        assignment = regular_assignment(60, 6, 18, rng=rng)
        truths = np.where(rng.random(60) < 0.5, 1, -1)
        q = np.full(assignment.n_workers, 1.0)  # honest edges all correct
        cabal = {0, 1, 2}
        labels = generate_drift_labels(
            truths, assignment, q, colluders=cabal,
            collusion_strength=1.0, rng=ensure_rng(6),
        )
        for worker in range(assignment.n_workers):
            for task in assignment.tasks_of_worker[worker]:
                expected = -truths[task] if worker in cabal else truths[task]
                assert labels[task, worker] == expected


class TestRunDriftCampaign:
    def test_degrading_workers_detected_with_finite_latency(self):
        specs = [DriftSpec(mode="degrade", workers=(0, 1), onset_round=2,
                           degrade_rounds=2)]
        report = run_drift_campaign(
            120, 6, 18, n_rounds=8, specs=specs, rng=21
        )
        assert set(report.detection_rounds) == {0, 1}
        assert report.missed == ()
        assert all(1 <= lat <= 6 for lat in report.detection_rounds.values())
        assert report.mean_detection_rounds >= 1.0
        assert report.max_detection_rounds <= 6

    def test_clean_campaign_has_no_flags(self):
        report = run_drift_campaign(120, 6, 18, n_rounds=5, specs=[], rng=2)
        assert report.detection_rounds == {}
        assert report.false_positives == ()
        assert report.missed == ()
        # honest hammers keep believable beliefs throughout
        assert float(report.belief_trajectories.min()) > 0.625

    def test_colluders_detected(self):
        specs = [DriftSpec(mode="collude", workers=(3, 4, 5), onset_round=1,
                           collusion_strength=0.9)]
        report = run_drift_campaign(
            120, 6, 18, n_rounds=8, specs=specs, rng=31
        )
        assert set(report.detection_rounds) == {3, 4, 5}
        assert report.false_positives == ()

    def test_hammer_to_spammer_flip_detected_fast(self):
        specs = [DriftSpec(mode="flip", workers=(7,), onset_round=3)]
        report = run_drift_campaign(
            120, 6, 18, n_rounds=8, specs=specs, rng=41
        )
        assert 7 in report.detection_rounds
        assert report.detection_rounds[7] <= 3

    def test_spammer_to_hammer_flip_is_not_watched(self):
        # A worker improving mid-campaign must never be flagged as drift.
        from repro.crowd.workers import SpammerHammerPrior

        specs = [DriftSpec(mode="flip", workers=(0,), onset_round=2)]
        report = run_drift_campaign(
            120, 6, 18, n_rounds=6, specs=specs,
            prior=SpammerHammerPrior(
                hammer_fraction=0.999, hammer_reliability=0.9,
                spammer_reliability=0.55,
            ),
            detection_threshold=0.5,
            rng=51,
        )
        # whatever the worker's base end, detection accounting stays
        # consistent: flagged workers are a subset of watched ones
        assert set(report.detection_rounds).isdisjoint(report.false_positives)

    def test_detection_metrics_emitted(self):
        recorder = InMemoryRecorder()
        specs = [DriftSpec(mode="degrade", workers=(2,), onset_round=1,
                           degrade_rounds=1)]
        report = run_drift_campaign(
            120, 6, 18, n_rounds=6, specs=specs, rng=61, recorder=recorder
        )
        aggregates = recorder.aggregates()
        assert aggregates["hist:crowd.drift.detection_rounds:count"] == len(
            report.detection_rounds
        )
        assert aggregates["gauge:crowd.drift.watched"] == 1.0
        assert aggregates["counter:crowd.ledger.updates"] > 0
        assert aggregates["counter:crowd.stream.labels"] > 0
        assert aggregates["span:crowd.drift.campaign:count"] == 1.0

    def test_forgetting_controls_detection_speed(self):
        # Lower forgetting = heavier prior = slower to flag a drifted
        # vehicle; higher forgetting reacts faster (or equally fast).
        specs = [DriftSpec(mode="flip", workers=(4,), onset_round=3)]
        slow = run_drift_campaign(
            120, 6, 18, n_rounds=10, specs=specs, forgetting=0.3, rng=71
        )
        fast = run_drift_campaign(
            120, 6, 18, n_rounds=10, specs=specs, forgetting=0.9, rng=71
        )
        assert 4 in fast.detection_rounds
        if 4 in slow.detection_rounds:
            assert fast.detection_rounds[4] <= slow.detection_rounds[4]

    def test_round_errors_tracked_per_round(self):
        report = run_drift_campaign(120, 6, 18, n_rounds=4, specs=[], rng=5)
        assert len(report.round_errors) == 4
        assert all(0.0 <= e <= 1.0 for e in report.round_errors)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError, match="n_rounds"):
            run_drift_campaign(60, 6, 18, n_rounds=0, specs=[], rng=0)
        with pytest.raises(ValueError, match="detection_threshold"):
            run_drift_campaign(
                60, 6, 18, n_rounds=1, specs=[], detection_threshold=1.5,
                rng=0,
            )
