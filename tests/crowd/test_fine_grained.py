"""Tests for reliability-weighted centroid fusion (§5.4)."""

import pytest

from repro.crowd.fine_grained import VehicleReport, weighted_centroid_fusion
from repro.geo.points import Point


def report(vid, locations, q):
    return VehicleReport(
        vehicle_id=vid, ap_locations=tuple(locations), reliability=q
    )


class TestVehicleReport:
    def test_reliability_bounds(self):
        with pytest.raises(ValueError):
            report("v", [Point(0, 0)], 1.5)


class TestFusion:
    def test_co_located_estimates_merge(self):
        reports = [
            report("v1", [Point(10, 10)], 0.9),
            report("v2", [Point(12, 10)], 0.9),
            report("v3", [Point(11, 12)], 0.9),
        ]
        fused = weighted_centroid_fusion(reports, alignment_radius_m=10.0)
        assert len(fused) == 1
        assert fused[0].support == 3
        assert fused[0].location.distance_to(Point(11, 10.67)) < 1.0

    def test_distinct_aps_stay_separate(self):
        reports = [
            report("v1", [Point(0, 0), Point(100, 0)], 0.9),
            report("v2", [Point(2, 0), Point(98, 0)], 0.9),
        ]
        fused = weighted_centroid_fusion(reports, alignment_radius_m=10.0)
        assert len(fused) == 2

    def test_reliable_vehicle_dominates_position(self):
        reports = [
            report("hammer", [Point(0, 0)], 1.0),
            report("mediocre", [Point(10, 0)], 0.6),
        ]
        fused = weighted_centroid_fusion(reports, alignment_radius_m=20.0)
        assert len(fused) == 1
        # weight hammer = 0.5, mediocre = 0.1 → x = 10 * 0.1/0.6 ≈ 1.67
        assert fused[0].location.x == pytest.approx(1.667, abs=0.01)

    def test_spammer_contributes_no_weight(self):
        reports = [
            report("hammer", [Point(0, 0)], 1.0),
            report("spammer", [Point(8, 0)], 0.5),
        ]
        fused = weighted_centroid_fusion(reports, alignment_radius_m=20.0)
        assert fused[0].location.x == pytest.approx(0.0)
        assert fused[0].support == 2  # still counted as support

    def test_min_support_filters_lone_estimates(self):
        reports = [
            report("v1", [Point(0, 0), Point(200, 0)], 0.9),
            report("v2", [Point(1, 0)], 0.9),
        ]
        fused = weighted_centroid_fusion(
            reports, alignment_radius_m=10.0, min_support=2
        )
        assert len(fused) == 1
        assert fused[0].location.x < 2.0

    def test_all_spammers_fall_back_to_unweighted(self):
        reports = [
            report("s1", [Point(0, 0)], 0.5),
            report("s2", [Point(4, 0)], 0.5),
        ]
        fused = weighted_centroid_fusion(reports, alignment_radius_m=10.0)
        assert len(fused) == 1
        assert fused[0].location.x == pytest.approx(2.0)

    def test_sorted_by_weight(self):
        reports = [
            report("v1", [Point(0, 0)], 1.0),
            report("v2", [Point(1, 0)], 1.0),
            report("v3", [Point(100, 0)], 0.7),
        ]
        fused = weighted_centroid_fusion(reports, alignment_radius_m=10.0)
        assert fused[0].total_weight >= fused[-1].total_weight

    def test_empty_reports(self):
        assert weighted_centroid_fusion([]) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            weighted_centroid_fusion([], alignment_radius_m=0.0)
        with pytest.raises(ValueError):
            weighted_centroid_fusion([], min_support=0)
        with pytest.raises(ValueError):
            weighted_centroid_fusion([], spammer_floor=1.0)

    def test_one_vehicle_many_aps(self):
        reports = [report("v1", [Point(0, 0), Point(50, 0), Point(100, 0)], 0.9)]
        fused = weighted_centroid_fusion(reports, alignment_radius_m=10.0)
        assert len(fused) == 3
        assert all(ap.support == 1 for ap in fused)
