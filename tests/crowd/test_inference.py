"""Tests for KOS iterative inference (§5.3)."""

import numpy as np
import pytest

from repro.crowd.aggregation import majority_vote
from repro.crowd.assignment import regular_assignment
from repro.crowd.inference import kos_inference
from repro.crowd.labels import generate_labels
from repro.crowd.workers import SpammerHammerPrior
from repro.metrics.errors import bitwise_error_rate


def spammer_hammer_instance(n_tasks, l, g, seed, hammer_fraction=0.5):
    rng = np.random.default_rng(seed)
    assignment = regular_assignment(n_tasks, l, g, rng=rng)
    prior = SpammerHammerPrior(hammer_fraction=hammer_fraction)
    q = prior.sample(assignment.n_workers, rng=rng)
    z = np.where(rng.random(n_tasks) < 0.5, 1, -1)
    labels = generate_labels(z, assignment, q, rng=rng)
    return assignment, q, z, labels


class TestKosInference:
    def test_perfect_workers_exact(self):
        assignment, _, z, labels = spammer_hammer_instance(
            100, 3, 6, seed=0, hammer_fraction=0.999
        )
        result = kos_inference(labels, assignment)
        assert bitwise_error_rate(z, result.estimates) == 0.0

    def test_zeroth_iteration_is_majority_voting(self):
        """§5.3: with y initialised to ones, iteration 0 reduces to MV."""
        assignment, _, z, labels = spammer_hammer_instance(200, 5, 10, seed=1)
        kos_zero = kos_inference(labels, assignment, max_iterations=0)
        mv = majority_vote(labels, assignment)
        assert np.array_equal(kos_zero.estimates, mv)

    def test_beats_majority_voting_with_spammers(self):
        errors_kos, errors_mv = [], []
        for seed in range(8):
            assignment, _, z, labels = spammer_hammer_instance(
                500, 15, 5, seed=seed
            )
            result = kos_inference(labels, assignment)
            errors_kos.append(bitwise_error_rate(z, result.estimates))
            errors_mv.append(
                bitwise_error_rate(z, majority_vote(labels, assignment))
            )
        assert np.mean(errors_kos) < np.mean(errors_mv)

    def test_infers_worker_classes(self):
        assignment, q, z, labels = spammer_hammer_instance(800, 9, 9, seed=2)
        result = kos_inference(labels, assignment)
        hammers = result.worker_reliability[q == 1.0]
        spammers = result.worker_reliability[q == 0.5]
        assert hammers.mean() > spammers.mean() + 0.2

    def test_reliability_in_unit_interval(self):
        assignment, _, _, labels = spammer_hammer_instance(100, 3, 6, seed=3)
        result = kos_inference(labels, assignment)
        assert np.all(result.worker_reliability >= 0.0)
        assert np.all(result.worker_reliability <= 1.0)

    def test_estimates_are_pm1(self):
        assignment, _, _, labels = spammer_hammer_instance(100, 3, 6, seed=4)
        result = kos_inference(labels, assignment)
        assert set(np.unique(result.estimates)) <= {-1, 1}

    def test_converges_within_default_budget(self):
        assignment, _, _, labels = spammer_hammer_instance(300, 5, 5, seed=5)
        result = kos_inference(labels, assignment)
        assert result.converged
        assert result.iterations < 100

    def test_random_init_same_quality(self):
        assignment, _, z, labels = spammer_hammer_instance(400, 9, 9, seed=6)
        deterministic = kos_inference(labels, assignment)
        randomized = kos_inference(labels, assignment, random_init=True, rng=0)
        err_d = bitwise_error_rate(z, deterministic.estimates)
        err_r = bitwise_error_rate(z, randomized.estimates)
        assert abs(err_d - err_r) < 0.05

    def test_shape_validation(self):
        assignment = regular_assignment(10, 2, 4, rng=0)
        with pytest.raises(ValueError):
            kos_inference(np.zeros((3, 3)), assignment)

    def test_zero_on_edge_rejected(self):
        assignment = regular_assignment(10, 2, 4, rng=0)
        labels = np.zeros((10, 5), dtype=int)  # all zeros, including edges
        with pytest.raises(ValueError, match="zero label"):
            kos_inference(labels, assignment)

    def test_error_decays_with_degree(self):
        """Fig. 7(a): error decays as workers-per-task ℓ grows."""
        mean_errors = []
        for l in (3, 9, 21):
            errors = []
            for seed in range(6):
                assignment, _, z, labels = spammer_hammer_instance(
                    300, l, 3, seed=100 + seed
                )
                result = kos_inference(labels, assignment)
                errors.append(bitwise_error_rate(z, result.estimates))
            mean_errors.append(np.mean(errors))
        assert mean_errors[0] > mean_errors[1] >= mean_errors[2]
