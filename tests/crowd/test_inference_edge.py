"""Edge-case tests for the crowd inference algorithms."""

import numpy as np
import pytest

from repro.crowd.assignment import BipartiteAssignment
from repro.crowd.inference import kos_inference
from repro.crowd.variational import em_inference


def manual_labels(assignment, truth, wrong_edges=()):
    labels = np.zeros((assignment.n_tasks, assignment.n_workers), dtype=int)
    for task, worker in assignment.edges:
        value = truth[task]
        if (task, worker) in wrong_edges:
            value = -value
        labels[task, worker] = value
    return labels


class TestDisconnectedGraphs:
    @pytest.fixture
    def two_islands(self):
        """Two disjoint task/worker communities in one assignment."""
        edges = []
        # Island A: tasks 0-4, workers 0-2 (complete bipartite).
        for task in range(5):
            for worker in range(3):
                edges.append((task, worker))
        # Island B: tasks 5-9, workers 3-5.
        for task in range(5, 10):
            for worker in range(3, 6):
                edges.append((task, worker))
        return BipartiteAssignment(n_tasks=10, n_workers=6, edges=edges)

    def test_kos_handles_disconnected_components(self, two_islands):
        truth = np.array([1, -1, 1, -1, 1, -1, 1, -1, 1, -1])
        labels = manual_labels(two_islands, truth)
        result = kos_inference(labels, two_islands)
        assert np.array_equal(result.estimates, truth)
        assert np.all(result.worker_reliability == 1.0)

    def test_em_handles_disconnected_components(self, two_islands):
        truth = np.array([1, -1, 1, -1, 1, -1, 1, -1, 1, -1])
        labels = manual_labels(two_islands, truth)
        result = em_inference(labels, two_islands)
        assert np.array_equal(result.estimates, truth)


class TestSingleWorker:
    def test_one_worker_is_taken_at_its_word(self):
        """With a single worker the KOS leave-one-out messages vanish (the
        sums exclude the only neighbour), so the iterative form is
        degenerate by construction; its 0-th iteration — majority voting —
        and the EM aggregator both take the worker at its word.  This is
        exactly why CrowdServer falls back to 0 iterations for tiny
        crowds."""
        assignment = BipartiteAssignment(
            n_tasks=4, n_workers=1, edges=[(t, 0) for t in range(4)]
        )
        truth = np.array([1, 1, -1, 1])
        labels = manual_labels(assignment, truth)
        kos_mv = kos_inference(labels, assignment, max_iterations=0)
        em = em_inference(labels, assignment)
        assert np.array_equal(kos_mv.estimates, truth)
        assert np.array_equal(em.estimates, truth)


class TestIsolatedWorker:
    def test_worker_with_no_tasks_gets_neutral_reliability(self):
        # Worker 1 never answers anything.
        assignment = BipartiteAssignment(
            n_tasks=3, n_workers=2, edges=[(t, 0) for t in range(3)]
        )
        truth = np.array([1, -1, 1])
        labels = manual_labels(assignment, truth)
        kos = kos_inference(labels, assignment)
        em = em_inference(labels, assignment)
        assert kos.worker_reliability[1] == pytest.approx(0.5)
        assert 0.0 <= em.worker_reliability[1] <= 1.0


class TestMinorityTruth:
    def test_one_hammer_cannot_outvote_two_spammers_at_kos_zeroth(self):
        """At 0 iterations (= MV) a lone correct worker loses 1-vs-2;
        with iterations and enough tasks KOS recovers it."""
        rng = np.random.default_rng(0)
        n_tasks = 60
        edges = [(t, w) for t in range(n_tasks) for w in range(3)]
        assignment = BipartiteAssignment(
            n_tasks=n_tasks, n_workers=3, edges=edges
        )
        truth = np.where(rng.random(n_tasks) < 0.5, 1, -1)
        labels = np.zeros((n_tasks, 3), dtype=int)
        labels[:, 0] = truth  # the hammer
        labels[:, 1] = np.where(rng.random(n_tasks) < 0.5, 1, -1)
        labels[:, 2] = np.where(rng.random(n_tasks) < 0.5, 1, -1)
        zeroth = kos_inference(labels, assignment, max_iterations=0)
        full = kos_inference(labels, assignment)
        zeroth_errors = int(np.sum(zeroth.estimates != truth))
        full_errors = int(np.sum(full.estimates != truth))
        assert full_errors <= zeroth_errors
