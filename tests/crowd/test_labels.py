"""Tests for the noisy labeling process (§5.2)."""

import numpy as np
import pytest

from repro.crowd.assignment import regular_assignment
from repro.crowd.labels import generate_labels


@pytest.fixture
def assignment():
    return regular_assignment(60, 3, 6, rng=0)


class TestGenerateLabels:
    def test_zeros_exactly_on_non_edges(self, assignment):
        z = np.ones(assignment.n_tasks, dtype=int)
        q = np.ones(assignment.n_workers)
        labels = generate_labels(z, assignment, q, rng=0)
        mask = assignment.to_matrix_mask()
        assert np.all((labels != 0) == mask)

    def test_perfect_workers_always_correct(self, assignment):
        rng = np.random.default_rng(1)
        z = np.where(rng.random(assignment.n_tasks) < 0.5, 1, -1)
        q = np.ones(assignment.n_workers)
        labels = generate_labels(z, assignment, q, rng=2)
        for task, worker in assignment.edges:
            assert labels[task, worker] == z[task]

    def test_zero_reliability_always_wrong(self, assignment):
        z = np.ones(assignment.n_tasks, dtype=int)
        q = np.zeros(assignment.n_workers)
        labels = generate_labels(z, assignment, q, rng=3)
        for task, worker in assignment.edges:
            assert labels[task, worker] == -1

    def test_spammer_statistics(self):
        assignment = regular_assignment(1000, 3, 6, rng=4)
        z = np.ones(assignment.n_tasks, dtype=int)
        q = np.full(assignment.n_workers, 0.5)
        labels = generate_labels(z, assignment, q, rng=5)
        values = labels[labels != 0]
        assert np.mean(values == 1) == pytest.approx(0.5, abs=0.05)

    def test_reliability_statistics(self):
        assignment = regular_assignment(2000, 3, 6, rng=6)
        z = np.where(np.random.default_rng(7).random(2000) < 0.5, 1, -1)
        q = np.full(assignment.n_workers, 0.8)
        labels = generate_labels(z, assignment, q, rng=8)
        correct = sum(
            labels[t, w] == z[t] for t, w in assignment.edges
        )
        assert correct / assignment.n_edges == pytest.approx(0.8, abs=0.02)

    def test_shape_validation(self, assignment):
        with pytest.raises(ValueError):
            generate_labels([1], assignment, np.ones(assignment.n_workers))
        with pytest.raises(ValueError):
            generate_labels(
                np.ones(assignment.n_tasks, dtype=int), assignment, [0.5]
            )

    def test_label_value_validation(self, assignment):
        z = np.zeros(assignment.n_tasks, dtype=int)
        with pytest.raises(ValueError, match="±1"):
            generate_labels(z, assignment, np.ones(assignment.n_workers))

    def test_reliability_range_validation(self, assignment):
        z = np.ones(assignment.n_tasks, dtype=int)
        q = np.full(assignment.n_workers, 1.5)
        with pytest.raises(ValueError):
            generate_labels(z, assignment, q)

    def test_reproducible(self, assignment):
        z = np.ones(assignment.n_tasks, dtype=int)
        q = np.full(assignment.n_workers, 0.7)
        a = generate_labels(z, assignment, q, rng=9)
        b = generate_labels(z, assignment, q, rng=9)
        assert np.array_equal(a, b)
