"""Tests for the reusable crowdsourcing simulation harness."""

import numpy as np
import pytest

from repro.crowd.simulate import (
    evaluate_aggregators,
    make_instance,
    mean_errors,
)
from repro.crowd.workers import SpammerHammerPrior


class TestMakeInstance:
    def test_instance_is_consistent(self):
        instance = make_instance(100, 5, 10, rng=0)
        assert instance.assignment.n_tasks == 100
        assert instance.labels.shape == (
            100, instance.assignment.n_workers
        )
        assert instance.reliabilities.shape == (
            instance.assignment.n_workers,
        )
        assert set(np.unique(instance.true_labels)) <= {-1, 1}

    def test_reproducible(self):
        a = make_instance(50, 3, 5, rng=42)
        b = make_instance(50, 3, 5, rng=42)
        assert np.array_equal(a.labels, b.labels)
        assert np.array_equal(a.true_labels, b.true_labels)

    def test_custom_prior(self):
        prior = SpammerHammerPrior(hammer_fraction=1.0)
        instance = make_instance(50, 3, 5, prior=prior, rng=1)
        assert np.all(instance.reliabilities == 1.0)


class TestEvaluateAggregators:
    def test_all_standard_aggregators_present(self):
        instance = make_instance(100, 5, 10, rng=2)
        errors = evaluate_aggregators(instance)
        assert set(errors) == {
            "crowdwifi", "em", "majority_vote", "skyhook", "oracle",
        }
        assert all(0.0 <= e <= 1.0 for e in errors.values())

    def test_hammer_only_instance_is_perfect(self):
        prior = SpammerHammerPrior(hammer_fraction=1.0)
        instance = make_instance(100, 3, 6, prior=prior, rng=3)
        errors = evaluate_aggregators(instance)
        assert errors["majority_vote"] == 0.0
        assert errors["crowdwifi"] == 0.0
        assert errors["em"] == 0.0

    def test_custom_aggregator(self):
        instance = make_instance(20, 2, 4, rng=4)
        errors = evaluate_aggregators(
            instance,
            {"constant": lambda inst: np.ones(inst.assignment.n_tasks, int)},
        )
        assert set(errors) == {"constant"}


class TestMeanErrors:
    def test_averaging(self):
        errors = mean_errors(200, 9, 9, n_trials=4, rng=5)
        # Reliability-aware methods beat MV on spammer-hammer crowds.
        assert errors["crowdwifi"] < errors["majority_vote"]
        assert errors["em"] < errors["majority_vote"]
        assert errors["oracle"] <= errors["crowdwifi"] + 1e-9

    def test_trial_validation(self):
        with pytest.raises(ValueError):
            mean_errors(10, 1, 2, n_trials=0)
