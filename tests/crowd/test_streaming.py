"""Streaming KOS: batch-equivalence contract, ingest semantics, ledger."""

import json

import numpy as np
import pytest

from repro.crowd.aggregation import majority_vote
from repro.crowd.assignment import regular_assignment
from repro.crowd.inference import kos_inference
from repro.crowd.labels import generate_labels
from repro.crowd.streaming import ReliabilityLedger, StreamingKos
from repro.obs.recorder import InMemoryRecorder
from repro.util.rng import ensure_rng


def make_round(seed, n_tasks=120, workers_per_task=6, tasks_per_worker=18):
    rng = ensure_rng(seed)
    assignment = regular_assignment(
        n_tasks, workers_per_task, tasks_per_worker, rng=rng
    )
    truths = np.where(rng.random(n_tasks) < 0.5, 1, -1)
    reliabilities = 0.55 + 0.4 * rng.random(assignment.n_workers)
    labels = generate_labels(truths, assignment, reliabilities, rng=rng)
    return assignment, truths, labels


def feed_by_worker(stream, assignment, labels, worker_order=None, chunk=None):
    workers = (
        worker_order
        if worker_order is not None
        else range(assignment.n_workers)
    )
    for worker in workers:
        tasks = sorted(assignment.tasks_of_worker[worker])
        values = [int(labels[t, worker]) for t in tasks]
        if chunk is None:
            stream.ingest(worker, tasks, values)
        else:
            for start in range(0, len(tasks), chunk):
                stream.ingest(
                    worker, tasks[start : start + chunk], values[start : start + chunk]
                )


def assert_results_identical(a, b):
    assert np.array_equal(a.estimates, b.estimates)
    assert np.array_equal(a.worker_scores, b.worker_scores)
    assert np.array_equal(a.worker_reliability, b.worker_reliability)
    assert a.iterations == b.iterations
    assert a.converged == b.converged


class TestFinalizeBatchEquivalence:
    @pytest.mark.parametrize("seed", [0, 7, 123])
    def test_finalize_bit_identical_to_batch(self, seed):
        assignment, _, labels = make_round(seed)
        stream = StreamingKos(assignment)
        feed_by_worker(stream, assignment, labels)
        assert_results_identical(
            stream.finalize(), kos_inference(labels, assignment)
        )

    def test_finalize_bit_identical_with_random_init(self):
        assignment, _, labels = make_round(3)
        stream = StreamingKos(assignment)
        feed_by_worker(stream, assignment, labels)
        assert_results_identical(
            stream.finalize(random_init=True, rng=ensure_rng(42)),
            kos_inference(labels, assignment, random_init=True, rng=ensure_rng(42)),
        )

    def test_majority_vote_fallback_identical(self):
        # max_iterations=0 is the min_workers_for_kos fallback: both
        # paths must reduce exactly to majority voting.
        assignment, _, labels = make_round(11)
        stream = StreamingKos(assignment)
        feed_by_worker(stream, assignment, labels)
        frozen = stream.finalize(max_iterations=0)
        batch = kos_inference(labels, assignment, max_iterations=0)
        assert_results_identical(frozen, batch)
        assert np.array_equal(
            frozen.estimates, majority_vote(labels, assignment)
        )

    def test_arrival_order_does_not_change_finalize(self):
        assignment, _, labels = make_round(5)
        forward = StreamingKos(assignment)
        feed_by_worker(forward, assignment, labels)
        scrambled = StreamingKos(assignment, sweep_fraction=0.1)
        order = list(range(assignment.n_workers))
        ensure_rng(99).shuffle(order)
        feed_by_worker(scrambled, assignment, labels, worker_order=order, chunk=3)
        assert_results_identical(forward.finalize(), scrambled.finalize())

    def test_chunked_arrivals_equal_whole_submissions(self):
        assignment, _, labels = make_round(8)
        whole = StreamingKos(assignment)
        feed_by_worker(whole, assignment, labels)
        chunked = StreamingKos(assignment)
        feed_by_worker(chunked, assignment, labels, chunk=2)
        assert chunked.sweeps_run >= whole.sweeps_run
        assert_results_identical(whole.finalize(), chunked.finalize())

    def test_interim_sweeps_do_not_leak_into_finalize(self):
        assignment, _, labels = make_round(2)
        swept = StreamingKos(assignment, sweep_fraction=0.05, damping=0.9)
        feed_by_worker(swept, assignment, labels, chunk=1)
        assert swept.sweeps_run > 5
        unswept = StreamingKos(assignment, sweep_fraction=1.0)
        feed_by_worker(unswept, assignment, labels)
        assert_results_identical(swept.finalize(), unswept.finalize())


class TestIngest:
    def test_finalize_requires_complete_pool(self):
        assignment, _, labels = make_round(1)
        stream = StreamingKos(assignment)
        stream.ingest(0, sorted(assignment.tasks_of_worker[0]), [
            int(labels[t, 0]) for t in sorted(assignment.tasks_of_worker[0])
        ])
        assert not stream.complete
        with pytest.raises(ValueError, match="still carry no label"):
            stream.finalize()

    def test_unassigned_task_rejected(self):
        assignment, _, _ = make_round(1)
        assigned = set(assignment.tasks_of_worker[0])
        unassigned = next(
            t for t in range(assignment.n_tasks) if t not in assigned
        )
        stream = StreamingKos(assignment)
        with pytest.raises(KeyError, match="not assigned"):
            stream.ingest(0, [unassigned], [1])

    def test_bad_label_value_rejected(self):
        assignment, _, _ = make_round(1)
        task = sorted(assignment.tasks_of_worker[0])[0]
        stream = StreamingKos(assignment)
        with pytest.raises(ValueError, match="±1"):
            stream.ingest(0, [task], [0])

    def test_worker_index_out_of_range(self):
        assignment, _, _ = make_round(1)
        stream = StreamingKos(assignment)
        with pytest.raises(ValueError, match="out of range"):
            stream.ingest(assignment.n_workers, [0], [1])

    def test_resubmission_overwrites(self):
        assignment, _, labels = make_round(4)
        stream = StreamingKos(assignment)
        tasks = sorted(assignment.tasks_of_worker[0])
        stream.ingest(0, tasks, [1] * len(tasks))
        filled = stream.n_filled
        stream.ingest(0, tasks, [-1] * len(tasks))
        assert stream.n_filled == filled  # no double counting
        feed_by_worker(
            stream, assignment, labels,
            worker_order=range(1, assignment.n_workers),
        )
        flipped = np.array(labels, copy=True)
        flipped[tasks, 0] = -1
        assert_results_identical(
            stream.finalize(), kos_inference(flipped, assignment)
        )

    def test_interim_estimates_start_as_majority_vote(self):
        # Before any sweep the y-messages are all ones, so the interim
        # readout is exactly the majority vote over the labels seen.
        assignment, _, labels = make_round(6)
        stream = StreamingKos(assignment, sweep_fraction=1.0)
        half = assignment.n_workers // 2
        feed_by_worker(
            stream, assignment, labels, worker_order=range(half)
        )
        assert stream.sweeps_run == 0
        partial = np.array(labels, copy=True)
        partial[:, half:] = 0
        assert np.array_equal(
            stream.estimates(), majority_vote(partial, assignment)
        )

    def test_telemetry_counters(self):
        assignment, _, labels = make_round(9)
        recorder = InMemoryRecorder()
        stream = StreamingKos(assignment, sweep_fraction=0.2)
        for worker in range(assignment.n_workers):
            tasks = sorted(assignment.tasks_of_worker[worker])
            stream.ingest(
                worker,
                tasks,
                [int(labels[t, worker]) for t in tasks],
                recorder=recorder,
            )
        stream.finalize(recorder=recorder)
        aggregates = recorder.aggregates()
        assert aggregates["counter:crowd.stream.labels"] == len(assignment.edges)
        assert aggregates["counter:crowd.stream.sweeps"] == stream.sweeps_run
        assert aggregates["span:crowd.finalize:count"] == 1.0
        assert aggregates["counter:kos.runs"] == 1.0


class TestStatePersistence:
    def test_json_state_round_trip_is_exact(self):
        assignment, _, labels = make_round(12)
        stream = StreamingKos(assignment, sweep_fraction=0.1)
        feed_by_worker(stream, assignment, labels, chunk=4)
        state = json.loads(json.dumps(stream.state_dict()))
        restored = StreamingKos(assignment, sweep_fraction=0.1)
        restored.load_matrix(labels)
        restored.restore_state(state)
        assert restored.complete
        assert restored.sweeps_run == stream.sweeps_run
        assert restored.labels_ingested == stream.labels_ingested
        assert np.array_equal(restored.estimates(), stream.estimates())
        assert np.array_equal(
            restored.interim_reliability(), stream.interim_reliability()
        )
        assert_results_identical(restored.finalize(), stream.finalize())

    def test_load_matrix_counts_partial_fill(self):
        assignment, _, labels = make_round(13)
        partial = np.array(labels, copy=True)
        partial[:, assignment.n_workers // 2 :] = 0
        stream = StreamingKos(assignment)
        stream.load_matrix(partial)
        assert stream.n_filled == int(np.count_nonzero(partial))
        assert not stream.complete

    def test_restore_state_shape_mismatch_rejected(self):
        assignment, _, _ = make_round(1)
        stream = StreamingKos(assignment)
        with pytest.raises(ValueError, match="messages"):
            stream.restore_state(
                {"y": [1.0], "labels_since_sweep": 0, "sweeps_run": 0,
                 "labels_ingested": 0}
            )


class TestConstruction:
    def test_damping_validation(self):
        assignment, _, _ = make_round(1)
        with pytest.raises(ValueError, match="damping"):
            StreamingKos(assignment, damping=1.0)

    def test_sweep_fraction_validation(self):
        assignment, _, _ = make_round(1)
        with pytest.raises(ValueError, match="sweep_fraction"):
            StreamingKos(assignment, sweep_fraction=0.0)


class TestReliabilityLedger:
    def test_default_for_unseen(self):
        ledger = ReliabilityLedger(default=0.75)
        assert ledger.get("v") == 0.75
        assert "v" not in ledger
        assert len(ledger) == 0

    def test_forgetting_one_is_overwrite(self):
        ledger = ReliabilityLedger(default=0.75, forgetting=1.0)
        assert ledger.observe("v", 0.9) == 0.9
        assert ledger.observe("v", 0.2) == 0.2
        assert ledger.get("v") == 0.2

    def test_exponential_forgetting_blends_prior(self):
        ledger = ReliabilityLedger(default=0.75, forgetting=0.5)
        assert ledger.observe("v", 0.25) == pytest.approx(0.5)
        assert ledger.observe("v", 0.5) == pytest.approx(0.5)
        # unseen vehicle blends from the default prior
        assert ledger.observe("w", 1.0) == pytest.approx(0.875)

    def test_observe_many_counts_updates(self):
        recorder = InMemoryRecorder()
        ledger = ReliabilityLedger()
        n = ledger.observe_many(
            [("a", 0.5), ("b", 0.9)], recorder=recorder
        )
        assert n == 2
        assert recorder.aggregates()["counter:crowd.ledger.updates"] == 2.0

    def test_flagged_below_threshold(self):
        ledger = ReliabilityLedger()
        ledger.observe("bad", 0.4)
        ledger.observe("good", 0.9)
        assert ledger.flagged(0.6) == {"bad": 0.4}

    def test_validation(self):
        with pytest.raises(ValueError, match="forgetting"):
            ReliabilityLedger(forgetting=0.0)
        with pytest.raises(ValueError, match="default"):
            ReliabilityLedger(default=1.5)
