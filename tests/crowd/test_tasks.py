"""Tests for AP distribution-pattern mapping tasks (§5.2)."""

import numpy as np
import pytest

from repro.crowd.tasks import MappingTask, PatternTaskGenerator
from repro.geo.grid import Grid
from repro.geo.points import BoundingBox


@pytest.fixture
def grid():
    return Grid(box=BoundingBox(0, 0, 100, 100), lattice_length=10.0)


@pytest.fixture
def generator(grid):
    return PatternTaskGenerator(grid, segment_id="seg-1")


class TestMappingTask:
    def test_label_validation(self):
        with pytest.raises(ValueError):
            MappingTask(
                task_id=0, segment_id="s", pattern=frozenset({1}), true_label=0
            )

    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            MappingTask(
                task_id=0, segment_id="s", pattern=frozenset(), true_label=1
            )


class TestPatternGeneration:
    def test_true_pattern(self, generator):
        pattern = generator.true_pattern([3, 14, 59])
        assert pattern == frozenset({3, 14, 59})

    def test_true_pattern_bounds(self, generator):
        with pytest.raises(IndexError):
            generator.true_pattern([100])

    def test_perturbed_pattern_differs(self, generator):
        base = generator.true_pattern([33, 66])
        rng = np.random.default_rng(0)
        perturbed = generator.perturbed_pattern(base, rng=rng)
        assert perturbed != base
        assert len(perturbed) == len(base)

    def test_perturbed_stays_on_grid(self, generator, grid):
        base = generator.true_pattern([0, 99])  # corner cells
        rng = np.random.default_rng(1)
        for _ in range(10):
            perturbed = generator.perturbed_pattern(base, rng=rng)
            assert all(0 <= cell < grid.n_points for cell in perturbed)


class TestGeneratePool:
    def test_pool_composition(self, generator):
        tasks = generator.generate_pool([22, 77], 10, rng=0)
        assert len(tasks) == 10
        positives = [t for t in tasks if t.true_label == 1]
        negatives = [t for t in tasks if t.true_label == -1]
        assert len(positives) == 5
        assert len(negatives) == 5
        base = frozenset({22, 77})
        assert all(t.pattern == base for t in positives)
        assert all(t.pattern != base for t in negatives)

    def test_task_ids_sequential(self, generator):
        tasks = generator.generate_pool([5], 6, rng=1)
        assert [t.task_id for t in tasks] == list(range(6))

    def test_custom_positive_fraction(self, generator):
        tasks = generator.generate_pool([40], 10, positive_fraction=0.3, rng=2)
        assert sum(1 for t in tasks if t.true_label == 1) == 3

    def test_fraction_clamped_away_from_degenerate(self, generator):
        tasks = generator.generate_pool([40], 4, positive_fraction=0.01, rng=3)
        labels = [t.true_label for t in tasks]
        assert 1 in labels and -1 in labels

    def test_validation(self, generator):
        with pytest.raises(ValueError):
            generator.generate_pool([1], 0)
        with pytest.raises(ValueError):
            generator.generate_pool([1], 5, positive_fraction=1.0)

    def test_labels_of(self, generator):
        tasks = generator.generate_pool([10, 20], 8, rng=4)
        labels = PatternTaskGenerator.labels_of(tasks)
        assert labels.shape == (8,)
        assert set(np.unique(labels)) == {-1, 1}

    def test_segment_id_stamped(self, generator):
        tasks = generator.generate_pool([1], 4, rng=5)
        assert all(t.segment_id == "seg-1" for t in tasks)
