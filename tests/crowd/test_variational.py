"""Tests for the EM / variational label aggregator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.crowd.aggregation import majority_vote
from repro.crowd.assignment import regular_assignment
from repro.crowd.inference import kos_inference
from repro.crowd.labels import generate_labels
from repro.crowd.variational import em_inference
from repro.crowd.workers import SpammerHammerPrior
from repro.metrics.errors import bitwise_error_rate


def instance(n_tasks, l, g, seed):
    rng = np.random.default_rng(seed)
    assignment = regular_assignment(n_tasks, l, g, rng=rng)
    q = SpammerHammerPrior(hammer_fraction=0.5).sample(
        assignment.n_workers, rng=rng
    )
    z = np.where(rng.random(n_tasks) < 0.5, 1, -1)
    labels = generate_labels(z, assignment, q, rng=rng)
    return assignment, q, z, labels


class TestEmInference:
    def test_perfect_workers_exact(self):
        assignment, _, z, labels = instance(100, 3, 6, seed=0)
        # Overwrite labels with perfect answers.
        perfect = np.zeros_like(labels)
        for task, worker in assignment.edges:
            perfect[task, worker] = z[task]
        result = em_inference(perfect, assignment)
        assert bitwise_error_rate(z, result.estimates) == 0.0

    def test_zero_iterations_is_majority_voting(self):
        assignment, _, _, labels = instance(200, 5, 10, seed=1)
        em_zero = em_inference(labels, assignment, max_iterations=0)
        mv = majority_vote(labels, assignment)
        assert np.array_equal(em_zero.estimates, mv)

    def test_beats_majority_voting_with_spammers(self):
        em_errors, mv_errors = [], []
        for seed in range(6):
            assignment, _, z, labels = instance(400, 15, 5, seed=seed)
            em_errors.append(
                bitwise_error_rate(z, em_inference(labels, assignment).estimates)
            )
            mv_errors.append(
                bitwise_error_rate(z, majority_vote(labels, assignment))
            )
        assert np.mean(em_errors) < np.mean(mv_errors)

    def test_comparable_to_kos(self):
        em_errors, kos_errors = [], []
        for seed in range(6):
            assignment, _, z, labels = instance(400, 9, 9, seed=100 + seed)
            em_errors.append(
                bitwise_error_rate(z, em_inference(labels, assignment).estimates)
            )
            kos_errors.append(
                bitwise_error_rate(
                    z, kos_inference(labels, assignment).estimates
                )
            )
        # Same order of magnitude — both exploit reliability structure.
        assert np.mean(em_errors) <= 2.5 * np.mean(kos_errors) + 0.01

    def test_separates_worker_classes(self):
        assignment, q, _, labels = instance(800, 9, 9, seed=2)
        result = em_inference(labels, assignment)
        hammers = result.worker_reliability[q == 1.0]
        spammers = result.worker_reliability[q == 0.5]
        assert hammers.mean() > spammers.mean() + 0.2

    def test_posteriors_in_unit_interval(self):
        assignment, _, _, labels = instance(100, 3, 6, seed=3)
        result = em_inference(labels, assignment)
        assert np.all(result.posterior_positive >= 0.0)
        assert np.all(result.posterior_positive <= 1.0)
        assert np.all(result.worker_reliability >= 0.0)
        assert np.all(result.worker_reliability <= 1.0)

    def test_converges(self):
        assignment, _, _, labels = instance(300, 5, 5, seed=4)
        result = em_inference(labels, assignment)
        assert result.converged
        assert result.iterations < 100

    def test_validation(self):
        assignment = regular_assignment(10, 2, 4, rng=0)
        with pytest.raises(ValueError):
            em_inference(np.zeros((3, 3)), assignment)
        labels = generate_labels(
            np.ones(10, dtype=int), assignment, np.ones(assignment.n_workers),
            rng=0,
        )
        with pytest.raises(ValueError):
            em_inference(labels, assignment, alpha=0.0)
        with pytest.raises(ValueError):
            em_inference(labels, assignment, max_iterations=-1)

    def test_mask_hoisting_matches_reference_em(self):
        # The vote-indicator matrices were hoisted out of the EM loop;
        # re-deriving them per iteration (the old shape) must give the
        # exact same trajectory.
        assignment, _, _, labels = instance(150, 5, 10, seed=7)
        result = em_inference(labels, assignment)
        from repro.crowd.variational import _e_step, _m_step

        edge_mask = labels != 0
        degrees = edge_mask.sum(axis=0).astype(float)
        reliabilities = np.full(assignment.n_workers, 0.75)
        pos = ((labels == 1) & edge_mask).astype(float)
        neg = ((labels == -1) & edge_mask).astype(float)
        posterior = _e_step(pos, neg, reliabilities)
        for _ in range(result.iterations):
            reliabilities = _m_step(pos, neg, posterior, degrees, 2.0, 1.0)
            posterior = _e_step(pos, neg, reliabilities)
        assert np.array_equal(posterior, result.posterior_positive)
        assert np.array_equal(reliabilities, result.worker_reliability)

    def test_prior_regularizes_extremes(self):
        # A worker who answered everything correctly still gets q̂ < 1
        # because of the Beta pseudo-counts.
        assignment, _, z, _ = instance(50, 2, 4, seed=5)
        perfect = np.zeros((assignment.n_tasks, assignment.n_workers), dtype=int)
        for task, worker in assignment.edges:
            perfect[task, worker] = z[task]
        result = em_inference(perfect, assignment, alpha=2.0, beta=2.0)
        assert np.all(result.worker_reliability < 1.0)


class TestEmKosAgreementProperties:
    """EM and KOS are interchangeable on clean pools and diverge on dirty ones."""

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_agree_on_clean_high_reliability_pools(self, seed):
        rng = np.random.default_rng(seed)
        assignment = regular_assignment(120, 5, 10, rng=rng)
        q = np.full(assignment.n_workers, 0.95)
        z = np.where(rng.random(120) < 0.5, 1, -1)
        labels = generate_labels(z, assignment, q, rng=rng)
        em = em_inference(labels, assignment).estimates
        kos = kos_inference(labels, assignment).estimates
        assert float(np.mean(em == kos)) >= 0.95
        assert bitwise_error_rate(z, em) <= 0.05
        assert bitwise_error_rate(z, kos) <= 0.05

    def test_spammer_heavy_pools_diverge(self):
        # With many spammers the two inference families stop being
        # interchangeable: across seeds they must disagree on some tasks
        # (they weight workers differently), while both remain valid ±1
        # estimators.
        disagreements = 0
        for seed in range(8):
            rng = np.random.default_rng(300 + seed)
            assignment = regular_assignment(300, 5, 10, rng=rng)
            q = SpammerHammerPrior(hammer_fraction=0.35).sample(
                assignment.n_workers, rng=rng
            )
            z = np.where(rng.random(300) < 0.5, 1, -1)
            labels = generate_labels(z, assignment, q, rng=rng)
            em = em_inference(labels, assignment).estimates
            kos = kos_inference(labels, assignment).estimates
            assert set(np.unique(em)).issubset({-1, 1})
            assert set(np.unique(kos)).issubset({-1, 1})
            disagreements += int(np.sum(em != kos))
        assert disagreements > 0
