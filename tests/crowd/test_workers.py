"""Tests for the spammer–hammer worker model (§5.1)."""

import numpy as np
import pytest

from repro.crowd.workers import SpammerHammerPrior, Worker, draw_workers, reliabilities


class TestWorker:
    def test_spammer_detection(self):
        assert Worker(worker_id=0, reliability=0.5).is_spammer
        assert not Worker(worker_id=1, reliability=1.0).is_spammer

    def test_reliability_bounds(self):
        with pytest.raises(ValueError):
            Worker(worker_id=0, reliability=1.5)
        with pytest.raises(ValueError):
            Worker(worker_id=0, reliability=-0.1)


class TestPrior:
    def test_mean_reliability(self):
        prior = SpammerHammerPrior(hammer_fraction=0.5)
        assert prior.mean_reliability == pytest.approx(0.75)

    def test_collective_quality(self):
        # μ = E[(2q−1)²] = 0.5·1 + 0.5·0 = 0.5 for the half/half prior.
        prior = SpammerHammerPrior(hammer_fraction=0.5)
        assert prior.collective_quality == pytest.approx(0.5)

    def test_spammer_dominated_prior_rejected(self):
        # E[q] must exceed 1/2 (§5.1).
        with pytest.raises(ValueError, match="spammers overwhelm"):
            SpammerHammerPrior(hammer_fraction=0.0)

    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            SpammerHammerPrior(hammer_fraction=1.5)

    def test_bad_reliability_values(self):
        with pytest.raises(ValueError):
            SpammerHammerPrior(hammer_reliability=1.2)

    def test_sample_values_are_the_two_classes(self):
        prior = SpammerHammerPrior(hammer_fraction=0.6)
        q = prior.sample(500, rng=0)
        assert set(np.unique(q)) <= {0.5, 1.0}

    def test_sample_fraction_statistics(self):
        prior = SpammerHammerPrior(hammer_fraction=0.7)
        q = prior.sample(20_000, rng=1)
        assert np.mean(q == 1.0) == pytest.approx(0.7, abs=0.02)

    def test_sample_count_validation(self):
        with pytest.raises(ValueError):
            SpammerHammerPrior().sample(-1)

    def test_sample_reproducible(self):
        prior = SpammerHammerPrior()
        assert np.array_equal(prior.sample(50, rng=3), prior.sample(50, rng=3))


class TestDrawWorkers:
    def test_count_and_ids(self):
        workers = draw_workers(10, rng=0)
        assert len(workers) == 10
        assert [w.worker_id for w in workers] == list(range(10))

    def test_reliabilities_helper(self):
        workers = draw_workers(5, rng=0)
        q = reliabilities(workers)
        assert q.shape == (5,)
        assert all(q[i] == workers[i].reliability for i in range(5))

    def test_custom_prior(self):
        prior = SpammerHammerPrior(
            hammer_fraction=0.9, spammer_reliability=0.55
        )
        workers = draw_workers(200, prior=prior, rng=1)
        values = {w.reliability for w in workers}
        assert values <= {0.55, 1.0}
