"""Tests for the shared experiment plumbing."""

import numpy as np
import pytest

from repro.core.engine import EngineConfig
from repro.core.window import WindowConfig
from repro.experiments.common import (
    crowdwifi_estimate,
    drive_and_collect,
    percent,
    serpentine_survey_points,
    survey_and_collect,
)
from repro.sim.scenarios import random_deployment, uci_campus


class TestDriveAndCollect:
    def test_sample_count(self):
        scenario = uci_campus()
        trace = drive_and_collect(scenario, n_samples=30, rng=0)
        assert len(trace) == 30

    def test_offset_changes_positions(self):
        scenario = uci_campus()
        a = drive_and_collect(scenario, n_samples=5, rng=0)
        b = drive_and_collect(scenario, n_samples=5, start_offset_m=200.0, rng=0)
        assert a[0].position != b[0].position


class TestSerpentineSurvey:
    def test_count_and_bounds(self):
        scenario = random_deployment(5, rng=0)
        points = serpentine_survey_points(scenario, 50, rng=1)
        assert len(points) == 50
        assert all(scenario.area.contains(p) for p in points)

    def test_serpentine_order_is_local(self):
        """Consecutive survey points stay near each other on average —
        the property the sliding window depends on."""
        scenario = random_deployment(5, rng=0)
        rng = np.random.default_rng(2)
        points = serpentine_survey_points(scenario, 100, rng=rng)
        hops = [
            points[i].distance_to(points[i + 1]) for i in range(len(points) - 1)
        ]
        shuffled = list(points)
        rng.shuffle(shuffled)
        random_hops = [
            shuffled[i].distance_to(shuffled[i + 1])
            for i in range(len(shuffled) - 1)
        ]
        assert np.mean(hops) < 0.6 * np.mean(random_hops)

    def test_validation(self):
        scenario = random_deployment(3, rng=0)
        with pytest.raises(ValueError):
            serpentine_survey_points(scenario, 0)
        with pytest.raises(ValueError):
            serpentine_survey_points(scenario, 5, band_height_m=0.0)


class TestSurveyAndCollect:
    def test_collects_most_points(self):
        scenario = random_deployment(8, rng=3)
        trace = survey_and_collect(scenario, 60, rng=4)
        # Some points may be out of any AP's range; most should hear one.
        assert len(trace) >= 30


class TestCrowdwifiEstimate:
    @pytest.fixture
    def fast_config(self):
        return EngineConfig(
            window=WindowConfig(size=20, step=10),
            readings_per_round=5,
            max_aps_per_round=3,
            communication_radius_m=100.0,
        )

    def test_single_trace_is_plain_online_cs(self, fast_config):
        scenario = uci_campus()
        trace = drive_and_collect(scenario, n_samples=40, rng=5)
        estimates = crowdwifi_estimate(scenario, [trace], fast_config, rng=6)
        assert len(estimates) >= 1

    def test_stream_route_is_bit_identical(self, fast_config):
        scenario = uci_campus()
        trace = drive_and_collect(scenario, n_samples=40, rng=5)
        batch = crowdwifi_estimate(scenario, [trace], fast_config, rng=6)
        streamed = crowdwifi_estimate(
            scenario, [trace], fast_config, rng=6, stream=True
        )
        assert streamed == batch

    def test_multi_trace_fusion(self, fast_config):
        scenario = uci_campus()
        traces = [
            drive_and_collect(
                scenario, n_samples=40, start_offset_m=100.0 * i, rng=10 + i
            )
            for i in range(2)
        ]
        estimates = crowdwifi_estimate(scenario, traces, fast_config, rng=7)
        assert all(scenario.area.expanded(50).contains(p) for p in estimates)


class TestPercent:
    def test_conversion(self):
        assert percent(0.25) == 25.0
