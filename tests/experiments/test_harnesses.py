"""Smoke tests for the figure-reproduction harnesses (small parameters).

The full-scale runs live in ``benchmarks/``; these verify the harnesses
execute end-to-end, produce well-formed tables, and respect their knobs.
"""

import math

import pytest

from repro.experiments.ablations import run_ablation_refine, run_ablation_solvers
from repro.experiments.fig5_trajectory import run_fig5
from repro.experiments.fig6_lattice import run_fig6
from repro.experiments.fig7_crowdsourcing import run_fig7_tasks, run_fig7_workers
from repro.experiments.fig10_vanlan import run_fig10
from repro.experiments.fig11_transfer import run_fig11

pytestmark = pytest.mark.slow


class TestFig5Harness:
    def test_small_run(self):
        table = run_fig5(checkpoints=(40, 80), n_trials=1, seed=1)
        assert len(table) == 2
        assert table.column("n_readings") == [40, 80]
        for row in table:
            assert row["true_aps"] == 8
            assert row["estimated_aps"] >= 1
            assert not math.isnan(row["mean_error_m"])

    def test_trial_validation(self):
        with pytest.raises(ValueError):
            run_fig5(n_trials=0)


class TestFig6Harness:
    def test_single_lattice(self):
        table = run_fig6(
            lattice_lengths=(8.0,), n_readings=80, n_trials=1, seed=2
        )
        assert len(table) == 1
        row = table.rows[0]
        assert row["lattice_m"] == 8.0
        assert row["localization_error_pct"] >= 0.0


class TestFig7Harness:
    def test_workers_sweep_shape(self):
        table = run_fig7_workers(
            l_values=(5, 15), n_tasks=100, n_trials=3, seed=3
        )
        assert table.column("workers_per_task") == [5, 15]
        # log10 errors are ≤ 0 (error rates ≤ 1).
        for name in ("crowdwifi", "majority_vote", "skyhook", "oracle"):
            assert all(v <= 0.0 for v in table.column(name))

    def test_tasks_sweep_shape(self):
        table = run_fig7_tasks(
            gamma_values=(5, 10), n_tasks=100, n_trials=3, seed=4
        )
        assert table.column("tasks_per_worker") == [5, 10]

    def test_indivisible_sweep_rejected(self):
        with pytest.raises(ValueError, match="divisible"):
            run_fig7_workers(l_values=(5,), n_tasks=101, tasks_per_worker=10)


class TestFig10Harness:
    def test_short_run(self):
        result = run_fig10(duration_s=150.0, n_readings=120, seed=5)
        assert result["true_aps"] == 11
        assert result["estimated_aps"] >= 4
        assert len(result["summary"]) == 2
        assert len(result["cdf"]) == 6
        # CDFs are monotone.
        for column in ("BRR_cdf", "AllAP_cdf"):
            values = result["cdf"].column(column)
            assert values == sorted(values)


class TestFig11Harness:
    def test_short_run(self):
        tables = run_fig11(
            duration_s=120.0, error_levels_pct=(0, 200), seed=6
        )
        assert set(tables) == {
            "time_vs_counting",
            "time_vs_localization",
            "throughput_vs_counting",
            "throughput_vs_localization",
        }
        for table in tables.values():
            assert len(table) == 2


class TestAblationHarnesses:
    def test_solver_subset(self):
        table = run_ablation_solvers(
            solvers=("matched", "omp"), n_trials=1, seed=7
        )
        assert len(table) == 2
        for row in table:
            assert row["seconds"] > 0

    def test_refine_rows(self):
        table = run_ablation_refine(n_trials=1, seed=8)
        assert {row["refine"] for row in table} == {True, False}


class TestCityScaleHarness:
    def test_small_run(self):
        from repro.experiments.city_scale import run_city_scale

        table = run_city_scale(fleet_sizes=(2,), n_samples=80, n_trials=1, seed=9)
        assert len(table) == 1
        row = table.rows[0]
        assert row["n_vehicles"] == 2
        assert row["detected_aps"] >= 2
        assert row["seconds"] > 0

    def test_sharded_run_matches_unsharded(self):
        from repro.experiments.city_scale import run_city_scale

        plain = run_city_scale(
            fleet_sizes=(2,), n_samples=80, n_trials=1, seed=9
        ).rows[0]
        sharded = run_city_scale(
            fleet_sizes=(2,), n_samples=80, n_trials=1, seed=9, n_shards=3
        ).rows[0]
        for column in ("n_vehicles", "detected_aps", "map_entries",
                       "matched_error_m"):
            assert sharded[column] == plain[column]

    def test_large_fleets_get_procedural_routes(self):
        from repro.experiments.city_scale import _routes

        routes = _routes(14)
        assert len(routes) == 14
        # Procedural continuation yields distinct loops, deterministically.
        starts = {route.waypoints[0] for route in routes}
        assert len(starts) == len(routes)
        assert [r.waypoints for r in routes] == [
            r.waypoints for r in _routes(14)
        ]

    def test_negative_fleet_rejected(self):
        from repro.experiments.city_scale import _routes

        with pytest.raises(ValueError, match=">= 0"):
            _routes(-1)


class TestFig9Harness:
    def test_small_run(self):
        from repro.experiments.fig9_testbed import run_fig9

        table = run_fig9(checkpoints=(20,), n_trials=1, seed=11)
        stages = {row["stage"] for row in table}
        assert stages == {"single", "crowdsourced", "skyhook"}
        singles = [r for r in table if r["stage"] == "single"]
        assert {r["speed_mph"] for r in singles} == {20.0, 35.0, 45.0}


class TestFig8Helpers:
    def test_count_window_centered_on_truth(self):
        from repro.experiments.fig8_comparison import _count_window

        window = _count_window(10)
        assert 10 in window
        assert min(window) >= 1
        assert window == sorted(window)

    def test_count_window_clamps_low_k(self):
        from repro.experiments.fig8_comparison import _count_window

        assert min(_count_window(2)) == 1

    def test_single_instance_runs(self):
        import numpy as np

        from repro.experiments.fig8_comparison import (
            ALGORITHMS,
            _errors_row,
            _run_instance,
        )

        estimates = _run_instance(4, 50, np.random.default_rng(0))
        row = _errors_row(estimates)
        assert set(row) == set(ALGORITHMS)
        for metrics in row.values():
            assert metrics["counting"] >= 0.0


class TestFig10Validation:
    def test_n_vans_validation(self):
        from repro.experiments.fig10_vanlan import run_fig10

        with pytest.raises(ValueError, match="n_vans"):
            run_fig10(n_vans=0)

    def test_single_van_variant(self):
        from repro.experiments.fig10_vanlan import run_fig10

        result = run_fig10(duration_s=120.0, n_readings=80, n_vans=1, seed=7)
        assert result["estimated_aps"] >= 3
