"""Smoke tests for the robustness-extension harnesses."""

import pytest

from repro.experiments.robustness import (
    run_correlated_shadowing_sweep,
    run_gps_noise_sweep,
)

pytestmark = pytest.mark.slow


class TestGpsNoiseSweep:
    def test_small_run(self):
        table = run_gps_noise_sweep(
            sigmas_m=(0.0, 10.0), n_readings=80, n_trials=1, seed=1
        )
        assert table.column("gps_sigma_m") == [0.0, 10.0]
        for row in table:
            assert row["mean_error_m"] >= 0.0
            assert row["counting_error"] >= 0.0

    def test_heavy_noise_hurts(self):
        table = run_gps_noise_sweep(
            sigmas_m=(0.0, 25.0), n_readings=120, n_trials=1, seed=2
        )
        clean, noisy = table.rows
        # 25 m GPS error must degrade at least one of the two metrics
        # noticeably.
        assert (
            noisy["mean_error_m"] > clean["mean_error_m"] + 0.5
            or noisy["counting_error"] > clean["counting_error"]
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            run_gps_noise_sweep(n_trials=0)


class TestCorrelatedShadowingSweep:
    def test_small_run(self):
        table = run_correlated_shadowing_sweep(
            sigmas_db=(0.5,), n_readings=60, n_trials=1, seed=3
        )
        assert len(table) == 1
        assert table.rows[0]["mean_error_m"] >= 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            run_correlated_shadowing_sweep(n_trials=0)
