"""Tests for grid formation (§4.3.1)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geo.grid import Grid, grid_from_reference_points
from repro.geo.points import BoundingBox, Point


@pytest.fixture
def grid():
    return Grid(box=BoundingBox(0, 0, 100, 60), lattice_length=10.0)


class TestConstruction:
    def test_dimensions(self, grid):
        assert grid.n_cols == 10
        assert grid.n_rows == 6
        assert grid.n_points == 60

    def test_non_divisible_extent_rounds_up(self):
        g = Grid(box=BoundingBox(0, 0, 95, 55), lattice_length=10.0)
        assert g.n_cols == 10 and g.n_rows == 6

    def test_tiny_box_has_one_cell(self):
        g = Grid(box=BoundingBox(0, 0, 1, 1), lattice_length=10.0)
        assert g.n_points == 1

    def test_invalid_lattice(self):
        with pytest.raises(ValueError):
            Grid(box=BoundingBox(0, 0, 10, 10), lattice_length=0.0)

    def test_diameter(self, grid):
        assert grid.diameter == pytest.approx(10.0 * np.sqrt(2))


class TestIndexing:
    def test_rowcol_roundtrip(self, grid):
        for index in range(grid.n_points):
            row, col = grid.index_to_rowcol(index)
            assert grid.rowcol_to_index(row, col) == index

    def test_out_of_range_index(self, grid):
        with pytest.raises(IndexError):
            grid.index_to_rowcol(60)
        with pytest.raises(IndexError):
            grid.index_to_rowcol(-1)

    def test_out_of_range_rowcol(self, grid):
        with pytest.raises(IndexError):
            grid.rowcol_to_index(6, 0)

    def test_point_at_cell_centers(self, grid):
        assert grid.point_at(0) == Point(5.0, 5.0)
        assert grid.point_at(11) == Point(15.0, 15.0)

    def test_coordinates_match_point_at(self, grid):
        coords = grid.coordinates()
        assert coords.shape == (60, 2)
        for index in (0, 13, 59):
            p = grid.point_at(index)
            assert coords[index, 0] == pytest.approx(p.x)
            assert coords[index, 1] == pytest.approx(p.y)

    def test_all_points_length(self, grid):
        assert len(grid.all_points()) == 60


class TestSnap:
    def test_snap_center_returns_same_index(self, grid):
        for index in (0, 7, 42, 59):
            assert grid.snap(grid.point_at(index)) == index

    def test_snap_clamps_outside_points(self, grid):
        assert grid.snap(Point(-50, -50)) == 0
        assert grid.snap(Point(500, 500)) == grid.n_points - 1

    def test_snap_distance_bounded_by_half_diameter(self, grid):
        rng = np.random.default_rng(0)
        for _ in range(50):
            p = Point(rng.uniform(0, 100), rng.uniform(0, 60))
            assert grid.snap_distance(p) <= grid.diameter / 2 + 1e-9

    @given(st.floats(0, 100), st.floats(0, 60))
    def test_snap_is_nearest_cell(self, x, y):
        g = Grid(box=BoundingBox(0, 0, 100, 60), lattice_length=10.0)
        p = Point(x, y)
        snapped = g.snap(p)
        best = min(
            range(g.n_points), key=lambda i: p.distance_to(g.point_at(i))
        )
        assert p.distance_to(g.point_at(snapped)) <= (
            p.distance_to(g.point_at(best)) + 1e-9
        )


class TestNeighbors:
    def test_interior_has_eight(self, grid):
        index = grid.rowcol_to_index(3, 5)
        assert len(grid.neighbors(index)) == 8

    def test_corner_has_three(self, grid):
        assert len(grid.neighbors(0)) == 3

    def test_radius_two(self, grid):
        index = grid.rowcol_to_index(3, 5)
        assert len(grid.neighbors(index, radius=2)) == 24

    def test_radius_zero_empty(self, grid):
        assert grid.neighbors(10, radius=0) == []

    def test_negative_radius_rejected(self, grid):
        with pytest.raises(ValueError):
            grid.neighbors(0, radius=-1)

    def test_does_not_include_self(self, grid):
        assert 10 not in grid.neighbors(10)


class TestGridFormation:
    def test_padding_by_communication_radius(self):
        rps = [Point(10, 10), Point(50, 30)]
        grid = grid_from_reference_points(rps, 100.0, 8.0)
        assert grid.box.min_x == pytest.approx(-90.0)
        assert grid.box.max_x == pytest.approx(150.0)
        assert grid.box.min_y == pytest.approx(-90.0)
        assert grid.box.max_y == pytest.approx(130.0)

    def test_single_rp_gives_square(self):
        grid = grid_from_reference_points([Point(0, 0)], 50.0, 10.0)
        assert grid.box.width == pytest.approx(100.0)
        assert grid.box.height == pytest.approx(100.0)

    def test_empty_rps_rejected(self):
        with pytest.raises(ValueError):
            grid_from_reference_points([], 100.0, 8.0)

    def test_nonpositive_radius_rejected(self):
        with pytest.raises(ValueError):
            grid_from_reference_points([Point(0, 0)], 0.0, 8.0)

    def test_every_rp_within_grid(self):
        rps = [Point(3, 99), Point(-20, 5), Point(40, 40)]
        grid = grid_from_reference_points(rps, 30.0, 5.0)
        assert all(grid.contains(p) for p in rps)
