"""Tests for points, bounding boxes and centroids."""


import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geo.points import (
    BoundingBox,
    Point,
    array_as_points,
    centroid,
    nearest_point_index,
    pairwise_distances,
    points_as_array,
)

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestPoint:
    def test_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_distance_symmetric(self):
        a, b = Point(1, 2), Point(-3, 7)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    def test_translated(self):
        assert Point(1, 1).translated(2, -1) == Point(3, 0)

    def test_as_tuple_and_array(self):
        p = Point(2.5, -1.0)
        assert p.as_tuple() == (2.5, -1.0)
        assert np.array_equal(p.as_array(), np.array([2.5, -1.0]))

    def test_from_sequence(self):
        assert Point.from_sequence([1, 2]) == Point(1.0, 2.0)

    def test_from_sequence_wrong_length(self):
        with pytest.raises(ValueError):
            Point.from_sequence([1, 2, 3])

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Point(0, 0).x = 1

    @given(finite, finite)
    def test_distance_to_self_is_zero(self, x, y):
        assert Point(x, y).distance_to(Point(x, y)) == 0.0

    @given(finite, finite, finite, finite)
    def test_triangle_inequality(self, ax, ay, bx, by):
        a, b, origin = Point(ax, ay), Point(bx, by), Point(0, 0)
        assert a.distance_to(b) <= (
            a.distance_to(origin) + origin.distance_to(b) + 1e-6
        )


class TestBoundingBox:
    def test_dimensions(self):
        box = BoundingBox(0, 0, 4, 3)
        assert box.width == 4
        assert box.height == 3
        assert box.area == 12
        assert box.center == Point(2.0, 1.5)

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            BoundingBox(1, 0, 0, 1)

    def test_zero_area_allowed(self):
        box = BoundingBox(1, 1, 1, 1)
        assert box.area == 0

    def test_contains(self):
        box = BoundingBox(0, 0, 10, 10)
        assert box.contains(Point(5, 5))
        assert box.contains(Point(0, 0))
        assert not box.contains(Point(10.1, 5))

    def test_contains_with_tolerance(self):
        box = BoundingBox(0, 0, 10, 10)
        assert box.contains(Point(10.05, 5), tolerance=0.1)

    def test_expanded(self):
        box = BoundingBox(0, 0, 10, 10).expanded(5)
        assert box.min_x == -5 and box.max_y == 15

    def test_expanded_negative_inverting_rejected(self):
        with pytest.raises(ValueError):
            BoundingBox(0, 0, 4, 4).expanded(-3)

    def test_around(self):
        box = BoundingBox.around([Point(1, 5), Point(-2, 0), Point(4, 2)])
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (-2, 0, 4, 5)

    def test_around_empty_raises(self):
        with pytest.raises(ValueError):
            BoundingBox.around([])

    @given(st.lists(st.tuples(finite, finite), min_size=1, max_size=20))
    def test_around_contains_all_points(self, coords):
        points = [Point(x, y) for x, y in coords]
        box = BoundingBox.around(points)
        assert all(box.contains(p, tolerance=1e-9) for p in points)


class TestCentroid:
    def test_uniform(self):
        c = centroid([Point(0, 0), Point(2, 0), Point(1, 3)])
        assert c == Point(1.0, 1.0)

    def test_weighted_pulls_toward_heavy_point(self):
        c = centroid([Point(0, 0), Point(10, 0)], [1.0, 3.0])
        assert c.x == pytest.approx(7.5)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            centroid([])

    def test_weight_length_mismatch(self):
        with pytest.raises(ValueError):
            centroid([Point(0, 0)], [1.0, 2.0])

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            centroid([Point(0, 0), Point(1, 1)], [1.0, -0.5])

    def test_zero_total_weight_rejected(self):
        with pytest.raises(ValueError):
            centroid([Point(0, 0)], [0.0])

    @given(st.lists(st.tuples(finite, finite), min_size=1, max_size=15))
    def test_centroid_inside_bounding_box(self, coords):
        points = [Point(x, y) for x, y in coords]
        c = centroid(points)
        box = BoundingBox.around(points)
        assert box.contains(c, tolerance=1e-6)

    @given(st.lists(st.tuples(finite, finite), min_size=1, max_size=10))
    def test_translation_equivariance(self, coords):
        points = [Point(x, y) for x, y in coords]
        c0 = centroid(points)
        shifted = [p.translated(10.0, -3.0) for p in points]
        c1 = centroid(shifted)
        assert c1.x == pytest.approx(c0.x + 10.0, abs=1e-6)
        assert c1.y == pytest.approx(c0.y - 3.0, abs=1e-6)


class TestArrayHelpers:
    def test_pairwise_distances_shape_and_symmetry(self):
        points = [Point(0, 0), Point(3, 4), Point(-1, 1)]
        d = pairwise_distances(points)
        assert d.shape == (3, 3)
        assert np.allclose(d, d.T)
        assert np.allclose(np.diag(d), 0.0)
        assert d[0, 1] == pytest.approx(5.0)

    def test_pairwise_distances_empty(self):
        assert pairwise_distances([]).shape == (0, 0)

    def test_nearest_point_index(self):
        candidates = [Point(0, 0), Point(5, 5), Point(2, 2)]
        assert nearest_point_index(Point(1.6, 1.6), candidates) == 2

    def test_nearest_point_empty_raises(self):
        with pytest.raises(ValueError):
            nearest_point_index(Point(0, 0), [])

    def test_points_array_roundtrip(self):
        points = [Point(1, 2), Point(3, 4)]
        assert array_as_points(points_as_array(points)) == points

    def test_array_as_points_bad_shape(self):
        with pytest.raises(ValueError):
            array_as_points(np.zeros((2, 3)))
