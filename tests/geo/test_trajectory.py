"""Tests for arc-length trajectories."""

import numpy as np
import pytest

from repro.geo.points import Point
from repro.geo.trajectory import Trajectory


@pytest.fixture
def open_path():
    return Trajectory([Point(0, 0), Point(10, 0), Point(10, 10)])


@pytest.fixture
def loop():
    return Trajectory.rectangle(0, 0, 10, 10)


class TestConstruction:
    def test_length_open(self, open_path):
        assert open_path.length == pytest.approx(20.0)

    def test_length_closed(self, loop):
        assert loop.length == pytest.approx(40.0)

    def test_too_few_waypoints(self):
        with pytest.raises(ValueError):
            Trajectory([Point(0, 0)])

    def test_zero_length_segment_rejected(self):
        with pytest.raises(ValueError):
            Trajectory([Point(0, 0), Point(0, 0), Point(1, 1)])

    def test_closed_with_repeated_endpoint_collapses(self):
        t = Trajectory(
            [Point(0, 0), Point(10, 0), Point(10, 10), Point(0, 0)], closed=True
        )
        assert len(t.waypoints) == 3
        assert t.length == pytest.approx(10 + np.hypot(10, 10) + 10)

    def test_rectangle_degenerate(self):
        with pytest.raises(ValueError):
            Trajectory.rectangle(0, 0, 0, 10)


class TestPositionAt:
    def test_start_and_end(self, open_path):
        assert open_path.position_at(0) == Point(0, 0)
        assert open_path.position_at(20) == Point(10, 10)

    def test_midpoint_of_segment(self, open_path):
        assert open_path.position_at(5) == Point(5, 0)
        assert open_path.position_at(15) == Point(10, 5)

    def test_open_clamps(self, open_path):
        assert open_path.position_at(-5) == Point(0, 0)
        assert open_path.position_at(100) == Point(10, 10)

    def test_closed_wraps(self, loop):
        p_wrapped = loop.position_at(45)
        p_direct = loop.position_at(5)
        assert p_wrapped.distance_to(p_direct) < 1e-9

    def test_negative_distance_on_loop_wraps_backwards(self, loop):
        p = loop.position_at(-5)
        assert p.distance_to(loop.position_at(35)) < 1e-9

    def test_arc_length_consistency(self, loop):
        # Distance along the path between two nearby samples equals the
        # straight-line distance when both lie on the same segment.
        a = loop.position_at(2.0)
        b = loop.position_at(3.5)
        assert a.distance_to(b) == pytest.approx(1.5)


class TestHeading:
    def test_headings_of_rectangle(self, loop):
        assert loop.heading_at(5) == pytest.approx(0.0)
        assert loop.heading_at(15) == pytest.approx(np.pi / 2)
        assert abs(loop.heading_at(25)) == pytest.approx(np.pi)
        assert loop.heading_at(35) == pytest.approx(-np.pi / 2)


class TestSampling:
    def test_count_validation(self, loop):
        with pytest.raises(ValueError):
            loop.sample_uniform(0)

    def test_single_sample_is_start(self, loop):
        assert loop.sample_uniform(1) == [Point(0, 0)]

    def test_closed_samples_do_not_repeat_start(self, loop):
        samples = loop.sample_uniform(8)
        assert len(samples) == 8
        assert samples[0] == Point(0, 0)
        assert all(
            samples[0].distance_to(s) > 1e-9 for s in samples[1:]
        )

    def test_open_samples_include_endpoints(self, open_path):
        samples = open_path.sample_uniform(5)
        assert samples[0] == Point(0, 0)
        assert samples[-1] == Point(10, 10)

    def test_uniform_spacing_on_loop(self, loop):
        samples = loop.sample_uniform(4)
        # Corners of the rectangle
        assert samples == [
            Point(0, 0),
            Point(10, 0),
            Point(10, 10),
            Point(0, 10),
        ]
