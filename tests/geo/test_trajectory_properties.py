"""Property-based tests for trajectories (hypothesis)."""

from hypothesis import assume, given, settings, strategies as st

from repro.geo.points import Point
from repro.geo.trajectory import Trajectory

coords = st.tuples(
    st.floats(min_value=-500, max_value=500),
    st.floats(min_value=-500, max_value=500),
)


def distinct_waypoints(min_size):
    return st.lists(coords, min_size=min_size, max_size=8).filter(
        lambda pts: all(
            abs(a[0] - b[0]) + abs(a[1] - b[1]) > 1e-6
            for a, b in zip(pts, pts[1:])
        )
    )


class TestTrajectoryProperties:
    @given(distinct_waypoints(2))
    @settings(max_examples=40, deadline=None)
    def test_length_at_least_endpoint_distance(self, raw):
        points = [Point(x, y) for x, y in raw]
        trajectory = Trajectory(points)
        direct = points[0].distance_to(points[-1])
        assert trajectory.length >= direct - 1e-6

    @given(distinct_waypoints(2), st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=40, deadline=None)
    def test_position_lies_within_waypoint_bbox(self, raw, fraction):
        points = [Point(x, y) for x, y in raw]
        trajectory = Trajectory(points)
        position = trajectory.position_at(fraction * trajectory.length)
        xs = [p.x for p in points]
        ys = [p.y for p in points]
        assert min(xs) - 1e-6 <= position.x <= max(xs) + 1e-6
        assert min(ys) - 1e-6 <= position.y <= max(ys) + 1e-6

    @given(
        distinct_waypoints(2),
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_arc_distance_bounds_chord(self, raw, f1, f2):
        """Straight-line distance between two path points never exceeds
        their arc-length separation."""
        points = [Point(x, y) for x, y in raw]
        trajectory = Trajectory(points)
        d1, d2 = sorted((f1 * trajectory.length, f2 * trajectory.length))
        a = trajectory.position_at(d1)
        b = trajectory.position_at(d2)
        assert a.distance_to(b) <= (d2 - d1) + 1e-6

    @given(distinct_waypoints(3), st.integers(min_value=2, max_value=12))
    @settings(max_examples=30, deadline=None)
    def test_uniform_samples_monotone_arc(self, raw, count):
        points = [Point(x, y) for x, y in raw]
        trajectory = Trajectory(points)
        samples = trajectory.sample_uniform(count)
        assert len(samples) == count
        # Endpoints of an open path included.
        assert samples[0] == trajectory.position_at(0.0)
        assert samples[-1].distance_to(
            trajectory.position_at(trajectory.length)
        ) < 1e-6

    @given(distinct_waypoints(3))
    @settings(max_examples=30, deadline=None)
    def test_closed_loop_wraps_continuously(self, raw):
        points = [Point(x, y) for x, y in raw]
        assume(points[0].distance_to(points[-1]) > 1e-6)
        trajectory = Trajectory(points, closed=True)
        eps = min(1.0, trajectory.length / 100)
        before_wrap = trajectory.position_at(trajectory.length - eps)
        after_wrap = trajectory.position_at(trajectory.length + eps)
        assert before_wrap.distance_to(after_wrap) <= 2 * eps + 1e-6
