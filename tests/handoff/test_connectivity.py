"""Tests for connectivity/session analysis (Fig. 10)."""

import pytest

from repro.handoff.connectivity import (
    analyze_sessions,
    interruption_count,
    session_length_cdf,
    sessions_from_timeline,
)


class TestSessions:
    def test_basic_segmentation(self):
        timeline = [0.9, 0.8, 0.2, 0.9, 0.9, 0.9, 0.1, 0.7]
        assert sessions_from_timeline(timeline) == [2, 3, 1]

    def test_all_connected(self):
        assert sessions_from_timeline([0.9] * 5) == [5]

    def test_all_disconnected(self):
        assert sessions_from_timeline([0.1] * 5) == []

    def test_threshold_is_exclusive(self):
        # Exactly 50% reception is NOT adequate (paper: "more than 50%").
        assert sessions_from_timeline([0.5, 0.5]) == []

    def test_custom_threshold(self):
        assert sessions_from_timeline([0.4, 0.4], threshold=0.3) == [2]

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            sessions_from_timeline([0.5], threshold=1.5)

    def test_empty_timeline(self):
        assert sessions_from_timeline([]) == []


class TestInterruptions:
    def test_counts_downward_transitions(self):
        timeline = [0.9, 0.2, 0.9, 0.2, 0.9]
        assert interruption_count(timeline) == 2

    def test_trailing_session_not_interrupted(self):
        assert interruption_count([0.9, 0.9]) == 0

    def test_starting_disconnected(self):
        assert interruption_count([0.1, 0.9, 0.1]) == 1


class TestAnalyzeSessions:
    def test_stats_fields(self):
        timeline = [0.9, 0.9, 0.1, 0.9, 0.9, 0.9]
        stats = analyze_sessions(timeline)
        assert stats.sessions == (2, 3)
        assert stats.total_connected_s == 5
        assert stats.interruptions == 1
        assert stats.median_session_s == 2.5

    def test_empty(self):
        stats = analyze_sessions([0.0, 0.0])
        assert stats.sessions == ()
        assert stats.median_session_s == 0.0
        assert stats.time_fraction_in_sessions_longer_than(1) == 0.0

    def test_time_fraction(self):
        stats = analyze_sessions([0.9] * 10 + [0.1] + [0.9] * 2)
        # 12 connected seconds total; 10 in a session longer than 5.
        assert stats.time_fraction_in_sessions_longer_than(5) == pytest.approx(
            10 / 12
        )


class TestSessionCdf:
    def test_monotone_and_bounded(self):
        sessions = [1, 5, 10, 30, 60]
        lengths = [0, 1, 5, 10, 30, 60, 100]
        cdf = session_length_cdf(sessions, lengths)
        assert all(0.0 <= v <= 1.0 for v in cdf)
        assert cdf == sorted(cdf)
        assert cdf[-1] == 1.0

    def test_time_weighted(self):
        # One 1 s session and one 9 s session: sessions ≤ 1 s hold 10 %
        # of connected time.
        cdf = session_length_cdf([1, 9], [1])
        assert cdf[0] == pytest.approx(0.1)

    def test_empty_sessions(self):
        assert session_length_cdf([], [1, 2]) == [0.0, 0.0]
