"""Tests for controlled AP-map corruption (Fig. 11 sweeps)."""

import numpy as np
import pytest

from repro.geo.points import BoundingBox, Point
from repro.handoff.errors import corrupt_ap_map
from repro.metrics.errors import counting_error, localization_error


@pytest.fixture
def truth():
    return [Point(float(20 * i), 0.0) for i in range(10)]


class TestCorruptApMap:
    def test_no_error_is_identity(self, truth):
        assert corrupt_ap_map(truth, rng=0) == truth

    def test_counting_error_splits_drops_and_phantoms(self, truth):
        corrupted = corrupt_ap_map(truth, counting_error=0.4, rng=1)
        survivors = [p for p in corrupted if p in truth]
        phantoms = [p for p in corrupted if p not in truth]
        # 40 % of 10 APs: 2 dropped (half the mass), 2 phantoms added.
        assert len(survivors) == 8
        assert len(phantoms) == 2

    def test_total_error_mass_matches_request(self, truth):
        for error in (0.2, 0.6, 1.0, 2.0, 3.0):
            corrupted = corrupt_ap_map(truth, counting_error=error, rng=2)
            survivors = sum(1 for p in corrupted if p in truth)
            phantoms = len(corrupted) - survivors
            dropped = len(truth) - survivors
            realized = (dropped + phantoms) / len(truth)
            assert realized == pytest.approx(error, abs=0.1)

    def test_drop_fraction_capped(self, truth):
        corrupted = corrupt_ap_map(truth, counting_error=3.0, rng=3)
        survivors = sum(1 for p in corrupted if p in truth)
        # At most 90 % dropped — at least one AP survives.
        assert survivors >= 1

    def test_phantoms_inside_area(self, truth):
        box = BoundingBox(-10, -10, 300, 10)
        corrupted = corrupt_ap_map(
            truth, counting_error=2.0, area=box, rng=4
        )
        phantoms = [p for p in corrupted if p not in truth]
        assert phantoms
        assert all(box.contains(p) for p in phantoms)

    def test_localization_error_displacement(self, truth):
        corrupted = corrupt_ap_map(
            truth, localization_error=1.5, lattice_length_m=10.0, rng=5
        )
        assert len(corrupted) == len(truth)
        for original, moved in zip(truth, corrupted):
            assert original.distance_to(moved) == pytest.approx(15.0)

    def test_localization_error_metric_matches(self, truth):
        corrupted = corrupt_ap_map(
            truth, localization_error=0.4, lattice_length_m=10.0, rng=6
        )
        # Displacements are 4 m each against a 10 m lattice → error 0.4
        # (optimal matching keeps original pairs at this displacement).
        assert localization_error(truth, corrupted, 10.0) == pytest.approx(
            0.4, abs=0.05
        )

    def test_empty_input(self):
        assert corrupt_ap_map([], counting_error=0.5, rng=0) == []

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"counting_error": -0.1},
            {"localization_error": -0.1},
            {"lattice_length_m": 0.0},
        ],
    )
    def test_validation(self, truth, kwargs):
        with pytest.raises(ValueError):
            corrupt_ap_map(truth, **kwargs)

    def test_reproducible(self, truth):
        a = corrupt_ap_map(truth, counting_error=0.5, localization_error=0.5, rng=9)
        b = corrupt_ap_map(truth, counting_error=0.5, localization_error=0.5, rng=9)
        assert a == b

    def test_random_displacement_directions(self, truth):
        corrupted = corrupt_ap_map(
            truth, localization_error=1.0, lattice_length_m=10.0, rng=10
        )
        angles = {
            round(np.arctan2(m.y - o.y, m.x - o.x), 3)
            for o, m in zip(truth, corrupted)
        }
        assert len(angles) > 1
