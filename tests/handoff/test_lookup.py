"""Tests for identity-aware AP lookup from beacon traces."""

import numpy as np
import pytest

from repro.geo.points import Point
from repro.handoff.lookup import identity_lookup, locate_ap
from repro.radio.pathloss import PathLossModel
from repro.radio.rss import RssMeasurement


@pytest.fixture
def channel():
    return PathLossModel(shadowing_sigma_db=0.5)


def readings_for(channel, ap, positions, rng, ap_id="ap"):
    out = []
    for index, position in enumerate(positions):
        rss = float(channel.sample_rss_dbm(ap.distance_to(position), rng=rng))
        out.append(
            RssMeasurement(
                rss_dbm=rss,
                position=position,
                timestamp=float(index),
                source_ap=ap_id,
            )
        )
    return out


class TestLocateAp:
    def test_surrounding_readings_pin_location(self, channel):
        rng = np.random.default_rng(0)
        ap = Point(50, 50)
        positions = [Point(30, 30), Point(70, 30), Point(70, 70), Point(30, 70)]
        found = locate_ap(channel, readings_for(channel, ap, positions, rng))
        assert found.distance_to(ap) < 3.0

    def test_collinear_readings_resolved_by_multistart(self, channel):
        # All readings on the line y=0; the AP at y=30 has a mirror image
        # at y=-30.  The multi-start fit must land on the correct side
        # (possible noiseless; with noise either side can genuinely win).
        quiet = PathLossModel(shadowing_sigma_db=0.0)
        ap = Point(50, 30)
        positions = [Point(float(x), 0.0) for x in range(10, 95, 10)]
        found = locate_ap(quiet, readings_for(quiet, ap, positions, None))
        assert found.distance_to(ap) < 3.0

    def test_empty_rejected(self, channel):
        with pytest.raises(ValueError):
            locate_ap(channel, [])

    def test_single_reading_is_tolerated(self, channel):
        reading = readings_for(
            channel, Point(10, 10), [Point(0, 0)], np.random.default_rng(1)
        )
        found = locate_ap(channel, reading)
        assert np.isfinite(found.x) and np.isfinite(found.y)


class TestIdentityLookup:
    def test_groups_by_bssid(self, channel):
        rng = np.random.default_rng(2)
        ap_a, ap_b = Point(20, 20), Point(120, 20)
        trace = readings_for(
            channel, ap_a,
            [Point(10, 10), Point(30, 10), Point(20, 35), Point(5, 25)],
            rng, ap_id="a",
        ) + readings_for(
            channel, ap_b,
            [Point(110, 10), Point(130, 10), Point(120, 35), Point(105, 25)],
            rng, ap_id="b",
        )
        found = identity_lookup(channel, trace)
        assert set(found) == {"a", "b"}
        assert found["a"].distance_to(ap_a) < 5.0
        assert found["b"].distance_to(ap_b) < 5.0

    def test_min_readings_filters_thin_groups(self, channel):
        rng = np.random.default_rng(3)
        trace = readings_for(
            channel, Point(0, 0), [Point(5, 5), Point(10, 0)], rng, ap_id="thin"
        )
        assert identity_lookup(channel, trace, min_readings=4) == {}
        assert "thin" in identity_lookup(channel, trace, min_readings=2)

    def test_unidentified_readings_ignored(self, channel):
        anonymous = RssMeasurement(
            rss_dbm=-50.0, position=Point(0, 0), timestamp=0.0
        )
        assert identity_lookup(channel, [anonymous]) == {}

    def test_validation(self, channel):
        with pytest.raises(ValueError):
            identity_lookup(channel, [], min_readings=0)
