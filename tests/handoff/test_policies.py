"""Tests for the BRR and AllAP handoff policies (§6.3)."""

import pytest

from repro.geo.points import Point
from repro.handoff.policies import AllApPolicy, BrrPolicy, SlotObservation


@pytest.fixture
def ap_positions():
    return {"ap-1": Point(0, 0), "ap-2": Point(50, 0)}


def obs(second, van, reception):
    return SlotObservation(second=second, van_position=van, reception=reception)


class TestCandidates:
    def test_accurate_map_resolves_nearby_aps(self, ap_positions):
        policy = AllApPolicy(
            estimated_map=[Point(0, 0), Point(50, 0)],
            ap_positions=ap_positions,
            vicinity_radius_m=60.0,
            map_match_radius_m=20.0,
        )
        resolved = {c.real_ap_id for c in policy.candidates(Point(25, 0))}
        assert resolved == {"ap-1", "ap-2"}

    def test_missing_entry_means_unusable_ap(self, ap_positions):
        policy = AllApPolicy(
            estimated_map=[Point(0, 0)],  # ap-2 missing from the map
            ap_positions=ap_positions,
            vicinity_radius_m=60.0,
            map_match_radius_m=20.0,
        )
        resolved = {c.real_ap_id for c in policy.candidates(Point(25, 0))}
        assert resolved == {"ap-1"}

    def test_misplaced_entry_becomes_phantom(self, ap_positions):
        policy = AllApPolicy(
            estimated_map=[Point(0, 0), Point(50, 45)],  # ap-2 45 m off
            ap_positions=ap_positions,
            vicinity_radius_m=60.0,
            map_match_radius_m=20.0,
        )
        candidates = policy.candidates(Point(25, 0))
        by_index = {c.map_index: c.real_ap_id for c in candidates}
        assert by_index[0] == "ap-1"
        assert by_index[1] is None  # phantom: resolves to nothing

    def test_out_of_vicinity_entry_excluded(self, ap_positions):
        policy = AllApPolicy(
            estimated_map=[Point(0, 0), Point(50, 0)],
            ap_positions=ap_positions,
            vicinity_radius_m=30.0,
            map_match_radius_m=20.0,
        )
        candidates = policy.candidates(Point(0, 5))
        assert [c.real_ap_id for c in candidates] == ["ap-1"]

    def test_no_position_no_candidates(self, ap_positions):
        policy = AllApPolicy(
            estimated_map=[Point(0, 0)],
            ap_positions=ap_positions,
        )
        assert policy.candidates(None) == []

    def test_validation(self, ap_positions):
        with pytest.raises(ValueError):
            AllApPolicy([], ap_positions, vicinity_radius_m=0.0)
        with pytest.raises(ValueError):
            AllApPolicy([], ap_positions, map_match_radius_m=0.0)


class TestBrrPolicy:
    def test_tracks_best_reception_ratio(self, ap_positions):
        policy = BrrPolicy(
            estimated_map=[Point(0, 0), Point(50, 0)],
            ap_positions=ap_positions,
            vicinity_radius_m=100.0,
            map_match_radius_m=20.0,
        )
        van = Point(25, 0)
        for second in range(6):
            ratio = policy.slot_success_ratio(
                obs(second, van, {"ap-1": (2, 10), "ap-2": (9, 10)})
            )
        # After probing both, the policy settles on the better entry.
        assert policy.associated == 1  # map index of ap-2's entry
        assert ratio == pytest.approx(0.9)

    def test_hard_handoff_uses_only_associated(self, ap_positions):
        policy = BrrPolicy(
            estimated_map=[Point(0, 0), Point(50, 0)],
            ap_positions=ap_positions,
            vicinity_radius_m=100.0,
            map_match_radius_m=20.0,
        )
        van = Point(25, 0)
        for second in range(6):
            policy.slot_success_ratio(
                obs(second, van, {"ap-1": (9, 10), "ap-2": (2, 10)})
            )
        assert policy.associated == 0
        # ap-1 goes silent: the associated entry's 0 is the slot result,
        # ap-2's receptions do not count (hard handoff).
        ratio = policy.slot_success_ratio(
            obs(6, van, {"ap-1": (0, 10), "ap-2": (10, 10)})
        )
        assert ratio == 0.0

    def test_phantom_entries_waste_slots(self, ap_positions):
        """A phantom map entry is probed optimistically and yields zero."""
        policy = BrrPolicy(
            estimated_map=[Point(25, 20)],  # no real AP within 20 m
            ap_positions=ap_positions,
            vicinity_radius_m=100.0,
            map_match_radius_m=15.0,
        )
        ratio = policy.slot_success_ratio(
            obs(0, Point(25, 0), {"ap-1": (10, 10), "ap-2": (10, 10)})
        )
        assert ratio == 0.0  # associated to the phantom

    def test_no_candidates_zero(self, ap_positions):
        policy = BrrPolicy(estimated_map=[], ap_positions=ap_positions)
        assert policy.slot_success_ratio(obs(0, Point(25, 0), {})) == 0.0
        assert policy.associated is None

    def test_alpha_validation(self, ap_positions):
        with pytest.raises(ValueError):
            BrrPolicy([], ap_positions, alpha=0.0)


class TestAllApPolicy:
    def test_union_success_probability(self, ap_positions):
        policy = AllApPolicy(
            estimated_map=[Point(0, 0), Point(50, 0)],
            ap_positions=ap_positions,
            vicinity_radius_m=100.0,
            map_match_radius_m=20.0,
        )
        ratio = policy.slot_success_ratio(
            obs(0, Point(25, 0), {"ap-1": (5, 10), "ap-2": (5, 10)})
        )
        assert ratio == pytest.approx(0.75)  # 1 − 0.5·0.5

    def test_at_least_as_good_as_best_single(self, ap_positions):
        policy = AllApPolicy(
            estimated_map=[Point(0, 0), Point(50, 0)],
            ap_positions=ap_positions,
            vicinity_radius_m=100.0,
            map_match_radius_m=20.0,
        )
        reception = {"ap-1": (3, 10), "ap-2": (8, 10)}
        ratio = policy.slot_success_ratio(obs(0, Point(25, 0), reception))
        assert ratio >= 0.8

    def test_phantoms_are_harmless_to_allap(self, ap_positions):
        accurate = AllApPolicy(
            estimated_map=[Point(0, 0), Point(50, 0)],
            ap_positions=ap_positions,
            vicinity_radius_m=100.0,
            map_match_radius_m=20.0,
        )
        with_phantom = AllApPolicy(
            estimated_map=[Point(0, 0), Point(50, 0), Point(25, 80)],
            ap_positions=ap_positions,
            vicinity_radius_m=100.0,
            map_match_radius_m=20.0,
        )
        reception = {"ap-1": (5, 10), "ap-2": (5, 10)}
        assert with_phantom.slot_success_ratio(
            obs(0, Point(25, 0), reception)
        ) == pytest.approx(
            accurate.slot_success_ratio(obs(0, Point(25, 0), reception))
        )

    def test_two_entries_one_real_ap_not_double_counted(self, ap_positions):
        policy = AllApPolicy(
            estimated_map=[Point(0, 0), Point(5, 0)],  # both resolve to ap-1
            ap_positions=ap_positions,
            vicinity_radius_m=100.0,
            map_match_radius_m=20.0,
        )
        ratio = policy.slot_success_ratio(
            obs(0, Point(10, 0), {"ap-1": (5, 10)})
        )
        assert ratio == pytest.approx(0.5)

    def test_silent_candidates_zero(self, ap_positions):
        policy = AllApPolicy(
            estimated_map=[Point(0, 0)],
            ap_positions=ap_positions,
            vicinity_radius_m=100.0,
            map_match_radius_m=20.0,
        )
        assert policy.slot_success_ratio(obs(0, Point(25, 0), {})) == 0.0
