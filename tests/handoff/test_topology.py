"""Tests for the WiFi topology-analysis application."""

import numpy as np
import pytest

from repro.geo.points import BoundingBox, Point
from repro.geo.trajectory import Trajectory
from repro.handoff.topology import (
    NON_OVERLAPPING_CHANNELS,
    analyze_interference,
    density_grid,
    density_per_km2,
    interference_graph,
    route_coverage,
)


class TestDensity:
    def test_density_per_km2(self):
        box = BoundingBox(0, 0, 1000, 1000)  # 1 km²
        aps = [Point(100, 100), Point(500, 500), Point(2000, 2000)]
        assert density_per_km2(aps, box) == pytest.approx(2.0)

    def test_zero_area_rejected(self):
        with pytest.raises(ValueError):
            density_per_km2([], BoundingBox(0, 0, 0, 10))

    def test_density_grid_counts(self):
        box = BoundingBox(0, 0, 200, 200)
        aps = [Point(50, 50), Point(60, 40), Point(150, 150)]
        grid = density_grid(aps, box, cell_m=100.0)
        assert grid.shape == (2, 2)
        assert grid[0, 0] == 2
        assert grid[1, 1] == 1
        assert grid.sum() == 3

    def test_density_grid_ignores_outside(self):
        box = BoundingBox(0, 0, 100, 100)
        grid = density_grid([Point(500, 500)], box, cell_m=50.0)
        assert grid.sum() == 0


class TestRouteCoverage:
    def test_full_coverage(self):
        route = Trajectory([Point(0, 0), Point(100, 0)])
        report = route_coverage([Point(50, 0)], route, radio_range_m=60.0)
        assert report.covered_fraction == 1.0
        assert report.gaps_m == ()
        assert report.longest_gap_m == 0.0

    def test_no_coverage(self):
        route = Trajectory([Point(0, 0), Point(100, 0)])
        report = route_coverage([Point(0, 500)], route, radio_range_m=50.0)
        assert report.covered_fraction == 0.0
        assert len(report.gaps_m) == 1
        assert report.longest_gap_m == pytest.approx(100.0)

    def test_gap_in_the_middle(self):
        route = Trajectory([Point(0, 0), Point(300, 0)])
        aps = [Point(0, 0), Point(300, 0)]
        report = route_coverage(
            aps, route, radio_range_m=50.0, sample_every_m=5.0
        )
        assert 0.3 < report.covered_fraction < 0.5
        assert len(report.gaps_m) == 1
        start, end = report.gaps_m[0]
        assert start == pytest.approx(55.0, abs=10.0)
        assert end == pytest.approx(245.0, abs=10.0)

    def test_validation(self):
        route = Trajectory([Point(0, 0), Point(10, 0)])
        with pytest.raises(ValueError):
            route_coverage([], route, radio_range_m=0.0)
        with pytest.raises(ValueError):
            route_coverage([], route, radio_range_m=10.0, sample_every_m=0.0)


class TestInterference:
    def test_graph_edges(self):
        aps = [Point(0, 0), Point(30, 0), Point(300, 0)]
        graph = interference_graph(aps, interference_range_m=50.0)
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(0, 2)
        assert graph.number_of_nodes() == 3

    def test_range_validation(self):
        with pytest.raises(ValueError):
            interference_graph([], 0.0)

    def test_sparse_deployment_conflict_free(self):
        aps = [Point(float(300 * i), 0.0) for i in range(5)]
        report = analyze_interference(aps, interference_range_m=100.0)
        assert report.n_conflicts == 0
        assert report.conflict_free
        assert set(report.channels.values()) <= set(NON_OVERLAPPING_CHANNELS)

    def test_triangle_uses_three_channels(self):
        aps = [Point(0, 0), Point(30, 0), Point(15, 25)]
        report = analyze_interference(aps, interference_range_m=50.0)
        assert report.n_conflicts == 3
        assert len(set(report.channels.values())) == 3
        assert report.conflict_free

    def test_dense_cluster_has_residual_conflicts(self):
        # Five mutually interfering APs cannot be 3-colored.
        aps = [Point(float(i), 0.0) for i in range(5)]
        report = analyze_interference(aps, interference_range_m=50.0)
        assert report.residual_conflicts > 0
        assert not report.conflict_free

    def test_degree_statistics(self):
        aps = [Point(0, 0), Point(10, 0), Point(20, 0)]
        report = analyze_interference(aps, interference_range_m=12.0)
        assert report.max_degree == 2  # middle AP
        assert report.mean_degree == pytest.approx(4 / 3)

    def test_needs_channels(self):
        with pytest.raises(ValueError):
            analyze_interference([Point(0, 0)], 10.0, channels=())

    def test_empty_deployment(self):
        report = analyze_interference([], 10.0)
        assert report.n_aps == 0
        assert report.mean_degree == 0.0
        assert report.conflict_free


class TestChannelAssignmentProperties:
    def test_assignment_covers_every_ap(self):
        import numpy as np

        rng = np.random.default_rng(0)
        aps = [
            Point(float(rng.uniform(0, 500)), float(rng.uniform(0, 500)))
            for _ in range(25)
        ]
        report = analyze_interference(aps, interference_range_m=80.0)
        assert set(report.channels) == set(range(len(aps)))

    def test_no_adjacent_same_channel_when_3_colorable(self):
        # A path graph is 2-colorable, so 3 channels always suffice.
        aps = [Point(float(40 * i), 0.0) for i in range(8)]
        report = analyze_interference(aps, interference_range_m=45.0)
        assert report.conflict_free
        graph = interference_graph(aps, 45.0)
        for a, b in graph.edges:
            assert report.channels[a] != report.channels[b]
