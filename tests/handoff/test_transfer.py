"""Tests for the 10 KB TCP transfer simulator (Fig. 11)."""

import pytest

from repro.handoff.policies import AllApPolicy, BrrPolicy
from repro.handoff.transfer import TransferConfig, TransferStats, run_transfers
from repro.handoff.vanlan import synthesize_vanlan


@pytest.fixture(scope="module")
def trace():
    return synthesize_vanlan(duration_s=180.0, rng=3)


def make_policy(cls, trace, estimated_map=None):
    ap_positions = {
        ap.ap_id: ap.position for ap in trace.world.access_points
    }
    if estimated_map is None:
        estimated_map = list(ap_positions.values())
    return cls(
        estimated_map=estimated_map,
        ap_positions=ap_positions,
        vicinity_radius_m=trace.config.radio_range_m,
        map_match_radius_m=60.0,
    )


class TestTransferConfig:
    def test_paper_defaults(self):
        config = TransferConfig()
        assert config.file_size_bytes == 10_240
        assert config.stall_timeout_s == 10.0
        assert config.segments_per_file == 21
        assert config.slots_per_stall == 100

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"file_size_bytes": 0},
            {"segment_bytes": 0},
            {"slot_period_s": 0.0},
            {"stall_timeout_s": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            TransferConfig(**kwargs)


class TestTransferStats:
    def test_median_of_empty_is_inf(self):
        stats = TransferStats(completed_times_s=(), aborted=3, n_sessions=2)
        assert stats.median_transfer_time_s == float("inf")
        assert stats.transfers_per_session == 0.0

    def test_throughput(self):
        stats = TransferStats(
            completed_times_s=(1.0, 2.0, 3.0, 4.0), aborted=0, n_sessions=2
        )
        assert stats.transfers_per_session == 2.0
        assert stats.median_transfer_time_s == 2.5


class TestRunTransfers:
    def test_transfers_complete_with_accurate_map(self, trace):
        policy = make_policy(AllApPolicy, trace)
        stats = run_transfers(trace, policy, rng=0)
        assert len(stats.completed_times_s) > 0
        assert stats.median_transfer_time_s < 60.0

    def test_allap_beats_brr(self, trace):
        """Fig. 11: AllAP transfers faster and more often than BRR."""
        allap = run_transfers(trace, make_policy(AllApPolicy, trace), rng=1)
        brr = run_transfers(trace, make_policy(BrrPolicy, trace), rng=1)
        assert allap.median_transfer_time_s <= brr.median_transfer_time_s
        assert allap.transfers_per_session >= brr.transfers_per_session

    def test_empty_map_completes_nothing(self, trace):
        policy = make_policy(AllApPolicy, trace, estimated_map=[])
        stats = run_transfers(trace, policy, rng=2)
        assert stats.completed_times_s == ()

    def test_degraded_map_hurts(self, trace):
        full = run_transfers(trace, make_policy(AllApPolicy, trace), rng=3)
        # Keep only 4 of 11 APs in the map.
        partial_map = [
            ap.position for ap in trace.world.access_points[:4]
        ]
        partial = run_transfers(
            trace, make_policy(AllApPolicy, trace, estimated_map=partial_map),
            rng=3,
        )
        assert len(partial.completed_times_s) <= len(full.completed_times_s)

    def test_reproducible(self, trace):
        a = run_transfers(trace, make_policy(AllApPolicy, trace), rng=4)
        b = run_transfers(trace, make_policy(AllApPolicy, trace), rng=4)
        assert a.completed_times_s == b.completed_times_s

    def test_transfer_times_are_positive_multiples_of_slot(self, trace):
        stats = run_transfers(trace, make_policy(AllApPolicy, trace), rng=5)
        for t in stats.completed_times_s:
            assert t > 0
            assert (t / 0.1) == pytest.approx(round(t / 0.1))
