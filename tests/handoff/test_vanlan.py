"""Tests for the synthetic VanLan trace generator."""

import numpy as np
import pytest

from repro.handoff.vanlan import (
    VanLanConfig,
    synthesize_vanlan,
    vanlan_route,
    vanlan_world,
)


class TestConfig:
    def test_defaults_match_paper(self):
        config = VanLanConfig()
        assert config.beacon_period_s == 0.1   # 100 ms beacons
        assert config.van_speed_mph == 25.0
        assert config.tx_power_dbm == pytest.approx(26.02)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"beacon_period_s": 0.0},
            {"good_loss": 1.5},
            {"bad_loss": 0.01, "good_loss": 0.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            VanLanConfig(**kwargs)


class TestWorld:
    def test_eleven_aps_in_five_clusters(self):
        world = vanlan_world()
        assert len(world) == 11
        buildings = {ap.ap_id.rsplit("-", 1)[0] for ap in world.access_points}
        assert len(buildings) == 5

    def test_deployment_inside_campus(self):
        world = vanlan_world()
        for ap in world.access_points:
            assert 0 <= ap.position.x <= 828
            assert 0 <= ap.position.y <= 559

    def test_route_loop_inside_campus(self):
        route = vanlan_route()
        assert route.closed
        for waypoint in route.waypoints:
            assert 0 <= waypoint.x <= 828
            assert 0 <= waypoint.y <= 559


class TestSynthesize:
    @pytest.fixture(scope="class")
    def trace(self):
        return synthesize_vanlan(duration_s=120.0, rng=0)

    def test_events_generated(self, trace):
        assert len(trace.events) > 100

    def test_events_time_ordered(self, trace):
        times = [e.time for e in trace.events]
        assert times == sorted(times)

    def test_some_received_some_lost(self, trace):
        received = sum(e.received for e in trace.events)
        assert 0 < received < len(trace.events)

    def test_rss_trace_extraction(self, trace):
        measurements = trace.rss_trace()
        assert all(m.source_ap is not None for m in measurements)
        assert len(measurements) == sum(e.received for e in trace.events)

    def test_rss_trace_limit(self, trace):
        limited = trace.rss_trace(limit=50)
        assert len(limited) <= 50

    def test_reception_by_second_totals(self, trace):
        table = trace.reception_by_second()
        total = sum(
            counts[1]
            for per_ap in table.values()
            for counts in per_ap.values()
        )
        assert total == len(trace.events)
        for per_ap in table.values():
            for received, sent in per_ap.values():
                assert 0 <= received <= sent

    def test_van_position_available(self, trace):
        seconds = sorted(trace.reception_by_second())
        position = trace.van_position_at_second(seconds[0])
        assert position is not None

    def test_reproducible(self):
        a = synthesize_vanlan(duration_s=30.0, rng=7)
        b = synthesize_vanlan(duration_s=30.0, rng=7)
        assert len(a.events) == len(b.events)
        assert all(
            x.received == y.received and x.ap_id == y.ap_id
            for x, y in zip(a.events, b.events)
        )

    def test_duration_validation(self):
        with pytest.raises(ValueError):
            synthesize_vanlan(duration_s=0.0)

    def test_loss_burstiness(self):
        """Gilbert–Elliott losses must be autocorrelated (bursty)."""
        config = VanLanConfig(good_loss=0.02, bad_loss=0.9)
        trace = synthesize_vanlan(duration_s=180.0, config=config, rng=1)
        # Collect per-link loss sequences and measure adjacent correlation.
        by_ap = {}
        for event in trace.events:
            by_ap.setdefault(event.ap_id, []).append(int(not event.received))
        lag_correlations = []
        for losses in by_ap.values():
            if len(losses) < 50:
                continue
            x = np.asarray(losses, dtype=float)
            if x.std() == 0:
                continue
            lag_correlations.append(
                np.corrcoef(x[:-1], x[1:])[0, 1]
            )
        assert np.mean(lag_correlations) > 0.1

    def test_staggered_vans_differ(self):
        a = synthesize_vanlan(duration_s=30.0, rng=2, start_offset_m=0.0)
        b = synthesize_vanlan(duration_s=30.0, rng=2, start_offset_m=500.0)
        pa = a.events[0].van_position if a.events else None
        pb = b.events[0].van_position if b.events else None
        if pa is not None and pb is not None:
            assert pa.distance_to(pb) > 1.0


class TestStrongestPerSecond:
    @pytest.fixture(scope="class")
    def trace(self):
        return synthesize_vanlan(duration_s=60.0, rng=4)

    def test_at_most_one_reading_per_second(self, trace):
        readings = trace.rss_trace(strongest_per_second=True)
        seconds = [int(m.timestamp) for m in readings]
        assert len(seconds) == len(set(seconds))

    def test_keeps_the_strongest_beacon(self, trace):
        readings = trace.rss_trace(strongest_per_second=True)
        by_second = {}
        for event in trace.events:
            if event.received:
                by_second.setdefault(int(event.time), []).append(event.rss_dbm)
        for m in readings:
            assert m.rss_dbm == pytest.approx(max(by_second[int(m.timestamp)]))

    def test_subset_of_unfiltered(self, trace):
        filtered = trace.rss_trace(strongest_per_second=True)
        unfiltered_keys = {
            (m.timestamp, m.rss_dbm, m.source_ap)
            for m in trace.rss_trace()
        }
        for m in filtered:
            assert (m.timestamp, m.rss_dbm, m.source_ap) in unfiltered_keys

    def test_limit_composes_with_filter(self, trace):
        limited = trace.rss_trace(limit=10, strongest_per_second=True)
        assert len(limited) <= 10
