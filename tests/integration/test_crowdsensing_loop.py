"""End-to-end integration: sense → upload → crowdsource → download → use.

This walks the complete CrowdWiFi loop of Fig. 1/Fig. 2 on a small
simulated deployment: three crowd-vehicles drive the same loop, run
online CS, upload coarse reports, answer the server's mapping tasks, the
server infers reliabilities and publishes a fused map, and a user-vehicle
downloads it for nearby-AP lookup.
"""

import numpy as np
import pytest

from repro.core.engine import EngineConfig, OnlineCsEngine
from repro.core.window import WindowConfig
from repro.geo.grid import Grid
from repro.geo.points import BoundingBox, Point
from repro.geo.trajectory import Trajectory
from repro.metrics.errors import mean_distance_error
from repro.middleware.client import CrowdVehicleClient, UserVehicleClient
from repro.middleware.protocol import decode_message, encode_message
from repro.middleware.server import CrowdServer, ServerConfig
from repro.mobility.models import PathFollower
from repro.radio.pathloss import PathLossModel
from repro.sim.collector import CollectorConfig, RssCollector
from repro.sim.world import AccessPoint, World

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def deployment():
    channel = PathLossModel(shadowing_sigma_db=0.5)
    world = World(
        access_points=[
            AccessPoint(ap_id="a", position=Point(30, 30), radio_range_m=60.0),
            AccessPoint(ap_id="b", position=Point(150, 30), radio_range_m=60.0),
            AccessPoint(ap_id="c", position=Point(90, 120), radio_range_m=60.0),
        ],
        channel=channel,
    )
    route = Trajectory.rectangle(10, 10, 170, 140)
    grid = Grid(box=BoundingBox(-50, -50, 230, 200), lattice_length=8.0)
    return world, route, grid


@pytest.fixture(scope="module")
def loop_result(deployment):
    """Run the complete crowdsensing loop once and share the outcome."""
    world, route, grid = deployment
    engine_config = EngineConfig(
        window=WindowConfig(size=36, step=12),
        readings_per_round=6,
        max_aps_per_round=4,
        communication_radius_m=60.0,
        lattice_length_m=8.0,
    )
    server = CrowdServer(
        ServerConfig(workers_per_task=3, fusion_min_support=2), rng=99
    )
    server.register_segment("seg-loop", grid)

    clients = []
    for index in range(3):
        collector = RssCollector(
            world,
            CollectorConfig(sample_period_s=1.0, communication_radius_m=60.0),
            rng=50 + index,
        )
        follower = PathFollower(route, 5.0, start_offset_m=120.0 * index)
        trace = collector.collect_along(follower, n_samples=120)
        engine = OnlineCsEngine(
            world.channel, engine_config, grid=grid, rng=70 + index
        )
        client = CrowdVehicleClient(
            vehicle_id=f"crowd-{index}", engine=engine, rng=90 + index
        )
        client.sense(trace)
        report = client.build_report("seg-loop", timestamp=float(index))
        # Exercise the wire codec on the way in.
        server.receive_report(decode_message(encode_message(report)))
        clients.append(client)

    assignments = server.open_round("seg-loop")
    for client in clients:
        submission = client.answer_tasks(assignments[client.vehicle_id], grid)
        server.submit_labels("seg-loop", submission)
    response = server.aggregate("seg-loop")

    user = UserVehicleClient(vehicle_id="user-1")
    user.ingest_download(response)
    return world, server, clients, response, user


class TestCrowdsensingLoop:
    def test_all_vehicles_sensed_aps(self, loop_result):
        _, _, clients, _, _ = loop_result
        for client in clients:
            assert client.last_result.n_aps >= 2

    def test_fused_map_has_plausible_count(self, loop_result):
        world, _, _, response, _ = loop_result
        # With two-vehicle support required, the fused map holds exactly
        # the APs at least two crowd-vehicles agreed on.
        assert 2 <= len(response.aps) <= 4

    def test_fused_map_accuracy(self, loop_result):
        world, _, _, response, _ = loop_result
        fused = [record.to_point() for record in response.aps]
        error = mean_distance_error(world.ap_positions(), fused)
        assert error < 10.0

    def test_crowdsourced_beats_worst_individual(self, loop_result):
        world, _, clients, response, _ = loop_result
        truth = world.ap_positions()
        fused = [record.to_point() for record in response.aps]
        fused_error = mean_distance_error(truth, fused)
        individual_errors = [
            mean_distance_error(truth, client.last_result.locations)
            for client in clients
        ]
        assert fused_error <= max(individual_errors) + 1.0

    def test_reliabilities_learned(self, loop_result):
        _, server, clients, _, _ = loop_result
        for client in clients:
            q = server.reliability_of(client.vehicle_id)
            assert 0.0 <= q <= 1.0

    def test_user_vehicle_lookup(self, loop_result):
        world, _, _, _, user = loop_result
        # Driving near AP "a": the nearest known AP must be close to it.
        nearest = user.nearest_aps(Point(30, 15), count=1)
        assert nearest[0][0].distance_to(world.ap("a").position) < 15.0

    def test_generation_incremented(self, loop_result):
        _, server, _, response, _ = loop_result
        assert response.generation == 1
        assert server.download("seg-loop").generation == 1


class TestSpammerResilience:
    def test_spammer_gets_low_reliability(self, deployment):
        """A pure spammer in the crowd is identified by iterative inference."""
        world, route, grid = deployment
        engine_config = EngineConfig(
            window=WindowConfig(size=36, step=12),
            readings_per_round=6,
            max_aps_per_round=4,
            communication_radius_m=60.0,
        )
        server = CrowdServer(
            ServerConfig(workers_per_task=4, perturbed_variants_per_pattern=2),
            rng=5,
        )
        server.register_segment("seg-s", grid)

        clients = []
        for index in range(4):
            collector = RssCollector(
                world,
                CollectorConfig(sample_period_s=1.0, communication_radius_m=60.0),
                rng=10 + index,
            )
            follower = PathFollower(route, 5.0, start_offset_m=100.0 * index)
            trace = collector.collect_along(follower, n_samples=120)
            engine = OnlineCsEngine(
                world.channel, engine_config, grid=grid, rng=30 + index
            )
            client = CrowdVehicleClient(
                vehicle_id=f"v-{index}",
                engine=engine,
                spam_probability=1.0 if index == 3 else 0.0,
                rng=40 + index,
            )
            client.sense(trace)
            server.receive_report(client.build_report("seg-s", float(index)))
            clients.append(client)

        assignments = server.open_round("seg-s")
        for client in clients:
            server.submit_labels(
                "seg-s", client.answer_tasks(assignments[client.vehicle_id], grid)
            )
        server.aggregate("seg-s")

        honest = [server.reliability_of(f"v-{i}") for i in range(3)]
        spammer = server.reliability_of("v-3")
        assert spammer <= np.mean(honest) + 0.05
