"""Failure injection: degenerate inputs and adversarial conditions.

The pipeline must degrade gracefully, never crash, on inputs no healthy
deployment produces: constant readings, unanimous liars, resubmissions,
mid-drive AP churn.
"""

import numpy as np
import pytest

from repro.core.engine import EngineConfig, OnlineCsEngine
from repro.core.window import WindowConfig
from repro.crowd.assignment import regular_assignment
from repro.crowd.inference import kos_inference
from repro.geo.grid import Grid
from repro.geo.points import BoundingBox, Point
from repro.middleware.protocol import ApRecord, LabelSubmission, UploadReport
from repro.middleware.server import CrowdServer, ServerConfig
from repro.radio.pathloss import PathLossModel
from repro.radio.rss import RssMeasurement


@pytest.fixture
def channel():
    return PathLossModel(shadowing_sigma_db=0.0)


@pytest.fixture
def engine(channel):
    return OnlineCsEngine(
        channel,
        EngineConfig(
            window=WindowConfig(size=12, step=6),
            readings_per_round=5,
            max_aps_per_round=3,
            communication_radius_m=60.0,
            snr_db=None,
        ),
        rng=0,
    )


class TestDegenerateTraces:
    def test_constant_rss_same_position(self, engine):
        """Every reading identical — one trivial 'AP' at most, no crash."""
        trace = [
            RssMeasurement(rss_dbm=-50.0, position=Point(10, 10), timestamp=float(t))
            for t in range(20)
        ]
        result = engine.process_trace(trace)
        assert result.n_aps <= 1

    def test_extreme_rss_values(self, engine):
        """Absurd RSS magnitudes must not produce NaNs or crashes."""
        trace = [
            RssMeasurement(
                rss_dbm=-200.0 if t % 2 else -1.0,
                position=Point(10.0 + t, 10.0),
                timestamp=float(t),
            )
            for t in range(16)
        ]
        result = engine.process_trace(trace)
        for estimate in result.estimates:
            assert np.isfinite(estimate.location.x)
            assert np.isfinite(estimate.location.y)

    def test_single_reading(self, engine):
        trace = [
            RssMeasurement(rss_dbm=-55.0, position=Point(5, 5), timestamp=0.0)
        ]
        result = engine.process_trace(trace)
        assert result.n_aps <= 1

    def test_ap_churn_with_ttl(self, channel):
        """An AP decommissioned mid-campaign fades from a TTL-respecting
        readout of the *fresh* data."""
        old_ap, new_ap = Point(20, 20), Point(120, 20)
        trace = []
        for t in range(10):
            position = Point(12.0 + 2 * t, 12.0)
            trace.append(
                RssMeasurement(
                    rss_dbm=float(channel.mean_rss_dbm(old_ap.distance_to(position))),
                    position=position,
                    timestamp=float(t),
                    ttl=20.0,
                )
            )
        for t in range(10):
            position = Point(112.0 + 2 * t, 12.0)
            trace.append(
                RssMeasurement(
                    rss_dbm=float(channel.mean_rss_dbm(new_ap.distance_to(position))),
                    position=position,
                    timestamp=100.0 + t,
                    ttl=20.0,
                )
            )
        engine = OnlineCsEngine(
            channel,
            EngineConfig(
                window=WindowConfig(size=20, step=20),
                readings_per_round=5,
                max_aps_per_round=2,
                communication_radius_m=60.0,
                respect_ttl=True,
                snr_db=None,
            ),
            rng=1,
        )
        result = engine.process_trace(trace)
        # Only the still-broadcasting AP survives the TTL cut.
        assert result.n_aps == 1
        assert result.locations[0].distance_to(new_ap) < 15.0


class TestAdversarialCrowd:
    def test_unanimous_liars_flip_labels_cleanly(self):
        """If EVERY worker lies, no aggregator can recover — but the
        inference must still terminate with valid ±1 output."""
        rng = np.random.default_rng(0)
        assignment = regular_assignment(100, 5, 10, rng=rng)
        truth = np.where(rng.random(100) < 0.5, 1, -1)
        labels = np.zeros((100, assignment.n_workers), dtype=int)
        for task, worker in assignment.edges:
            labels[task, worker] = -truth[task]
        result = kos_inference(labels, assignment)
        assert set(np.unique(result.estimates)) <= {-1, 1}
        # Unanimous lies are indistinguishable from unanimous truth about
        # the flipped labels: the estimate is exactly wrong.
        assert np.array_equal(result.estimates, -truth)

    def test_label_resubmission_is_idempotent(self):
        server = CrowdServer(ServerConfig(workers_per_task=2), rng=0)
        grid = Grid(box=BoundingBox(0, 0, 100, 100), lattice_length=10.0)
        server.register_segment("seg", grid)
        for vehicle in ("v1", "v2"):
            server.receive_report(
                UploadReport(
                    vehicle_id=vehicle,
                    segment_id="seg",
                    timestamp=0.0,
                    aps=(ApRecord(x=50, y=50),),
                    lattice_length_m=10.0,
                )
            )
        assignments = server.open_round("seg")
        for vehicle, message in assignments.items():
            submission = LabelSubmission(
                vehicle_id=vehicle,
                labels=tuple((tid, 1) for tid, _, _ in message.tasks),
            )
            server.submit_labels("seg", submission)
            # A duplicate submission overwrites identically, no error.
            server.submit_labels("seg", submission)
        assert server.round_complete("seg")
        response = server.aggregate("seg")
        assert len(response.aps) >= 1

    def test_report_with_absurd_coordinates(self):
        """Reports far outside the segment grid snap to border cells and
        flow through aggregation without crashing."""
        server = CrowdServer(ServerConfig(workers_per_task=2), rng=0)
        grid = Grid(box=BoundingBox(0, 0, 100, 100), lattice_length=10.0)
        server.register_segment("seg", grid)
        for vehicle in ("v1", "v2"):
            server.receive_report(
                UploadReport(
                    vehicle_id=vehicle,
                    segment_id="seg",
                    timestamp=0.0,
                    aps=(ApRecord(x=1e7, y=-1e7),),
                    lattice_length_m=10.0,
                )
            )
        assignments = server.open_round("seg")
        for vehicle, message in assignments.items():
            server.submit_labels(
                "seg",
                LabelSubmission(
                    vehicle_id=vehicle,
                    labels=tuple((tid, -1) for tid, _, _ in message.tasks),
                ),
            )
        response = server.aggregate("seg")
        assert response.generation == 1
