"""Integration: a city split into road segments, mapped segment by segment.

A crowd-vehicle's long drive crosses several road segments; the planner
splits its trace, the vehicle senses each segment separately, and the
crowd-server maintains one fused map per segment — the paper's
"given a road segment ID" task structure end to end.
"""

import pytest

from repro.core.engine import EngineConfig, OnlineCsEngine
from repro.core.window import WindowConfig
from repro.geo.points import BoundingBox, Point
from repro.geo.trajectory import Trajectory
from repro.metrics.errors import mean_distance_error
from repro.middleware.protocol import ApRecord, UploadReport
from repro.middleware.segments import SegmentPlanner
from repro.middleware.server import CrowdServer, ServerConfig
from repro.middleware.service import LookupService
from repro.mobility.models import PathFollower
from repro.radio.pathloss import PathLossModel
from repro.sim.collector import CollectorConfig, RssCollector
from repro.sim.world import AccessPoint, World

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def city():
    channel = PathLossModel(shadowing_sigma_db=0.5)
    # Two segments side by side, one AP pocket in each.
    world = World(
        access_points=[
            AccessPoint(ap_id="west", position=Point(60, 70), radio_range_m=60.0),
            AccessPoint(ap_id="east", position=Point(260, 70), radio_range_m=60.0),
        ],
        channel=channel,
    )
    area = BoundingBox(0, 0, 320, 140)
    planner = SegmentPlanner(area, n_rows=1, n_cols=2)
    route = Trajectory(
        [Point(10, 30), Point(310, 30), Point(310, 110), Point(10, 110)],
        closed=True,
    )
    return world, planner, route


@pytest.fixture(scope="module")
def run(city):
    world, planner, route = city
    server = CrowdServer(ServerConfig(), rng=1)
    for segment in planner.all_segments():
        server.register_segment(
            segment.segment_id, segment.grid(8.0, margin_m=60.0)
        )

    engine_config = EngineConfig(
        window=WindowConfig(size=24, step=8),
        readings_per_round=6,
        max_aps_per_round=3,
        communication_radius_m=60.0,
    )
    collector = RssCollector(
        world,
        CollectorConfig(sample_period_s=1.0, communication_radius_m=60.0),
        rng=2,
    )
    follower = PathFollower(route, 5.0)
    trace = collector.collect_along(follower, n_samples=150)

    per_segment = planner.split_trace(trace)
    for segment_id, sub_trace in per_segment.items():
        if len(sub_trace) < 10:
            continue
        engine = OnlineCsEngine(
            world.channel,
            engine_config,
            grid=server.segment_grid(segment_id),
            rng=3,
        )
        result = engine.process_trace(sub_trace)
        server.receive_report(
            UploadReport(
                vehicle_id="bus-1",
                segment_id=segment_id,
                timestamp=0.0,
                aps=tuple(
                    ApRecord(x=e.location.x, y=e.location.y, credits=e.credits)
                    for e in result.estimates
                ),
                lattice_length_m=8.0,
            )
        )
        server.open_round(segment_id)
        # Single honest vehicle: it confirms its own patterns.
        pool_tasks = server._pools[segment_id].tasks
        from repro.middleware.protocol import LabelSubmission

        grid = server.segment_grid(segment_id)
        own = [e.location for e in result.estimates]
        labels = []
        for task_id, pattern in pool_tasks:
            cells = [grid.point_at(i) for i in pattern]
            ok = all(
                any(c.distance_to(p) <= 12.0 for p in own) for c in cells
            )
            labels.append((task_id, 1 if ok else -1))
        server.submit_labels(
            segment_id,
            LabelSubmission(vehicle_id="bus-1", labels=tuple(labels)),
        )
        server.aggregate(segment_id)
    return world, planner, server, per_segment


class TestMultiSegment:
    def test_trace_crosses_both_segments(self, run):
        _, _, _, per_segment = run
        assert set(per_segment) == {"seg-0-0", "seg-0-1"}

    def test_each_segment_mapped(self, run):
        world, planner, server, _ = run
        west = server.download("seg-0-0")
        east = server.download("seg-0-1")
        assert len(west.aps) >= 1
        assert len(east.aps) >= 1

    def test_aps_land_in_their_own_segment(self, run):
        world, planner, server, _ = run
        for segment_id, true_ap in (
            ("seg-0-0", world.ap("west").position),
            ("seg-0-1", world.ap("east").position),
        ):
            response = server.download(segment_id)
            fused = [record.to_point() for record in response.aps]
            assert mean_distance_error(
                [true_ap], fused, max_match_distance_m=30.0
            ) < 15.0

    def test_lookup_service_sees_city_map(self, run):
        world, _, server, _ = run
        service = LookupService(server.database)
        assert len(service.all_aps()) >= 2
        near_west = service.aps_near(Point(60, 70), 30.0)
        assert near_west
