"""Integration: online CS over a street-network drive.

Verifies the mobility substrate's road-graph routes compose with the
collector and engine exactly like hand-drawn trajectories do.
"""

import pytest

from repro.core.engine import EngineConfig, OnlineCsEngine
from repro.core.window import WindowConfig
from repro.geo.points import BoundingBox, Point
from repro.metrics.errors import mean_distance_error
from repro.mobility.models import PathFollower
from repro.mobility.streets import StreetGrid
from repro.radio.pathloss import PathLossModel
from repro.sim.collector import CollectorConfig, RssCollector
from repro.sim.world import AccessPoint, World

pytestmark = pytest.mark.slow


def test_engine_on_street_loop():
    streets = StreetGrid(BoundingBox(0, 0, 240, 180), n_rows=3, n_cols=4)
    # One AP just off a corner the loop turns at (two perpendicular
    # passes pin it down).
    ap = AccessPoint(
        ap_id="corner-cafe",
        position=streets.intersection(0, 2).translated(-8.0, 7.0),
        radio_range_m=70.0,
    )
    world = World(
        access_points=[ap], channel=PathLossModel(shadowing_sigma_db=0.5)
    )
    route = streets.loop_route([(0, 0), (0, 2), (2, 2), (2, 0)])
    collector = RssCollector(
        world,
        CollectorConfig(sample_period_s=1.0, communication_radius_m=70.0),
        rng=3,
    )
    trace = collector.collect_along(
        PathFollower(route, 6.0), n_samples=60
    )
    engine = OnlineCsEngine(
        world.channel,
        EngineConfig(
            window=WindowConfig(size=20, step=10),
            readings_per_round=5,
            max_aps_per_round=2,
            communication_radius_m=70.0,
        ),
        rng=4,
    )
    result = engine.process_trace(trace)
    assert result.n_aps == 1
    assert mean_distance_error([ap.position], result.locations) < 10.0
