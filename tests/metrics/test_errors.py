"""Tests for the paper's §6 error metrics."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geo.points import Point
from repro.metrics.errors import (
    bitwise_error_rate,
    counting_error,
    localization_error,
    match_estimates,
    mean_distance_error,
)

coords = st.tuples(
    st.floats(min_value=-1e3, max_value=1e3),
    st.floats(min_value=-1e3, max_value=1e3),
)


class TestMatchEstimates:
    def test_perfect_match(self):
        points = [Point(0, 0), Point(10, 10)]
        matches = match_estimates(points, points)
        assert all(d == 0.0 for _, _, d in matches)

    def test_optimal_pairing(self):
        truth = [Point(0, 0), Point(10, 0)]
        estimates = [Point(9, 0), Point(1, 0)]  # swapped order
        matches = match_estimates(truth, estimates)
        pairing = {t: e for t, e, _ in matches}
        assert pairing == {0: 1, 1: 0}

    def test_unequal_counts_match_min(self):
        truth = [Point(0, 0), Point(10, 0), Point(20, 0)]
        estimates = [Point(0.5, 0)]
        matches = match_estimates(truth, estimates)
        assert len(matches) == 1
        assert matches[0][0] == 0

    def test_empty_sides(self):
        assert match_estimates([], [Point(0, 0)]) == []
        assert match_estimates([Point(0, 0)], []) == []

    @given(st.lists(coords, min_size=1, max_size=6))
    def test_self_match_is_zero(self, raw):
        points = [Point(x, y) for x, y in raw]
        matches = match_estimates(points, points)
        assert sum(d for _, _, d in matches) == pytest.approx(0.0, abs=1e-9)


class TestMeanDistanceError:
    def test_known_value(self):
        truth = [Point(0, 0), Point(10, 0)]
        estimates = [Point(0, 3), Point(10, 4)]
        assert mean_distance_error(truth, estimates) == pytest.approx(3.5)

    def test_empty_is_nan(self):
        assert math.isnan(mean_distance_error([], [Point(0, 0)]))


class TestLocalizationError:
    def test_paper_definition(self):
        # Two APs each 4 m off with an 8 m lattice: (4+4)/(2*8) = 0.5.
        truth = [Point(0, 0), Point(50, 0)]
        estimates = [Point(4, 0), Point(50, 4)]
        assert localization_error(truth, estimates, 8.0) == pytest.approx(0.5)

    def test_under_100_percent_means_within_grid(self):
        truth = [Point(0, 0)]
        estimates = [Point(7.9, 0)]
        assert localization_error(truth, estimates, 8.0) < 1.0

    def test_uses_min_count(self):
        truth = [Point(0, 0), Point(100, 0)]
        estimates = [Point(2, 0)]
        # k_min = 1, total distance 2, lattice 8 → 0.25.
        assert localization_error(truth, estimates, 8.0) == pytest.approx(0.25)

    def test_bad_lattice(self):
        with pytest.raises(ValueError):
            localization_error([Point(0, 0)], [Point(0, 0)], 0.0)

    def test_empty_is_nan(self):
        assert math.isnan(localization_error([], [], 8.0))

    @given(st.lists(coords, min_size=1, max_size=5))
    def test_zero_for_perfect_estimates(self, raw):
        points = [Point(x, y) for x, y in raw]
        assert localization_error(points, points, 8.0) == pytest.approx(
            0.0, abs=1e-9
        )


class TestCountingError:
    def test_paper_definition(self):
        # |6-8| / 8 = 0.25
        assert counting_error([8], [6]) == pytest.approx(0.25)

    def test_multiple_grids(self):
        assert counting_error([4, 4], [4, 2]) == pytest.approx(0.25)

    def test_overcounting_counts_too(self):
        assert counting_error([4], [6]) == pytest.approx(0.5)

    def test_perfect(self):
        assert counting_error([5, 3], [5, 3]) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            counting_error([1, 2], [1])
        with pytest.raises(ValueError):
            counting_error([], [])
        with pytest.raises(ValueError):
            counting_error([0], [1])


class TestBitwiseErrorRate:
    def test_basic(self):
        assert bitwise_error_rate([1, -1, 1, -1], [1, 1, 1, -1]) == 0.25

    def test_perfect_and_total(self):
        assert bitwise_error_rate([1, -1], [1, -1]) == 0.0
        assert bitwise_error_rate([1, -1], [-1, 1]) == 1.0

    def test_rejects_non_pm1(self):
        with pytest.raises(ValueError):
            bitwise_error_rate([1, 0], [1, 1])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            bitwise_error_rate([1], [1, -1])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bitwise_error_rate([], [])

    @given(st.lists(st.sampled_from([-1, 1]), min_size=1, max_size=50))
    def test_bounds(self, labels):
        rng = np.random.default_rng(0)
        flipped = [l if rng.random() < 0.5 else -l for l in labels]
        rate = bitwise_error_rate(labels, flipped)
        assert 0.0 <= rate <= 1.0
