"""Tests for the bootstrap statistics helpers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.metrics.stats import (
    bootstrap_mean,
    bootstrap_median,
    paired_difference,
    win_rate,
)


class TestBootstrapMean:
    def test_estimate_is_sample_mean(self):
        result = bootstrap_mean([1.0, 2.0, 3.0], rng=0)
        assert result.estimate == pytest.approx(2.0)

    def test_interval_contains_estimate(self):
        rng = np.random.default_rng(1)
        samples = rng.normal(5.0, 1.0, size=100)
        result = bootstrap_mean(samples, rng=2)
        assert result.low <= result.estimate <= result.high

    def test_interval_covers_true_mean_usually(self):
        covered = 0
        for seed in range(40):
            rng = np.random.default_rng(seed)
            samples = rng.normal(0.0, 1.0, size=60)
            result = bootstrap_mean(samples, rng=seed, n_resamples=500)
            covered += result.contains(0.0)
        assert covered >= 32  # ≈ 95 % nominal coverage, generous slack

    def test_more_samples_tighter_interval(self):
        rng = np.random.default_rng(3)
        small = bootstrap_mean(rng.normal(0, 1, 20), rng=4)
        large = bootstrap_mean(rng.normal(0, 1, 2000), rng=5)
        assert large.width < small.width

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_mean([])
        with pytest.raises(ValueError):
            bootstrap_mean([1.0], confidence=1.0)
        with pytest.raises(ValueError):
            bootstrap_mean([1.0], n_resamples=0)

    @given(st.lists(st.floats(-100, 100), min_size=1, max_size=30))
    @settings(max_examples=25, deadline=None)
    def test_interval_ordering(self, samples):
        result = bootstrap_mean(samples, rng=0, n_resamples=200)
        assert result.low <= result.high


class TestBootstrapMedian:
    def test_estimate_is_sample_median(self):
        result = bootstrap_median([1.0, 2.0, 100.0], rng=0)
        assert result.estimate == pytest.approx(2.0)

    def test_robust_to_outliers(self):
        samples = [1.0] * 50 + [1e6]
        result = bootstrap_median(samples, rng=1)
        assert result.high < 10.0


class TestPairedDifference:
    def test_clear_improvement_detected(self):
        rng = np.random.default_rng(2)
        b = rng.normal(10.0, 1.0, size=80)
        a = b - 2.0 + rng.normal(0.0, 0.2, size=80)
        result = paired_difference(a, b, rng=3)
        assert result.high < 0.0  # a is reliably smaller

    def test_no_difference_spans_zero(self):
        rng = np.random.default_rng(4)
        a = rng.normal(0.0, 1.0, size=100)
        b = a + rng.normal(0.0, 0.01, size=100)
        result = paired_difference(a, b, rng=5)
        assert result.contains(0.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            paired_difference([1.0], [1.0, 2.0])


class TestWinRate:
    def test_all_wins(self):
        assert win_rate([1, 1], [2, 2]) == 1.0

    def test_ties_count_half(self):
        assert win_rate([1, 2], [1, 3]) == pytest.approx(0.75)

    def test_larger_is_better_mode(self):
        assert win_rate([2, 2], [1, 1], smaller_is_better=False) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            win_rate([], [])
        with pytest.raises(ValueError):
            win_rate([1], [1, 2])
