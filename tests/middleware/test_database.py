"""Tests for the server-side AP database."""

import pytest

from repro.middleware.database import ApDatabase, SegmentStore
from repro.middleware.protocol import ApRecord, UploadReport


def make_report(vehicle, segment="seg-1", ts=0.0, aps=((1.0, 2.0),)):
    return UploadReport(
        vehicle_id=vehicle,
        segment_id=segment,
        timestamp=ts,
        aps=tuple(ApRecord(x=x, y=y) for x, y in aps),
        lattice_length_m=8.0,
    )


class TestSegmentStore:
    def test_add_and_vehicles(self):
        store = SegmentStore(segment_id="seg-1")
        store.add_report(make_report("a"))
        store.add_report(make_report("b"))
        store.add_report(make_report("a", ts=5.0))
        assert store.vehicles() == ["a", "b"]

    def test_wrong_segment_rejected(self):
        store = SegmentStore(segment_id="seg-1")
        with pytest.raises(ValueError):
            store.add_report(make_report("a", segment="seg-2"))

    def test_latest_report(self):
        store = SegmentStore(segment_id="seg-1")
        store.add_report(make_report("a", ts=1.0))
        store.add_report(make_report("a", ts=9.0))
        store.add_report(make_report("a", ts=4.0))
        assert store.latest_report_of("a").timestamp == 9.0
        assert store.latest_report_of("missing") is None

    def test_publish_bumps_generation(self):
        store = SegmentStore(segment_id="seg-1")
        assert store.generation == 0
        generation = store.publish([ApRecord(x=0, y=0)])
        assert generation == 1
        assert store.publish([]) == 2

    def test_snapshot(self):
        store = SegmentStore(segment_id="seg-1")
        store.publish([ApRecord(x=3, y=4, credits=2.0)])
        snapshot = store.snapshot()
        assert snapshot.segment_id == "seg-1"
        assert snapshot.generation == 1
        assert snapshot.aps[0].x == 3


class TestApDatabase:
    def test_segment_created_on_first_use(self):
        db = ApDatabase()
        assert not db.has_segment("seg-1")
        db.segment("seg-1")
        assert db.has_segment("seg-1")
        assert len(db) == 1

    def test_same_store_returned(self):
        db = ApDatabase()
        assert db.segment("x") is db.segment("x")

    def test_empty_segment_id_rejected(self):
        with pytest.raises(ValueError):
            ApDatabase().segment("")

    def test_segment_ids_sorted(self):
        db = ApDatabase()
        db.segment("b")
        db.segment("a")
        assert db.segment_ids() == ["a", "b"]

    def test_all_fused_locations(self):
        db = ApDatabase()
        db.segment("a").publish([ApRecord(x=1, y=1)])
        db.segment("b").publish([ApRecord(x=2, y=2), ApRecord(x=3, y=3)])
        locations = db.all_fused_locations()
        assert len(locations) == 3
        assert locations[0].x == 1
