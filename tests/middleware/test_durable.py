"""Durable middleware: WAL semantics, snapshots, crash-recovery equality.

The property suites are the satellite acceptance test: random
upload/label/publish sequences are applied to a durable store that is
torn down (``crash``) and ``recover()``-ed **after every operation**,
and the recovered state must match an always-alive in-memory twin that
ran the same sequence — bit-identically, random stream included.
"""

import json

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.geo.grid import Grid
from repro.geo.points import BoundingBox
from repro.middleware.database import ApDatabase
from repro.middleware.durable import (
    DURABLE_FORMAT_VERSION,
    DurableCrowdServer,
    DurableDatabase,
    DurableLog,
    DurableLogError,
)
from repro.middleware.protocol import (
    ApRecord,
    LabelSubmission,
    UploadReport,
    encode_message,
)
from repro.middleware.server import CrowdServer, ServerConfig
from repro.obs.recorder import InMemoryRecorder

SEGMENTS = ("seg-a", "seg-b")


def _grid():
    return Grid(box=BoundingBox(0, 0, 100, 100), lattice_length=10.0)


def _report(vehicle, segment, xs):
    return UploadReport(
        vehicle_id=vehicle,
        segment_id=segment,
        timestamp=0.0,
        aps=tuple(ApRecord(x=float(x), y=float(x) / 2 + 1) for x in xs),
        lattice_length_m=10.0,
    )


# -- DurableLog ------------------------------------------------------------


class TestDurableLog:
    def test_append_and_reopen(self, tmp_path):
        log = DurableLog(tmp_path)
        assert log.is_fresh
        assert log.append("a", {"x": 1}) == 1
        assert log.append("b", {"y": 2}) == 2
        log.close()
        snapshot, records = DurableLog.read(tmp_path)
        assert snapshot is None
        assert [(r["seq"], r["kind"]) for r in records] == [(1, "a"), (2, "b")]

    def test_reopened_log_continues_the_sequence(self, tmp_path):
        log = DurableLog(tmp_path)
        log.append("a", {})
        log.close()
        log2 = DurableLog(tmp_path)
        assert not log2.is_fresh
        assert log2.last_seq == 1
        assert log2.append("b", {}) == 2
        log2.close()

    def test_fsync_batching_defers_the_write(self, tmp_path):
        log = DurableLog(tmp_path, fsync_every=3)
        log.append("a", {})
        log.append("b", {})
        # Not yet flushed: a reader sees nothing.
        assert DurableLog.read(tmp_path)[1] == []
        log.append("c", {})  # third append fills the batch
        assert [r["kind"] for r in DurableLog.read(tmp_path)[1]] == [
            "a",
            "b",
            "c",
        ]
        log.close()

    def test_crash_loses_only_the_unflushed_tail(self, tmp_path):
        log = DurableLog(tmp_path, fsync_every=10)
        log.append("kept", {})
        log.flush()
        log.append("lost", {})
        log.crash()
        _, records = DurableLog.read(tmp_path)
        assert [r["kind"] for r in records] == ["kept"]

    def test_torn_final_line_is_tolerated(self, tmp_path):
        log = DurableLog(tmp_path)
        log.append("a", {})
        log.append("b", {})
        log.close()
        wal = tmp_path / "wal.jsonl"
        wal.write_text(wal.read_text()[:-10], "utf-8")  # tear the tail
        _, records = DurableLog.read(tmp_path)
        assert [r["kind"] for r in records] == ["a"]

    def test_corruption_before_the_tail_raises(self, tmp_path):
        log = DurableLog(tmp_path)
        log.append("a", {})
        log.append("b", {})
        log.close()
        wal = tmp_path / "wal.jsonl"
        lines = wal.read_text("utf-8").splitlines()
        lines[0] = "{definitely not json"
        wal.write_text("\n".join(lines) + "\n", "utf-8")
        with pytest.raises(DurableLogError, match="corrupt record"):
            DurableLog.read(tmp_path)

    def test_version_mismatch_raises(self, tmp_path):
        log = DurableLog(tmp_path)
        log.append("a", {})
        log.close()
        wal = tmp_path / "wal.jsonl"
        record = json.loads(wal.read_text("utf-8"))
        record["v"] = DURABLE_FORMAT_VERSION + 1
        wal.write_text(json.dumps(record) + "\n", "utf-8")
        with pytest.raises(DurableLogError, match="format"):
            DurableLog.read(tmp_path)

    def test_snapshot_compacts_the_wal(self, tmp_path):
        log = DurableLog(tmp_path)
        log.append("a", {})
        log.append("b", {})
        log.write_snapshot({"done": "ab"})
        log.append("c", {})
        log.close()
        snapshot, records = DurableLog.read(tmp_path)
        assert snapshot["state"] == {"done": "ab"}
        assert snapshot["upto_seq"] == 2
        # Only the post-snapshot tail remains to replay.
        assert [(r["seq"], r["kind"]) for r in records] == [(3, "c")]

    def test_snapshot_write_is_atomic(self, tmp_path):
        log = DurableLog(tmp_path)
        log.append("a", {})
        log.write_snapshot({"n": 1})
        # A stale temp file (simulating a crash mid-replace) is ignored.
        (tmp_path / "snapshot.json.tmp").write_text("{garbage", "utf-8")
        snapshot, _ = DurableLog.read(tmp_path)
        assert snapshot["state"] == {"n": 1}
        log.close()

    def test_suspended_appends_are_dropped(self, tmp_path):
        log = DurableLog(tmp_path)
        with log.suspended():
            assert log.append("ghost", {}) is None
        assert log.append("real", {}) == 1
        log.close()
        _, records = DurableLog.read(tmp_path)
        assert [r["kind"] for r in records] == ["real"]

    def test_counters_recorded(self, tmp_path):
        recorder = InMemoryRecorder()
        log = DurableLog(tmp_path, recorder=recorder)
        log.append("a", {})
        log.write_snapshot({})
        log.close()
        assert recorder.counters["durable.appends"] == 1
        assert recorder.counters["durable.snapshots"] == 1
        assert recorder.counters["durable.fsyncs"] >= 1

    def test_invalid_fsync_every_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            DurableLog(tmp_path, fsync_every=0)


# -- DurableDatabase: recover at every prefix ------------------------------


def _db_state(database):
    """Every observable of an ApDatabase, encoding-exact."""
    return {
        segment_id: (
            [
                encode_message(r)
                for r in database.segment(segment_id).reports
            ],
            [
                (r.x, r.y, r.credits)
                for r in database.segment(segment_id).fused_aps
            ],
            database.segment(segment_id).generation,
        )
        for segment_id in database.segment_ids()
    }


db_ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("upload"),
            st.integers(0, 3),  # vehicle
            st.integers(0, 1),  # segment
            st.lists(st.integers(0, 99), min_size=1, max_size=3),  # ap xs
        ),
        st.tuples(
            st.just("publish"),
            st.integers(0, 1),  # segment
            st.lists(st.integers(0, 99), max_size=3),  # fused xs
        ),
    ),
    max_size=8,
)


class TestDurableDatabaseCrashRecovery:
    @given(ops=db_ops)
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_recover_at_every_prefix_matches_in_memory(self, ops, tmp_path):
        # tmp_path is reused across hypothesis examples: isolate each.
        example_dir = tmp_path / f"ex-{abs(hash(tuple(map(str, ops))))}"
        alive = ApDatabase()
        durable = DurableDatabase(DurableLog(example_dir))
        for op in ops:
            if op[0] == "upload":
                _, vehicle, segment, xs = op
                report = _report(f"v{vehicle}", SEGMENTS[segment], xs)
                alive.segment(report.segment_id).add_report(report)
                durable.segment(report.segment_id).add_report(report)
            else:
                _, segment, xs = op
                fused = [
                    ApRecord(x=float(x), y=float(x)) for x in xs
                ]
                alive.segment(SEGMENTS[segment]).publish(list(fused))
                durable.segment(SEGMENTS[segment]).publish(list(fused))
            # Tear the durable database down and recover it from disk
            # after *every* operation; the sequence continues on the
            # recovered instance.
            durable.log.crash()
            durable = DurableDatabase.recover(example_dir)
            assert _db_state(durable) == _db_state(alive)

    @given(ops=db_ops, cut=st.integers(0, 8))
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_snapshot_mid_sequence_changes_nothing(self, ops, cut, tmp_path):
        example_dir = tmp_path / (
            f"snap-{cut}-{abs(hash(tuple(map(str, ops))))}"
        )
        alive = ApDatabase()
        durable = DurableDatabase(DurableLog(example_dir))
        for index, op in enumerate(ops):
            if op[0] == "upload":
                _, vehicle, segment, xs = op
                report = _report(f"v{vehicle}", SEGMENTS[segment], xs)
                alive.segment(report.segment_id).add_report(report)
                durable.segment(report.segment_id).add_report(report)
            else:
                _, segment, xs = op
                fused = [ApRecord(x=float(x), y=float(x)) for x in xs]
                alive.segment(SEGMENTS[segment]).publish(list(fused))
                durable.segment(SEGMENTS[segment]).publish(list(fused))
            if index == cut:
                durable.write_snapshot()
        durable.log.close()
        recovered = DurableDatabase.recover(example_dir)
        assert _db_state(recovered) == _db_state(alive)


# -- DurableCrowdServer ----------------------------------------------------


def _server_state(server):
    """Every observable of a crowd-server, exact."""
    return {
        "segments": {
            segment_id: (
                [
                    encode_message(r)
                    for r in server.database.segment(segment_id).reports
                ],
                encode_message(server.download(segment_id)),
            )
            for segment_id in server.database.segment_ids()
        },
        "pending": {
            key: encode_message(message)
            for key, message in server._pending_assignments.items()
        },
        "reliabilities": dict(server._reliabilities),
        "rng": server._rng.bit_generator.state,
    }


def _make_durable(tmp_path, **kwargs):
    server = DurableCrowdServer(
        tmp_path, ServerConfig(workers_per_task=2), rng=11, **kwargs
    )
    for segment_id in SEGMENTS:
        server.register_segment(segment_id, _grid())
    return server


def _make_alive():
    server = CrowdServer(ServerConfig(workers_per_task=2), rng=11)
    for segment_id in SEGMENTS:
        server.register_segment(segment_id, _grid())
    return server


def _submit_all(server, assignments, segment_id, label_rng):
    """Answer every assigned task with labels drawn from ``label_rng``."""
    for vehicle_id, message in assignments.items():
        labels = tuple(
            (task_id, int(label_rng.choice((-1, 1))))
            for task_id, _, _ in message.tasks
        )
        server.submit_labels(
            segment_id,
            LabelSubmission(
                vehicle_id=vehicle_id, labels=labels, segment_id=segment_id
            ),
        )


server_ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("upload"),
            st.integers(0, 2),
            st.integers(0, 1),
            st.lists(st.integers(0, 99), min_size=1, max_size=2),
        ),
        st.tuples(st.just("round"), st.integers(0, 1)),
    ),
    min_size=1,
    max_size=6,
)


class TestDurableCrowdServerCrashRecovery:
    @given(ops=server_ops, label_seed=st.integers(0, 2**16))
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_recover_at_every_prefix_matches_in_memory(
        self, ops, label_seed, tmp_path
    ):
        example_dir = tmp_path / (
            f"srv-{label_seed}-{abs(hash(tuple(map(str, ops))))}"
        )
        alive = _make_alive()
        durable = _make_durable(example_dir)
        alive_labels = np.random.default_rng(label_seed)
        durable_labels = np.random.default_rng(label_seed)
        open_rounds = set()
        try:
            for op in ops:
                if op[0] == "upload":
                    _, vehicle, segment, xs = op
                    report = _report(f"v{vehicle}", SEGMENTS[segment], xs)
                    alive.receive_report(report)
                    durable.receive_report(report)
                elif op[0] == "round":
                    segment_id = SEGMENTS[op[1]]
                    if (
                        segment_id in open_rounds
                        or not alive.database.segment(segment_id).vehicles()
                    ):
                        continue
                    a_assign = alive.open_round(segment_id)
                    d_assign = durable.open_round(segment_id)
                    assert {
                        v: encode_message(m) for v, m in a_assign.items()
                    } == {v: encode_message(m) for v, m in d_assign.items()}
                    # Crash between opening and labeling: the recovered
                    # round must be pending again for every vehicle.
                    durable.close()
                    durable = DurableCrowdServer.recover(
                        example_dir, ServerConfig(workers_per_task=2)
                    )
                    assert _server_state(durable) == _server_state(alive)
                    _submit_all(alive, a_assign, segment_id, alive_labels)
                    _submit_all(
                        durable, d_assign, segment_id, durable_labels
                    )
                    alive.aggregate(segment_id)
                    durable.aggregate(segment_id)
                durable.close()
                durable = DurableCrowdServer.recover(
                    example_dir, ServerConfig(workers_per_task=2)
                )
                assert _server_state(durable) == _server_state(alive)
        finally:
            durable.close()

    def test_open_round_assignments_are_pending_after_recovery(
        self, tmp_path
    ):
        durable = _make_durable(tmp_path / "d")
        durable.receive_report(_report("v0", "seg-a", [10, 20]))
        durable.receive_report(_report("v1", "seg-a", [30]))
        assignments = durable.open_round("seg-a")
        durable.log.crash()
        recovered = DurableCrowdServer.recover(
            tmp_path / "d", ServerConfig(workers_per_task=2)
        )
        try:
            for vehicle_id, message in assignments.items():
                pending = recovered._pending_assignments[
                    ("seg-a", vehicle_id)
                ]
                assert encode_message(pending) == encode_message(message)
        finally:
            recovered.close()

    def test_unflushed_records_die_with_the_crash(self, tmp_path):
        durable = _make_durable(tmp_path / "d", fsync_every=50)
        durable.receive_report(_report("v0", "seg-a", [10]))
        durable.log.crash()
        recovered = DurableCrowdServer.recover(
            tmp_path / "d", ServerConfig(workers_per_task=2)
        )
        try:
            # The segment registrations happened before the report and
            # were lost together with it — nothing was ever flushed.
            assert recovered.database.segment_ids() == []
        finally:
            recovered.close()

    def test_snapshot_every_compacts_and_still_recovers(self, tmp_path):
        durable = _make_durable(tmp_path / "d", snapshot_every=3)
        for index in range(4):
            durable.receive_report(
                _report(f"v{index}", "seg-a", [10 * index + 5])
            )
        state = durable.snapshot_state()
        durable.close()
        assert (tmp_path / "d" / "snapshot.json").exists()
        recovered = DurableCrowdServer.recover(
            tmp_path / "d", ServerConfig(workers_per_task=2)
        )
        try:
            assert recovered.snapshot_state() == state
        finally:
            recovered.close()

    def test_recovery_span_and_replay_counter(self, tmp_path):
        durable = _make_durable(tmp_path / "d")
        durable.receive_report(_report("v0", "seg-a", [10]))
        durable.close()
        recorder = InMemoryRecorder()
        recovered = DurableCrowdServer.recover(
            tmp_path / "d", ServerConfig(workers_per_task=2), recorder=recorder
        )
        try:
            assert recorder.counters["durable.records.replayed"] > 0
            assert any("durable.recover" in name for name in recorder.spans)
        finally:
            recovered.close()

    def test_invalid_snapshot_every_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            DurableCrowdServer(tmp_path, snapshot_every=0)


# -- BlockDurableLog -------------------------------------------------------


class TestBlockDurableLog:
    def test_append_and_reopen(self, tmp_path):
        from repro.middleware.durable import BlockDurableLog

        log = BlockDurableLog(tmp_path)
        assert log.is_fresh
        assert log.append("a", {"x": 1}) == 1
        assert log.append("b", {"y": 2}) == 2
        log.close()
        snapshot, records = BlockDurableLog.read(tmp_path)
        assert snapshot is None
        assert [(r["seq"], r["kind"]) for r in records] == [(1, "a"), (2, "b")]

    def test_reopened_log_continues_the_sequence(self, tmp_path):
        from repro.middleware.durable import BlockDurableLog

        log = BlockDurableLog(tmp_path)
        log.append("a", {})
        log.close()
        log2 = BlockDurableLog(tmp_path)
        assert not log2.is_fresh
        assert log2.last_seq == 1
        assert log2.append("b", {}) == 2
        log2.close()
        _, records = BlockDurableLog.read(tmp_path)
        assert [r["kind"] for r in records] == ["a", "b"]

    def test_wal_is_block_padded_and_preallocated(self, tmp_path):
        from repro.middleware.durable import (
            _INITIAL_BLOCK_WAL_BYTES,
            _WAL_BLOCK_BYTES,
            BlockDurableLog,
        )

        log = BlockDurableLog(tmp_path)
        log.append("a", {"payload": "x" * 100})
        log.close()
        wal = tmp_path / "wal.blk"
        assert wal.stat().st_size == _INITIAL_BLOCK_WAL_BYTES
        data = wal.read_bytes()
        # One batch, padded to a block boundary with NULs.
        first_block = data[:_WAL_BLOCK_BYTES]
        assert first_block.rstrip(b"\x00").endswith(b"}\n")
        assert data[_WAL_BLOCK_BYTES] == 0

    def test_torn_tail_block_is_tolerated(self, tmp_path):
        from repro.middleware.durable import BlockDurableLog

        log = BlockDurableLog(tmp_path)
        log.append("kept", {})
        log.append("torn", {"pad": "y" * 64})
        log.close()
        wal = tmp_path / "wal.blk"
        data = bytearray(wal.read_bytes())
        # Corrupt the second batch's JSON mid-record (a torn write).
        second = data.index(b'"torn"')
        data[second : second + 4] = b"\x01\x02\x03\x04"
        wal.write_bytes(bytes(data))
        _, records = BlockDurableLog.read(tmp_path)
        assert [r["kind"] for r in records] == ["kept"]

    def test_snapshot_compaction_resets_the_wal(self, tmp_path):
        from repro.middleware.durable import BlockDurableLog

        log = BlockDurableLog(tmp_path)
        log.append("a", {})
        log.write_snapshot({"state": 1})
        log.append("b", {})
        log.close()
        snapshot, records = BlockDurableLog.read(tmp_path)
        assert snapshot["state"] == {"state": 1}
        assert [r["kind"] for r in records] == ["b"]

    def test_odirect_fallback_is_counted_not_fatal(self, tmp_path):
        from repro.middleware.durable import BlockDurableLog

        recorder = InMemoryRecorder()
        log = BlockDurableLog(tmp_path, o_direct=True, recorder=recorder)
        log.append("a", {})
        log.close()
        # Whether O_DIRECT stuck depends on the filesystem; either the
        # log is running direct or the fallback was counted — never an
        # exception, and the records are readable regardless.
        if not log.o_direct:
            assert recorder.counters.get("durable.odirect_fallbacks") == 1
        assert [r["kind"] for r in BlockDurableLog.read(tmp_path)[1]] == ["a"]


class TestWalFormatSelection:
    def test_detect_and_open(self, tmp_path):
        from repro.middleware.durable import (
            BlockDurableLog,
            detect_wal_format,
            open_wal,
        )

        assert detect_wal_format(tmp_path / "none") is None
        jsonl = open_wal(tmp_path / "j")
        jsonl.append("a", {})
        jsonl.close()
        assert detect_wal_format(tmp_path / "j") == "jsonl"
        assert not isinstance(open_wal(tmp_path / "j"), BlockDurableLog)

        block = open_wal(tmp_path / "b", wal_format="block")
        block.append("a", {})
        block.close()
        assert detect_wal_format(tmp_path / "b") == "block"
        reopened = open_wal(tmp_path / "b")  # None ⇒ reuse what is there
        assert isinstance(reopened, BlockDurableLog)
        reopened.close()

    def test_unknown_format_rejected(self, tmp_path):
        from repro.middleware.durable import open_wal

        with pytest.raises(ValueError, match="wal_format"):
            open_wal(tmp_path, wal_format="parquet")

    def test_foreign_wal_rejected(self, tmp_path):
        from repro.middleware.durable import BlockDurableLog

        jsonl = DurableLog(tmp_path / "j")
        jsonl.append("a", {})
        jsonl.close()
        with pytest.raises(DurableLogError, match="refusing"):
            BlockDurableLog(tmp_path / "j")

        block = BlockDurableLog(tmp_path / "b")
        block.append("a", {})
        block.close()
        with pytest.raises(DurableLogError, match="refusing"):
            DurableLog(tmp_path / "b")

    def test_server_on_block_wal_recovers_identically(self, tmp_path):
        alive = _make_alive()
        durable = _make_durable(tmp_path / "d", wal_format="block")
        assert durable.wal_format == "block"
        for index in range(3):
            report = _report(f"v{index}", "seg-a", [10 * index + 5])
            alive.receive_report(report)
            durable.receive_report(report)
        a_assign = alive.open_round("seg-a")
        d_assign = durable.open_round("seg-a")
        assert {v: encode_message(m) for v, m in a_assign.items()} == {
            v: encode_message(m) for v, m in d_assign.items()
        }
        durable.log.crash()
        recovered = DurableCrowdServer.recover(
            tmp_path / "d", ServerConfig(workers_per_task=2)
        )
        try:
            assert recovered.wal_format == "block"
            assert _server_state(recovered) == _server_state(alive)
        finally:
            recovered.close()


# -- segment handoff bundles ----------------------------------------------


class TestSegmentExportInstall:
    def _loaded_server(self, directory, **kwargs):
        server = _make_durable(directory, **kwargs)
        for index in range(3):
            server.receive_report(
                _report(f"v{index}", "seg-a", [10 * index + 5])
            )
        server.receive_report(_report("v0", "seg-b", [42]))
        return server

    def test_export_install_round_trip_is_exact(self, tmp_path):
        source = self._loaded_server(tmp_path / "src")
        target = DurableCrowdServer(
            tmp_path / "dst", ServerConfig(workers_per_task=2), rng=11
        )
        try:
            before = _server_state(source)["segments"]["seg-a"]
            bundle = source.export_segment("seg-a")
            assert "seg-a" not in source.database.segment_ids()
            target.install_segment(bundle)
            assert _server_state(target)["segments"]["seg-a"] == before
        finally:
            source.close()
            target.close()

    def test_export_carries_the_open_round(self, tmp_path):
        source = self._loaded_server(tmp_path / "src")
        target = DurableCrowdServer(
            tmp_path / "dst", ServerConfig(workers_per_task=2), rng=11
        )
        try:
            assignments = source.open_round("seg-a")
            target.install_segment(source.export_segment("seg-a"))
            for vehicle_id, message in assignments.items():
                pending = target._pending_assignments[("seg-a", vehicle_id)]
                assert encode_message(pending) == encode_message(message)
        finally:
            source.close()
            target.close()

    def test_both_halves_survive_a_crash(self, tmp_path):
        source = self._loaded_server(tmp_path / "src")
        target = DurableCrowdServer(
            tmp_path / "dst", ServerConfig(workers_per_task=2), rng=11
        )
        before = _server_state(source)["segments"]["seg-a"]
        target.install_segment(source.export_segment("seg-a"))
        source.log.crash()
        target.log.crash()
        re_source = DurableCrowdServer.recover(
            tmp_path / "src", ServerConfig(workers_per_task=2)
        )
        re_target = DurableCrowdServer.recover(
            tmp_path / "dst", ServerConfig(workers_per_task=2)
        )
        try:
            assert "seg-a" not in re_source.database.segment_ids()
            assert _server_state(re_target)["segments"]["seg-a"] == before
        finally:
            re_source.close()
            re_target.close()

    def test_duplicate_install_rejected(self, tmp_path):
        source = self._loaded_server(tmp_path / "src")
        try:
            bundle = source.export_segment("seg-a")
            source.install_segment(bundle)  # moving it back is fine
            with pytest.raises(DurableLogError, match="already"):
                source.install_segment(bundle)
        finally:
            source.close()
