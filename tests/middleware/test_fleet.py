"""Tests for the fleet campaign orchestrator."""

import pytest

from repro.core.engine import EngineConfig
from repro.core.window import WindowConfig
from repro.geo.points import BoundingBox, Point
from repro.geo.trajectory import Trajectory
from repro.metrics.errors import mean_distance_error
from repro.middleware.fleet import FleetCampaign, VehiclePlan
from repro.middleware.segments import SegmentPlanner
from repro.radio.pathloss import PathLossModel
from repro.sim.world import AccessPoint, World

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def world():
    return World(
        access_points=[
            AccessPoint(ap_id="w", position=Point(60, 70), radio_range_m=60.0),
            AccessPoint(ap_id="e", position=Point(260, 70), radio_range_m=60.0),
        ],
        channel=PathLossModel(shadowing_sigma_db=0.5),
    )


@pytest.fixture(scope="module")
def planner():
    return SegmentPlanner(BoundingBox(0, 0, 320, 140), n_rows=1, n_cols=2)


@pytest.fixture
def campaign(world, planner):
    config = EngineConfig(
        window=WindowConfig(size=24, step=8),
        readings_per_round=6,
        max_aps_per_round=3,
        communication_radius_m=60.0,
    )
    return FleetCampaign(world, planner, config)


@pytest.fixture(scope="module")
def route():
    return Trajectory(
        [Point(10, 30), Point(310, 30), Point(310, 110), Point(10, 110)],
        closed=True,
    )


class TestEnrollment:
    def test_duplicate_vehicle_rejected(self, campaign, route):
        campaign.add_vehicle("bus-1", route, n_samples=50)
        with pytest.raises(ValueError, match="already enrolled"):
            campaign.add_vehicle("bus-1", route, n_samples=50)

    def test_plan_validation(self, route):
        with pytest.raises(ValueError):
            VehiclePlan(vehicle_id="", route=route, n_samples=10)
        with pytest.raises(ValueError):
            VehiclePlan(vehicle_id="v", route=route, n_samples=0)
        with pytest.raises(ValueError):
            VehiclePlan(vehicle_id="v", route=route, n_samples=5, speed_mph=0)

    def test_run_without_vehicles(self, campaign):
        with pytest.raises(RuntimeError, match="no vehicles"):
            campaign.run(rng=0)


class TestCampaignRun:
    @pytest.fixture(scope="class")
    def outcome(self, world, planner, route):
        config = EngineConfig(
            window=WindowConfig(size=24, step=8),
            readings_per_round=6,
            max_aps_per_round=3,
            communication_radius_m=60.0,
        )
        fleet = FleetCampaign(world, planner, config)
        for index in range(2):
            fleet.add_vehicle(
                f"bus-{index}", route, n_samples=150, speed_mph=12.0
            )
        return fleet.run(rng=11)

    def test_both_segments_mapped(self, outcome):
        assert set(outcome.segments_mapped) == {"seg-0-0", "seg-0-1"}

    def test_city_map_accuracy(self, outcome, world):
        city = outcome.city_map()
        assert len(city) >= 2
        error = mean_distance_error(
            world.ap_positions(), city, max_match_distance_m=30.0
        )
        assert error < 15.0

    def test_vehicles_visited_both_segments(self, outcome):
        for segments in outcome.per_vehicle_segments.values():
            assert set(segments) == {"seg-0-0", "seg-0-1"}

    def test_reliabilities_reported(self, outcome):
        assert set(outcome.reliabilities) == {"bus-0", "bus-1"}
        for q in outcome.reliabilities.values():
            assert 0.0 <= q <= 1.0

    def test_segment_map_accessor(self, outcome, world):
        west = outcome.segment_map("seg-0-0")
        assert west
        assert min(
            p.distance_to(world.ap("w").position) for p in west
        ) < 15.0

    def test_lookup_service(self, outcome):
        service = outcome.lookup_service()
        assert len(service.all_aps()) >= 2

    def test_reproducible(self, world, planner, route):
        config = EngineConfig(
            window=WindowConfig(size=24, step=8),
            readings_per_round=6,
            max_aps_per_round=3,
            communication_radius_m=60.0,
        )

        def run_once():
            fleet = FleetCampaign(world, planner, config)
            fleet.add_vehicle("bus-0", route, n_samples=120, speed_mph=12.0)
            fleet.add_vehicle("bus-1", route, n_samples=120, speed_mph=12.0)
            return fleet.run(rng=42)

        a, b = run_once(), run_once()
        assert [
            (p.x, p.y) for p in a.city_map()
        ] == [(p.x, p.y) for p in b.city_map()]


class TestCityMapDedup:
    def test_dedup_radius_validation(self, world, planner, route):
        from repro.core.engine import EngineConfig
        from repro.core.window import WindowConfig
        from repro.middleware.fleet import FleetCampaign

        config = EngineConfig(
            window=WindowConfig(size=24, step=8),
            readings_per_round=6,
            max_aps_per_round=3,
            communication_radius_m=60.0,
        )
        fleet = FleetCampaign(world, planner, config)
        fleet.add_vehicle("bus-0", route, n_samples=80, speed_mph=12.0)
        outcome = fleet.run(rng=3)
        with pytest.raises(ValueError):
            outcome.city_map(dedup_radius_m=-1.0)

    def test_dedup_merges_border_duplicates(self, world, planner, route):
        from repro.core.engine import EngineConfig
        from repro.core.window import WindowConfig
        from repro.middleware.fleet import FleetCampaign

        config = EngineConfig(
            window=WindowConfig(size=24, step=8),
            readings_per_round=6,
            max_aps_per_round=3,
            communication_radius_m=60.0,
        )
        fleet = FleetCampaign(world, planner, config)
        for index in range(2):
            fleet.add_vehicle(
                f"bus-{index}", route, n_samples=120, speed_mph=12.0
            )
        outcome = fleet.run(rng=5)
        raw = outcome.city_map(dedup_radius_m=0)
        deduped = outcome.city_map(dedup_radius_m=20.0)
        assert len(deduped) <= len(raw)
