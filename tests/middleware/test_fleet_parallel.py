"""Parallel-vs-serial determinism of the fleet and experiment runners.

The whole point of pre-spawned child generators (``spawn_children``) and
submission-order result collection (``run_tasks``) is that the worker
count is *not* an input to the computation: a campaign run with 2 or 4
processes must be bit-identical to the serial run with the same seed.
"""

import pytest

from repro.core.engine import EngineConfig
from repro.core.window import WindowConfig
from repro.experiments.common import crowdwifi_estimate, drive_and_collect
from repro.geo.points import BoundingBox, Point
from repro.geo.trajectory import Trajectory
from repro.middleware.fleet import FleetCampaign
from repro.middleware.segments import SegmentPlanner
from repro.radio.pathloss import PathLossModel
from repro.sim.scenarios import uci_campus
from repro.sim.world import AccessPoint, World
from repro.util.parallel import resolve_workers, run_tasks

pytestmark = pytest.mark.slow


def _square(x):
    return x * x


class TestRunTasks:
    def test_serial_default(self):
        assert run_tasks(_square, [1, 2, 3]) == [1, 4, 9]

    def test_order_preserved_across_pool(self):
        tasks = list(range(12))
        assert run_tasks(_square, tasks, n_workers=3) == [
            _square(t) for t in tasks
        ]

    def test_empty(self):
        assert run_tasks(_square, [], n_workers=4) == []

    def test_resolve_workers(self):
        assert resolve_workers(None, 10) == 1
        assert resolve_workers(1, 10) == 1
        # Capped at the task count: no idle processes.
        assert resolve_workers(8, 2) <= 2
        with pytest.raises(ValueError):
            resolve_workers(0, 10)


@pytest.fixture(scope="module")
def world():
    return World(
        access_points=[
            AccessPoint(ap_id="w", position=Point(60, 70), radio_range_m=60.0),
            AccessPoint(ap_id="e", position=Point(260, 70), radio_range_m=60.0),
        ],
        channel=PathLossModel(shadowing_sigma_db=0.5),
    )


@pytest.fixture(scope="module")
def planner():
    return SegmentPlanner(BoundingBox(0, 0, 320, 140), n_rows=1, n_cols=2)


@pytest.fixture(scope="module")
def route():
    return Trajectory(
        [Point(10, 30), Point(310, 30), Point(310, 110), Point(10, 110)],
        closed=True,
    )


def _engine_config():
    return EngineConfig(
        window=WindowConfig(size=24, step=8),
        readings_per_round=6,
        max_aps_per_round=3,
        communication_radius_m=60.0,
    )


def _run_campaign(world, planner, route, n_workers):
    fleet = FleetCampaign(world, planner, _engine_config())
    fleet.add_vehicle("bus-0", route, n_samples=120, speed_mph=12.0)
    fleet.add_vehicle("bus-1", route, n_samples=120, speed_mph=12.0)
    return fleet.run(rng=42, n_workers=n_workers)


def _fingerprint(outcome):
    return (
        [(p.x, p.y) for p in outcome.city_map()],
        outcome.segments_mapped,
        outcome.per_vehicle_segments,
        outcome.reliabilities,
    )


class TestFleetParallelDeterminism:
    @pytest.fixture(scope="class")
    def serial(self, world, planner, route):
        return _fingerprint(_run_campaign(world, planner, route, None))

    @pytest.mark.parametrize("n_workers", [2, 4])
    def test_workers_match_serial(self, serial, world, planner, route, n_workers):
        parallel = _fingerprint(
            _run_campaign(world, planner, route, n_workers)
        )
        assert parallel == serial


class TestCrowdwifiEstimateParallelDeterminism:
    def test_workers_match_serial(self):
        scenario = uci_campus()
        config = EngineConfig(
            window=WindowConfig(size=20, step=10),
            readings_per_round=5,
            max_aps_per_round=3,
            communication_radius_m=100.0,
        )
        traces = [
            drive_and_collect(
                scenario, n_samples=40, start_offset_m=100.0 * i, rng=10 + i
            )
            for i in range(3)
        ]
        serial = crowdwifi_estimate(scenario, traces, config, rng=7)
        for n_workers in (2, 3):
            parallel = crowdwifi_estimate(
                scenario, traces, config, rng=7, n_workers=n_workers
            )
            assert [(p.x, p.y) for p in parallel] == [
                (p.x, p.y) for p in serial
            ]
