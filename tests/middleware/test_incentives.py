"""Tests for the incentive / privacy ledger (§5.5)."""

import pytest

from repro.middleware.incentives import (
    IncentiveLedger,
    OfferStatus,
)


@pytest.fixture
def ledger():
    return IncentiveLedger(base_reward=2.0, quality_bonus=1.0)


class TestOffers:
    def test_offer_lifecycle_accept_complete(self, ledger):
        offer = ledger.offer_task("bus-1", "seg-a")
        assert offer.status is OfferStatus.PENDING
        ledger.accept(offer.offer_id)
        assert ledger.offer(offer.offer_id).status is OfferStatus.ACCEPTED
        credit = ledger.complete(offer.offer_id)
        assert credit == 2.0
        assert ledger.account("bus-1").balance == 2.0
        assert ledger.account("bus-1").tasks_completed == 1

    def test_decline_forfeits_reward_only(self, ledger):
        offer = ledger.offer_task("bus-1", "seg-a")
        ledger.decline(offer.offer_id)
        account = ledger.account("bus-1")
        assert account.balance == 0.0
        assert account.offers_declined == 1
        assert account.participation_rate == 0.0

    def test_quality_bonus_scales_with_reliability(self, ledger):
        hammer = ledger.offer_task("hammer", "seg-a")
        spammer = ledger.offer_task("spammer", "seg-a")
        ledger.accept(hammer.offer_id)
        ledger.accept(spammer.offer_id)
        hammer_credit = ledger.complete(hammer.offer_id, reliability=1.0)
        spammer_credit = ledger.complete(spammer.offer_id, reliability=0.5)
        assert hammer_credit == pytest.approx(3.0)  # base 2 + bonus 1
        assert spammer_credit == pytest.approx(2.0)  # base only

    def test_cannot_complete_pending(self, ledger):
        offer = ledger.offer_task("v", "s")
        with pytest.raises(ValueError, match="pending"):
            ledger.complete(offer.offer_id)

    def test_cannot_double_decline(self, ledger):
        offer = ledger.offer_task("v", "s")
        ledger.decline(offer.offer_id)
        with pytest.raises(ValueError):
            ledger.decline(offer.offer_id)

    def test_unknown_offer(self, ledger):
        with pytest.raises(KeyError):
            ledger.offer(99)

    def test_reliability_validation(self, ledger):
        offer = ledger.offer_task("v", "s")
        ledger.accept(offer.offer_id)
        with pytest.raises(ValueError):
            ledger.complete(offer.offer_id, reliability=1.5)

    def test_empty_ids_rejected(self, ledger):
        with pytest.raises(ValueError):
            ledger.offer_task("", "s")


class TestQueries:
    def test_pending_offers(self, ledger):
        a = ledger.offer_task("v", "s1")
        b = ledger.offer_task("v", "s2")
        ledger.accept(a.offer_id)
        pending = ledger.pending_offers("v")
        assert [o.offer_id for o in pending] == [b.offer_id]

    def test_participation_rate_defaults_to_one(self, ledger):
        assert ledger.account("new").participation_rate == 1.0

    def test_total_paid(self, ledger):
        for vid in ("a", "b"):
            offer = ledger.offer_task(vid, "s")
            ledger.accept(offer.offer_id)
            ledger.complete(offer.offer_id)
        assert ledger.total_paid() == 4.0

    def test_negative_rewards_rejected(self):
        with pytest.raises(ValueError):
            IncentiveLedger(base_reward=-1.0)
