"""Batch offline pipeline: parallel == serial, full task pools, caching.

Covers the scaled server half: :meth:`CrowdServer.open_rounds` /
:meth:`CrowdServer.aggregate_rounds` must produce bit-identical state
for any worker count, the perturbation bootstrap must never silently
shrink the §5.2 task pool, label routing stays correct through the O(1)
per-vehicle index, and download snapshots are cached until publish.
"""

import numpy as np
import pytest

from repro.geo.grid import Grid
from repro.geo.points import BoundingBox, Point
from repro.middleware.protocol import (
    ApRecord,
    LabelSubmission,
    UploadReport,
    decode_message,
    encode_message,
)
from repro.middleware.server import (
    CrowdServer,
    ServerConfig,
    _candidate_patterns,
    _perturb_pattern,
)
from repro.util.rng import ensure_rng

SEGMENTS = ("seg-a", "seg-b", "seg-c")


def _grid():
    return Grid(box=BoundingBox(0, 0, 200, 160), lattice_length=8.0)


def _populate(server, *, n_vehicles=8, seed=0):
    """Register every segment and upload per-vehicle reports."""
    rng = ensure_rng(seed)
    for segment_id in SEGMENTS:
        server.register_segment(segment_id, _grid())
    for segment_index, segment_id in enumerate(SEGMENTS):
        for v in range(n_vehicles):
            offsets = rng.uniform(10.0, 150.0, size=(2 + (v % 2), 2))
            server.receive_report(
                UploadReport(
                    vehicle_id=f"veh-{v}",
                    segment_id=segment_id,
                    timestamp=float(segment_index),
                    aps=tuple(
                        ApRecord(x=float(x), y=float(y)) for x, y in offsets
                    ),
                    lattice_length_m=8.0,
                )
            )


def _answer_all(messages):
    """Deterministic labeling: +1 for even task ids, -1 for odd."""
    submissions = {}
    for vehicle_id, message in messages.items():
        submissions[vehicle_id] = LabelSubmission(
            vehicle_id=vehicle_id,
            labels=tuple(
                (task_id, 1 if task_id % 2 == 0 else -1)
                for task_id, _segment, _pattern in message.tasks
            ),
        )
    return submissions


def _run_batch(n_workers):
    server = CrowdServer(ServerConfig(workers_per_task=3), rng=42)
    _populate(server, seed=7)
    assignments = server.open_rounds(list(SEGMENTS), n_workers=n_workers)
    for segment_id in SEGMENTS:
        for submission in _answer_all(assignments[segment_id]).values():
            server.submit_labels(segment_id, submission)
    snapshots = server.aggregate_rounds(list(SEGMENTS), n_workers=n_workers)
    return server, assignments, snapshots


class TestParallelEqualsSerial:
    def test_open_and_aggregate_bit_identical(self):
        serial_server, serial_assignments, serial_snaps = _run_batch(None)
        parallel_server, parallel_assignments, parallel_snaps = _run_batch(4)
        assert serial_assignments == parallel_assignments
        for segment_id in SEGMENTS:
            left, right = serial_snaps[segment_id], parallel_snaps[segment_id]
            assert left.generation == right.generation == 1
            assert left.aps == right.aps
        for vehicle_id, reliability in serial_server._reliabilities.items():
            assert parallel_server._reliabilities[vehicle_id] == reliability

    def test_batch_apis_publish_every_segment(self):
        server, _, snapshots = _run_batch(None)
        assert set(snapshots) == set(SEGMENTS)
        for segment_id in SEGMENTS:
            assert server.download(segment_id).generation == 1
            assert len(server.download(segment_id).aps) >= 1

    def test_duplicate_segments_rejected(self):
        server = CrowdServer(rng=0)
        _populate(server)
        with pytest.raises(ValueError):
            server.open_rounds(["seg-a", "seg-a"])


class TestPerturbationPool:
    def test_perturb_never_returns_unchanged_pattern(self):
        grid = _grid()
        pattern = frozenset({grid.snap(Point(40, 40)), grid.snap(Point(90, 90))})
        for seed in range(50):
            variant = _perturb_pattern(pattern, grid, ensure_rng(seed))
            assert variant is not None
            assert variant != pattern

    @pytest.mark.parametrize("variants_per_pattern", [1, 2, 3])
    def test_pool_size_never_silently_shrinks(self, variants_per_pattern):
        grid = _grid()
        config = ServerConfig(
            perturbed_variants_per_pattern=variants_per_pattern
        )
        reports = [
            UploadReport(
                vehicle_id=f"v{i}",
                segment_id="seg-a",
                timestamp=0.0,
                aps=(ApRecord(x=30.0 + 20 * i, y=40.0), ApRecord(x=110.0, y=90.0)),
                lattice_length_m=8.0,
            )
            for i in range(3)
        ]
        for seed in range(20):
            patterns = _candidate_patterns(
                reports, grid, config, ensure_rng(seed)
            )
            n_reported = 3
            expected = n_reported * (1 + variants_per_pattern)
            assert len(patterns) == expected
            assert len(set(patterns)) == expected  # all distinct


class TestRoutingAndCaching:
    def test_wire_label_routes_to_oldest_open_round(self):
        server = CrowdServer(ServerConfig(workers_per_task=2), rng=1)
        _populate(server, n_vehicles=4)
        assignments = server.open_rounds(["seg-a", "seg-b"])
        submissions = _answer_all(assignments["seg-a"])
        for submission in submissions.values():
            assert server.handle_wire_message(encode_message(submission)) is None
        assert server.round_complete("seg-a")
        assert not server.round_complete("seg-b")

    def test_wire_label_without_open_round_is_error(self):
        server = CrowdServer(rng=1)
        _populate(server)
        reply = server.handle_wire_message(
            encode_message(
                LabelSubmission(vehicle_id="veh-0", labels=((0, 1),))
            )
        )
        assert "no open round" in decode_message(reply).reason

    def test_snapshot_cached_until_publish(self):
        server, _, _ = _run_batch(None)
        store = server.database.segment("seg-a")
        first = store.snapshot()
        assert store.snapshot() is first  # memoized between publishes
        store.publish(list(first.aps))
        second = store.snapshot()
        assert second is not first
        assert second.generation == first.generation + 1

    def test_vehicle_and_latest_caches(self):
        server = CrowdServer(rng=0)
        _populate(server, n_vehicles=5)
        store = server.database.segment("seg-b")
        assert store.vehicles() == [f"veh-{i}" for i in range(5)]
        latest = store.latest_report_of("veh-2")
        assert latest is not None and latest.segment_id == "seg-b"
        newer = UploadReport(
            vehicle_id="veh-2",
            segment_id="seg-b",
            timestamp=99.0,
            aps=(ApRecord(x=1.0, y=2.0),),
            lattice_length_m=8.0,
        )
        store.add_report(newer)
        assert store.latest_report_of("veh-2") is newer
        # Equal timestamps keep the earlier upload, matching a max() scan.
        tied = UploadReport(
            vehicle_id="veh-2",
            segment_id="seg-b",
            timestamp=99.0,
            aps=(ApRecord(x=3.0, y=4.0),),
            lattice_length_m=8.0,
        )
        store.add_report(tied)
        assert store.latest_report_of("veh-2") is newer

    def test_submit_labels_o1_index_still_validates(self):
        server = CrowdServer(ServerConfig(workers_per_task=3), rng=3)
        _populate(server, n_vehicles=4)
        assignments = server.open_rounds(["seg-a"])["seg-a"]
        with pytest.raises(KeyError):
            server.submit_labels(
                "seg-a",
                LabelSubmission(vehicle_id="stranger", labels=((0, 1),)),
            )
        vehicle_id, message = max(
            assignments.items(), key=lambda item: len(item[1].tasks)
        )
        assert len(message.tasks) >= 2
        incomplete = LabelSubmission(
            vehicle_id=vehicle_id,
            labels=tuple(
                (task_id, 1) for task_id, _segment, _pattern in message.tasks[:-1]
            ),
        )
        with pytest.raises(ValueError):
            server.submit_labels("seg-a", incomplete)
