"""Tests for the protocol messages and JSON codec."""

import pytest

from repro.geo.points import Point
from repro.middleware.protocol import (
    PROTOCOL_VERSION,
    ApRecord,
    DownloadResponse,
    LabelSubmission,
    ProtocolVersionError,
    TaskAssignmentMessage,
    UploadReport,
    decode_message,
    encode_message,
)


@pytest.fixture
def report():
    return UploadReport(
        vehicle_id="bus-7",
        segment_id="seg-3",
        timestamp=1234.5,
        aps=(ApRecord(x=10.0, y=20.0, credits=3.0), ApRecord(x=50.0, y=60.0)),
        lattice_length_m=8.0,
    )


class TestApRecord:
    def test_point_roundtrip(self):
        record = ApRecord.from_point(Point(1.5, -2.5), credits=4.0)
        assert record.to_point() == Point(1.5, -2.5)
        assert record.credits == 4.0


class TestValidation:
    def test_upload_report_requires_ids(self):
        with pytest.raises(ValueError):
            UploadReport(
                vehicle_id="", segment_id="s", timestamp=0.0, aps=(),
                lattice_length_m=8.0,
            )

    def test_upload_report_lattice(self):
        with pytest.raises(ValueError):
            UploadReport(
                vehicle_id="v", segment_id="s", timestamp=0.0, aps=(),
                lattice_length_m=0.0,
            )

    def test_label_submission_pm1(self):
        with pytest.raises(ValueError):
            LabelSubmission(vehicle_id="v", labels=((1, 2),))

    def test_label_submission_as_dict(self):
        submission = LabelSubmission(vehicle_id="v", labels=((3, 1), (7, -1)))
        assert submission.as_dict() == {3: 1, 7: -1}


class TestCodec:
    def test_upload_report_roundtrip(self, report):
        decoded = decode_message(encode_message(report))
        assert decoded == report

    def test_task_assignment_roundtrip(self):
        message = TaskAssignmentMessage(
            vehicle_id="v-1",
            tasks=((0, "seg-1", (3, 14)), (2, "seg-1", (7,))),
        )
        assert decode_message(encode_message(message)) == message

    def test_label_submission_roundtrip(self):
        message = LabelSubmission(vehicle_id="v-2", labels=((0, 1), (1, -1)))
        assert decode_message(encode_message(message)) == message

    def test_download_response_roundtrip(self):
        message = DownloadResponse(
            segment_id="seg-9",
            aps=(ApRecord(x=1.0, y=2.0, credits=5.0),),
            generation=3,
        )
        assert decode_message(encode_message(message)) == message

    def test_unknown_type_rejected_on_encode(self):
        with pytest.raises(TypeError):
            encode_message({"not": "a message"})

    def test_malformed_json_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            decode_message("{not json")

    def test_missing_fields_rejected(self):
        with pytest.raises(ValueError):
            decode_message('{"type": "upload_report"}')

    def test_unknown_type_rejected_on_decode(self):
        with pytest.raises(ValueError, match="unknown message type"):
            decode_message('{"v": 2, "type": "mystery", "body": {}}')

    def test_missing_version_rejected(self):
        with pytest.raises(ProtocolVersionError, match="protocol version"):
            decode_message('{"type": "lookup_request", "body": {}}')

    def test_wrong_version_rejected(self):
        with pytest.raises(ProtocolVersionError, match="protocol version 1"):
            decode_message('{"v": 1, "type": "lookup_request", "body": {}}')

    def test_version_error_is_value_error(self):
        assert issubclass(ProtocolVersionError, ValueError)

    def test_envelope_carries_version(self, report):
        import json

        assert json.loads(encode_message(report))["v"] == PROTOCOL_VERSION

    def test_encoding_is_deterministic(self, report):
        assert encode_message(report) == encode_message(report)
