"""Tests for road-segment planning."""

import pytest

from repro.geo.points import BoundingBox, Point
from repro.middleware.segments import SegmentPlanner
from repro.radio.rss import RssMeasurement


@pytest.fixture
def planner():
    return SegmentPlanner(BoundingBox(0, 0, 200, 100), n_rows=2, n_cols=4)


def reading(x, y, t=0.0):
    return RssMeasurement(rss_dbm=-60.0, position=Point(x, y), timestamp=t)


class TestTiling:
    def test_segment_count(self, planner):
        assert planner.n_segments == 8
        assert len(planner.all_segments()) == 8

    def test_segment_boxes_partition_area(self, planner):
        total_area = sum(s.box.area for s in planner.all_segments())
        assert total_area == pytest.approx(200 * 100)

    def test_segment_ids_stable(self, planner):
        assert planner.segment_id(0, 0) == "seg-0-0"
        assert planner.segment(1, 3).segment_id == "seg-1-3"

    def test_out_of_range(self, planner):
        with pytest.raises(IndexError):
            planner.segment_id(2, 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            SegmentPlanner(BoundingBox(0, 0, 10, 10), n_rows=0)
        with pytest.raises(ValueError):
            SegmentPlanner(BoundingBox(0, 0, 0, 10))

    def test_grid_covers_segment(self, planner):
        segment = planner.segment(0, 0)
        grid = segment.grid(10.0, margin_m=20.0)
        assert grid.box.min_x == pytest.approx(-20.0)
        assert grid.box.max_x == pytest.approx(70.0)


class TestLocate:
    def test_interior_points(self, planner):
        assert planner.locate(Point(10, 10)).segment_id == "seg-0-0"
        assert planner.locate(Point(190, 90)).segment_id == "seg-1-3"
        assert planner.locate(Point(60, 60)).segment_id == "seg-1-1"
        # Boundary points belong to the higher tile (floor semantics).
        assert planner.locate(Point(150, 80)).segment_id == "seg-1-3"

    def test_outside_clamps(self, planner):
        assert planner.locate(Point(-50, -50)).segment_id == "seg-0-0"
        assert planner.locate(Point(999, 999)).segment_id == "seg-1-3"

    def test_contained_by_own_box(self, planner):
        for x, y in ((10, 10), (60, 60), (150, 20), (199, 99)):
            point = Point(float(x), float(y))
            segment = planner.locate(point)
            assert segment.box.contains(point, tolerance=1e-9)


class TestSplitTrace:
    def test_partition_by_segment(self, planner):
        trace = [
            reading(10, 10, 0.0),
            reading(60, 10, 1.0),
            reading(12, 11, 2.0),
            reading(130, 80, 3.0),
        ]
        split = planner.split_trace(trace)
        assert set(split) == {"seg-0-0", "seg-0-1", "seg-1-2"}
        assert len(split["seg-0-0"]) == 2

    def test_order_preserved_within_segment(self, planner):
        trace = [reading(10, 10, float(t)) for t in range(5)]
        split = planner.split_trace(trace)
        times = [m.timestamp for m in split["seg-0-0"]]
        assert times == sorted(times)

    def test_empty_trace(self, planner):
        assert planner.split_trace([]) == {}


class TestSegmentsAlong:
    def test_first_visit_order(self, planner):
        positions = [Point(10, 10), Point(60, 10), Point(10, 12), Point(160, 70)]
        assert planner.segments_along(positions) == [
            "seg-0-0", "seg-0-1", "seg-1-3",
        ]

    def test_empty(self, planner):
        assert planner.segments_along([]) == []
