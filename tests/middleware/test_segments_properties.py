"""Property-based tests for segment planning (hypothesis)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.geo.points import BoundingBox, Point
from repro.middleware.segments import SegmentPlanner

planners = st.builds(
    SegmentPlanner,
    st.just(BoundingBox(0, 0, 300, 200)),
    n_rows=st.integers(min_value=1, max_value=6),
    n_cols=st.integers(min_value=1, max_value=6),
)
interior_points = st.tuples(
    st.floats(min_value=0, max_value=299.999),
    st.floats(min_value=0, max_value=199.999),
)


class TestSegmentProperties:
    @given(planners, interior_points)
    @settings(max_examples=60, deadline=None)
    def test_locate_is_a_partition(self, planner, raw):
        """Every interior point belongs to exactly one segment's box."""
        point = Point(*raw)
        located = planner.locate(point)
        assert located.box.contains(point, tolerance=1e-9)
        # It is the unique segment among all whose half-open tile owns it
        # (points on shared edges belong to the higher tile, so strict
        # interior membership may hold for ≤ 2 boxes but locate is fixed).
        owners = [
            s for s in planner.all_segments()
            if s.box.contains(point, tolerance=0.0)
        ]
        assert located.segment_id in {s.segment_id for s in owners}

    @given(planners)
    @settings(max_examples=30, deadline=None)
    def test_tiles_cover_the_area_exactly(self, planner):
        total = sum(s.box.area for s in planner.all_segments())
        assert total == pytest.approx(planner.area.area)

    @given(planners, st.lists(interior_points, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_split_preserves_every_reading(self, planner, raws):
        from repro.radio.rss import RssMeasurement

        trace = [
            RssMeasurement(
                rss_dbm=-60.0, position=Point(*raw), timestamp=float(i)
            )
            for i, raw in enumerate(raws)
        ]
        split = planner.split_trace(trace)
        total = sum(len(chunk) for chunk in split.values())
        assert total == len(trace)

    @given(planners, interior_points)
    @settings(max_examples=40, deadline=None)
    def test_segment_ids_roundtrip(self, planner, raw):
        segment = planner.locate(Point(*raw))
        row, col = map(int, segment.segment_id.split("-")[1:])
        assert planner.segment(row, col).segment_id == segment.segment_id
