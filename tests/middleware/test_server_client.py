"""Tests for the crowd-server and vehicle clients — the full §5 loop."""

import numpy as np
import pytest

from repro.core.engine import EngineConfig, OnlineCsEngine
from repro.core.window import WindowConfig
from repro.geo.grid import Grid
from repro.geo.points import BoundingBox, Point
from repro.middleware.client import CrowdVehicleClient, UserVehicleClient
from repro.middleware.protocol import (
    ApRecord,
    DownloadResponse,
    LabelSubmission,
    TaskAssignmentMessage,
    UploadReport,
)
from repro.middleware.server import CrowdServer, ServerConfig
from repro.radio.pathloss import PathLossModel


@pytest.fixture
def grid():
    return Grid(box=BoundingBox(0, 0, 200, 160), lattice_length=8.0)


@pytest.fixture
def server(grid):
    server = CrowdServer(ServerConfig(workers_per_task=3), rng=0)
    server.register_segment("seg-1", grid)
    return server


def upload(server, vehicle_id, locations, ts=0.0):
    server.receive_report(
        UploadReport(
            vehicle_id=vehicle_id,
            segment_id="seg-1",
            timestamp=ts,
            aps=tuple(ApRecord(x=p[0], y=p[1]) for p in locations),
            lattice_length_m=8.0,
        )
    )


class TestRegistrationAndUpload:
    def test_unregistered_segment_rejected(self, server):
        with pytest.raises(KeyError):
            upload_report = UploadReport(
                vehicle_id="v",
                segment_id="nope",
                timestamp=0.0,
                aps=(ApRecord(x=0, y=0),),
                lattice_length_m=8.0,
            )
            server.receive_report(upload_report)

    def test_segment_grid_lookup(self, server, grid):
        assert server.segment_grid("seg-1") is grid
        with pytest.raises(KeyError):
            server.segment_grid("other")

    def test_default_reliability(self, server):
        assert server.reliability_of("anyone") == 0.75


class TestOpenRound:
    def test_requires_reports(self, server):
        with pytest.raises(RuntimeError, match="no reports"):
            server.open_round("seg-1")

    def test_assignments_cover_all_vehicles(self, server):
        for vid in ("v1", "v2", "v3", "v4"):
            upload(server, vid, [(50, 50), (150, 100)])
        messages = server.open_round("seg-1")
        assert set(messages) == {"v1", "v2", "v3", "v4"}
        for vid, message in messages.items():
            assert message.vehicle_id == vid

    def test_tasks_include_reported_and_perturbed_patterns(self, server, grid):
        upload(server, "v1", [(50, 50)])
        upload(server, "v2", [(50, 50)])
        upload(server, "v3", [(51, 49)])  # same cell after snapping
        messages = server.open_round("seg-1")
        all_tasks = {
            task_id for m in messages.values() for task_id, _, _ in m.tasks
        }
        # 1 distinct snapped pattern + 1 perturbed variant.
        assert len(all_tasks) >= 1

    def test_workers_per_task_respected(self, server):
        for vid in ("v1", "v2", "v3", "v4", "v5"):
            upload(server, vid, [(40, 40)])
        server.open_round("seg-1")
        pool = server._pools["seg-1"]
        assert np.all(pool.assignment.task_degrees() == 3)


class TestLabelSubmission:
    def _setup_round(self, server):
        for vid in ("v1", "v2", "v3"):
            upload(server, vid, [(50, 50), (120, 90)])
        return server.open_round("seg-1")

    def test_full_loop_publishes_map(self, server, grid):
        messages = self._setup_round(server)
        for vid, message in messages.items():
            labels = tuple((task_id, 1) for task_id, _, _ in message.tasks)
            server.submit_labels("seg-1", LabelSubmission(vehicle_id=vid, labels=labels))
        assert server.round_complete("seg-1")
        response = server.aggregate("seg-1")
        assert isinstance(response, DownloadResponse)
        assert response.generation == 1
        assert len(response.aps) >= 1

    def test_incomplete_round_cannot_aggregate(self, server):
        messages = self._setup_round(server)
        vid, message = next(iter(messages.items()))
        labels = tuple((task_id, 1) for task_id, _, _ in message.tasks)
        server.submit_labels("seg-1", LabelSubmission(vehicle_id=vid, labels=labels))
        with pytest.raises(RuntimeError, match="incomplete"):
            server.aggregate("seg-1")

    def test_unknown_vehicle_rejected(self, server):
        self._setup_round(server)
        with pytest.raises(KeyError):
            server.submit_labels(
                "seg-1", LabelSubmission(vehicle_id="ghost", labels=((0, 1),))
            )

    def test_unassigned_task_rejected(self, server):
        messages = self._setup_round(server)
        vid, message = next(iter(messages.items()))
        assigned = {task_id for task_id, _, _ in message.tasks}
        all_ids = {
            task_id
            for m in messages.values()
            for task_id, _, _ in m.tasks
        }
        unassigned = all_ids - assigned
        if unassigned:
            bad = LabelSubmission(
                vehicle_id=vid,
                labels=tuple((t, 1) for t in assigned) + ((unassigned.pop(), 1),),
            )
            with pytest.raises(ValueError, match="unassigned"):
                server.submit_labels("seg-1", bad)

    def test_missing_answers_rejected(self, server):
        messages = self._setup_round(server)
        vid, message = next(iter(messages.items()))
        if len(message.tasks) >= 2:
            partial = LabelSubmission(
                vehicle_id=vid, labels=((message.tasks[0][0], 1),)
            )
            with pytest.raises(ValueError, match="unanswered"):
                server.submit_labels("seg-1", partial)

    def test_aggregation_updates_reliabilities(self, server):
        messages = self._setup_round(server)
        for vid, message in messages.items():
            labels = tuple((task_id, 1) for task_id, _, _ in message.tasks)
            server.submit_labels("seg-1", LabelSubmission(vehicle_id=vid, labels=labels))
        server.aggregate("seg-1")
        for vid in ("v1", "v2", "v3"):
            assert 0.0 <= server.reliability_of(vid) <= 1.0

    def test_download_before_any_round_is_empty(self, server):
        response = server.download("seg-1")
        assert response.aps == ()
        assert response.generation == 0

    def test_download_unknown_segment(self, server):
        with pytest.raises(KeyError):
            server.download("other")


class TestCrowdVehicleClient:
    @pytest.fixture
    def engine(self):
        channel = PathLossModel(shadowing_sigma_db=0.5)
        return OnlineCsEngine(
            channel,
            EngineConfig(
                window=WindowConfig(size=20, step=10),
                readings_per_round=5,
                max_aps_per_round=3,
                communication_radius_m=60.0,
            ),
            rng=1,
        )

    def test_report_before_sensing_rejected(self, engine):
        client = CrowdVehicleClient(vehicle_id="v", engine=engine)
        with pytest.raises(RuntimeError):
            client.build_report("seg-1", 0.0)

    def test_validation(self, engine):
        with pytest.raises(ValueError):
            CrowdVehicleClient(vehicle_id="", engine=engine)
        with pytest.raises(ValueError):
            CrowdVehicleClient(vehicle_id="v", engine=engine, spam_probability=2.0)

    def test_wrong_addressee_rejected(self, engine, grid):
        client = CrowdVehicleClient(vehicle_id="v", engine=engine)
        message = TaskAssignmentMessage(vehicle_id="other", tasks=())
        with pytest.raises(ValueError):
            client.answer_tasks(message, grid)

    def test_honest_labeling_matches_own_estimates(self, engine, grid):
        client = CrowdVehicleClient(vehicle_id="v", engine=engine, rng=2)
        # Fake a sensing result directly.
        from repro.core.consolidate import ApEstimate
        from repro.core.engine import OnlineCsResult

        own = [Point(52, 52), Point(124, 92)]
        client.last_result = OnlineCsResult(
            estimates=[
                ApEstimate(location=p, credits=3.0, first_round=0, last_round=2)
                for p in own
            ],
            rounds=[],
        )
        matching_pattern = tuple(grid.snap(p) for p in own)
        off_pattern = (0, grid.n_points - 1)
        message = TaskAssignmentMessage(
            vehicle_id="v",
            tasks=((0, "seg-1", matching_pattern), (1, "seg-1", off_pattern)),
        )
        submission = client.answer_tasks(message, grid)
        answers = submission.as_dict()
        assert answers[0] == 1
        assert answers[1] == -1

    def test_spammer_answers_randomly(self, engine, grid):
        client = CrowdVehicleClient(
            vehicle_id="v", engine=engine, spam_probability=1.0, rng=3
        )
        message = TaskAssignmentMessage(
            vehicle_id="v",
            tasks=tuple((i, "seg-1", (i,)) for i in range(40)),
        )
        submission = client.answer_tasks(message, grid)
        values = list(submission.as_dict().values())
        assert values.count(1) > 5
        assert values.count(-1) > 5


class TestUserVehicleClient:
    def test_ingest_and_query(self):
        user = UserVehicleClient(vehicle_id="u")
        user.ingest_download(
            DownloadResponse(
                segment_id="seg-1",
                aps=(ApRecord(x=10, y=0), ApRecord(x=50, y=0)),
                generation=1,
            )
        )
        assert user.known_segments() == ["seg-1"]
        assert len(user.ap_locations("seg-1")) == 2
        nearest = user.nearest_aps(Point(0, 0), count=1)
        assert nearest[0][0] == Point(10, 0)
        assert nearest[0][1] == pytest.approx(10.0)

    def test_stale_generation_ignored(self):
        user = UserVehicleClient(vehicle_id="u")
        newer = DownloadResponse(
            segment_id="s", aps=(ApRecord(x=1, y=1),), generation=5
        )
        older = DownloadResponse(segment_id="s", aps=(), generation=2)
        user.ingest_download(newer)
        user.ingest_download(older)
        assert len(user.ap_locations("s")) == 1

    def test_unknown_segment(self):
        user = UserVehicleClient(vehicle_id="u")
        with pytest.raises(KeyError):
            user.ap_locations("nope")

    def test_aps_within(self):
        user = UserVehicleClient(vehicle_id="u")
        user.ingest_download(
            DownloadResponse(
                segment_id="s",
                aps=(ApRecord(x=10, y=0), ApRecord(x=200, y=0)),
                generation=1,
            )
        )
        nearby = user.aps_within(Point(0, 0), 50.0)
        assert nearby == [Point(10, 0)]

    def test_validation(self):
        with pytest.raises(ValueError):
            UserVehicleClient(vehicle_id="")
        user = UserVehicleClient(vehicle_id="u")
        with pytest.raises(ValueError):
            user.nearest_aps(Point(0, 0), count=0)
        with pytest.raises(ValueError):
            user.aps_within(Point(0, 0), 0.0)
