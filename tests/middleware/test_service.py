"""Tests for the application-facing lookup service."""

import pytest

from repro.geo.points import BoundingBox, Point
from repro.geo.trajectory import Trajectory
from repro.middleware.database import ApDatabase
from repro.middleware.protocol import ApRecord
from repro.middleware.service import LookupService


@pytest.fixture
def service():
    db = ApDatabase()
    db.segment("seg-a").publish(
        [ApRecord(x=10, y=10), ApRecord(x=90, y=10)]
    )
    db.segment("seg-b").publish([ApRecord(x=50, y=90)])
    return LookupService(db)


class TestQueries:
    def test_all_aps(self, service):
        assert len(service.all_aps()) == 3

    def test_aps_near_sorted(self, service):
        hits = service.aps_near(Point(0, 0), 200.0)
        assert hits[0] == Point(10, 10)
        assert len(hits) == 3

    def test_aps_near_radius_filters(self, service):
        hits = service.aps_near(Point(0, 0), 20.0)
        assert hits == [Point(10, 10)]

    def test_aps_near_validation(self, service):
        with pytest.raises(ValueError):
            service.aps_near(Point(0, 0), 0.0)

    def test_aps_along_route(self, service):
        route = Trajectory([Point(0, 10), Point(100, 10)])
        hits = service.aps_along(route, 15.0)
        assert Point(10, 10) in hits
        assert Point(90, 10) in hits
        assert Point(50, 90) not in hits

    def test_aps_along_deduplicates(self, service):
        route = Trajectory([Point(0, 10), Point(100, 10)])
        hits = service.aps_along(route, 120.0, sample_every_m=5.0)
        assert len(hits) == len(set((p.x, p.y) for p in hits))

    def test_aps_along_validation(self, service):
        route = Trajectory([Point(0, 0), Point(10, 0)])
        with pytest.raises(ValueError):
            service.aps_along(route, 0.0)
        with pytest.raises(ValueError):
            service.aps_along(route, 10.0, sample_every_m=0.0)

    def test_count_in(self, service):
        assert service.count_in(BoundingBox(0, 0, 100, 50)) == 2
        assert service.count_in(BoundingBox(0, 0, 100, 100)) == 3

    def test_density(self, service):
        box = BoundingBox(0, 0, 1000, 1000)  # 1 km²
        assert service.density_per_km2(box) == pytest.approx(3.0)

    def test_density_zero_area(self, service):
        with pytest.raises(ValueError):
            service.density_per_km2(BoundingBox(1, 1, 1, 1))


class TestSpatialIndexEquivalence:
    """The indexed ``aps_near`` must be identical to the old full scan."""

    @staticmethod
    def _brute_force(service, position, radius_m):
        hits = [
            (ap, position.distance_to(ap))
            for ap in service.all_aps()
            if position.distance_to(ap) <= radius_m
        ]
        hits.sort(key=lambda pair: pair[1])
        return [ap for ap, _ in hits]

    def test_matches_full_scan(self):
        import numpy as np

        rng = np.random.default_rng(3)
        db = ApDatabase()
        for s in range(4):
            db.segment(f"seg-{s}").publish(
                [
                    ApRecord(x=float(x), y=float(y))
                    for x, y in rng.uniform(0, 500, size=(40, 2))
                ]
            )
        service = LookupService(db)
        for x, y, radius in rng.uniform(10, 490, size=(25, 3)):
            position = Point(float(x), float(y))
            assert service.aps_near(position, float(radius)) == (
                self._brute_force(service, position, float(radius))
            )

    def test_index_invalidated_on_republish(self, service):
        before = service.aps_near(Point(0, 0), 200.0)
        assert len(before) == 3
        # A republished segment bumps its generation; the memoized index
        # must follow the new fused set.
        service._database.segment("seg-b").publish(
            [ApRecord(x=5, y=5), ApRecord(x=50, y=90)]
        )
        after = service.aps_near(Point(0, 0), 200.0)
        assert len(after) == 4
        assert after[0] == Point(5, 5)

    def test_empty_database(self):
        assert LookupService(ApDatabase()).aps_near(Point(0, 0), 10.0) == []
