"""Server-level streaming KOS: fallback telemetry, ledger forgetting,
crash-recovery and handoff bit-identity of the streamed round state."""

import numpy as np
import pytest

from repro.geo.grid import Grid
from repro.geo.points import BoundingBox
from repro.middleware.durable import DurableCrowdServer
from repro.middleware.protocol import (
    ApRecord,
    LabelSubmission,
    UploadReport,
    encode_message,
)
from repro.middleware.server import CrowdServer, ServerConfig
from repro.obs.recorder import InMemoryRecorder


def _grid():
    return Grid(box=BoundingBox(0, 0, 100, 100), lattice_length=10.0)


def _upload(server, vehicle_id, xs, segment_id="seg-a"):
    server.receive_report(
        UploadReport(
            vehicle_id=vehicle_id,
            segment_id=segment_id,
            timestamp=0.0,
            aps=tuple(ApRecord(x=float(x), y=float(x) / 2 + 1) for x in xs),
            lattice_length_m=10.0,
        )
    )


def _submission(vehicle_id, message, label_rng, segment_id="seg-a"):
    labels = tuple(
        (task_id, int(label_rng.choice((-1, 1))))
        for task_id, _, _ in message.tasks
    )
    return LabelSubmission(
        vehicle_id=vehicle_id, labels=labels, segment_id=segment_id
    )


def _submit_all(server, assignments, label_rng, segment_id="seg-a"):
    for vehicle_id in sorted(assignments):
        server.submit_labels(
            segment_id,
            _submission(
                vehicle_id, assignments[vehicle_id], label_rng, segment_id
            ),
        )


def _make_server(n_vehicles, *, recorder=None, config=None):
    server = CrowdServer(
        config if config is not None else ServerConfig(workers_per_task=2),
        rng=0,
        recorder=recorder,
    )
    server.register_segment("seg-a", _grid())
    for index in range(n_vehicles):
        _upload(server, f"v{index}", [10 * index + 5, 10 * index + 7])
    return server


class TestKosFallbackCounter:
    def test_small_round_counts_fallback(self):
        recorder = InMemoryRecorder()
        server = _make_server(3, recorder=recorder)
        assignments = server.open_round("seg-a")
        _submit_all(server, assignments, np.random.default_rng(1))
        server.aggregate("seg-a")
        aggregates = recorder.aggregates()
        assert aggregates["counter:server.kos_fallback"] == 1.0
        # the fallback round still publishes a map and reliabilities
        assert aggregates["span:server.aggregate:count"] == 1.0

    def test_large_round_runs_kos_without_fallback(self):
        recorder = InMemoryRecorder()
        server = _make_server(8, recorder=recorder)
        assignments = server.open_round("seg-a")
        _submit_all(server, assignments, np.random.default_rng(1))
        server.aggregate("seg-a")
        aggregates = recorder.aggregates()
        assert "counter:server.kos_fallback" not in aggregates
        assert aggregates["counter:kos.runs"] == 1.0

    def test_fallback_threshold_is_configurable(self):
        recorder = InMemoryRecorder()
        server = _make_server(
            4,
            recorder=recorder,
            config=ServerConfig(workers_per_task=2, min_workers_for_kos=3),
        )
        assignments = server.open_round("seg-a")
        _submit_all(server, assignments, np.random.default_rng(1))
        server.aggregate("seg-a")
        assert "counter:server.kos_fallback" not in recorder.aggregates()


class TestServerStreamingFeed:
    def test_submissions_feed_the_stream_counter(self):
        recorder = InMemoryRecorder()
        server = _make_server(6, recorder=recorder)
        assignments = server.open_round("seg-a")
        total_labels = sum(
            len(message.tasks) for message in assignments.values()
        )
        _submit_all(server, assignments, np.random.default_rng(2))
        aggregates = recorder.aggregates()
        assert aggregates["counter:crowd.stream.labels"] == total_labels

    def test_interim_estimates_track_the_open_round(self):
        server = _make_server(6)
        assignments = server.open_round("seg-a")
        pool_tasks = set(server._pools["seg-a"].task_row)
        # Before any submission every task reports the +1 tie-break.
        interim = server.interim_estimates("seg-a")
        assert set(interim) == pool_tasks
        assert set(interim.values()) == {1}
        label_rng = np.random.default_rng(3)
        first = sorted(assignments)[0]
        server.submit_labels(
            "seg-a", _submission(first, assignments[first], label_rng)
        )
        interim = server.interim_estimates("seg-a")
        assert set(interim) == pool_tasks
        assert set(interim.values()) <= {-1, 1}
        # the single vehicle's labels dominate the tasks it answered
        for task_id, value in _submission(
            first, assignments[first], np.random.default_rng(3)
        ).labels:
            assert interim[task_id] == value

    def test_ledger_updates_counted_on_publish(self):
        recorder = InMemoryRecorder()
        server = _make_server(6, recorder=recorder)
        assignments = server.open_round("seg-a")
        _submit_all(server, assignments, np.random.default_rng(4))
        server.aggregate("seg-a")
        aggregates = recorder.aggregates()
        assert aggregates["counter:crowd.ledger.updates"] == len(assignments)


class TestReliabilityForgetting:
    def _one_round(self, forgetting):
        server = _make_server(
            6,
            config=ServerConfig(
                workers_per_task=2, reliability_forgetting=forgetting
            ),
        )
        assignments = server.open_round("seg-a")
        _submit_all(server, assignments, np.random.default_rng(5))
        server.aggregate("seg-a")
        return server

    def test_forgetting_blends_round_estimate_with_prior(self):
        overwrite = self._one_round(1.0)
        blended = self._one_round(0.5)
        default = overwrite.config.default_reliability
        moved = 0
        for index in range(6):
            vehicle = f"v{index}"
            fresh = overwrite.reliability_of(vehicle)
            assert blended.reliability_of(vehicle) == pytest.approx(
                0.5 * default + 0.5 * fresh
            )
            if fresh != default:
                moved += 1
        assert moved > 0  # the round actually updated someone

    def test_config_validates_forgetting(self):
        with pytest.raises(ValueError, match="reliability_forgetting"):
            ServerConfig(reliability_forgetting=0.0)
        with pytest.raises(ValueError, match="reliability_forgetting"):
            ServerConfig(reliability_forgetting=1.5)


def _make_durable(directory, n_vehicles=6, rng=11):
    server = DurableCrowdServer(
        directory, ServerConfig(workers_per_task=2), rng=rng
    )
    server.register_segment("seg-a", _grid())
    for index in range(n_vehicles):
        _upload(server, f"v{index}", [10 * index + 5, 10 * index + 7])
    return server


def _make_alive(n_vehicles=6, rng=11):
    server = CrowdServer(ServerConfig(workers_per_task=2), rng=rng)
    server.register_segment("seg-a", _grid())
    for index in range(n_vehicles):
        _upload(server, f"v{index}", [10 * index + 5, 10 * index + 7])
    return server


def _split_submit(server, assignments, vehicles, label_rng):
    for vehicle_id in vehicles:
        server.submit_labels(
            "seg-a",
            _submission(vehicle_id, assignments[vehicle_id], label_rng),
        )


class TestDurableStreamingRecovery:
    def test_mid_round_crash_preserves_stream_and_finalize(self, tmp_path):
        alive = _make_alive()
        durable = _make_durable(tmp_path / "d")
        alive_rng = np.random.default_rng(7)
        durable_rng = np.random.default_rng(7)
        a_assign = alive.open_round("seg-a")
        d_assign = durable.open_round("seg-a")
        vehicles = sorted(a_assign)
        first_half, second_half = vehicles[:3], vehicles[3:]
        _split_submit(alive, a_assign, first_half, alive_rng)
        _split_submit(durable, d_assign, first_half, durable_rng)

        durable.log.crash()
        recovered = DurableCrowdServer.recover(
            tmp_path / "d", ServerConfig(workers_per_task=2)
        )
        try:
            # The streamed round state survived the crash exactly:
            # damped y-messages, sweep counters, fill level.
            assert (
                recovered._pools["seg-a"].stream.state_dict()
                == alive._pools["seg-a"].stream.state_dict()
            )
            assert recovered.interim_estimates(
                "seg-a"
            ) == alive.interim_estimates("seg-a")

            _split_submit(alive, a_assign, second_half, alive_rng)
            _split_submit(recovered, d_assign, second_half, durable_rng)
            a_map = alive.aggregate("seg-a")
            d_map = recovered.aggregate("seg-a")
            assert encode_message(d_map) == encode_message(a_map)
            assert dict(recovered._reliabilities) == dict(
                alive._reliabilities
            )
        finally:
            recovered.close()

    def test_forgetting_survives_recovery(self, tmp_path):
        config = ServerConfig(
            workers_per_task=2, reliability_forgetting=0.5
        )
        durable = DurableCrowdServer(tmp_path / "d", config, rng=11)
        durable.register_segment("seg-a", _grid())
        for index in range(6):
            _upload(durable, f"v{index}", [10 * index + 5, 10 * index + 7])
        assignments = durable.open_round("seg-a")
        _submit_all(durable, assignments, np.random.default_rng(9))
        durable.aggregate("seg-a")
        beliefs = dict(durable._reliabilities)
        durable.log.crash()
        recovered = DurableCrowdServer.recover(tmp_path / "d", config)
        try:
            assert dict(recovered._reliabilities) == beliefs
        finally:
            recovered.close()


class TestHandoffStreamState:
    def test_export_install_carries_stream_state(self, tmp_path):
        source = _make_durable(tmp_path / "src")
        target = DurableCrowdServer(
            tmp_path / "dst", ServerConfig(workers_per_task=2), rng=11
        )
        try:
            assignments = source.open_round("seg-a")
            _split_submit(
                source,
                assignments,
                sorted(assignments)[:3],
                np.random.default_rng(13),
            )
            before = source._pools["seg-a"].stream.state_dict()
            target.install_segment(source.export_segment("seg-a"))
            assert target._pools["seg-a"].stream.state_dict() == before
        finally:
            source.close()
            target.close()

    def test_adopted_round_finalizes_like_uninterrupted_one(self, tmp_path):
        control = _make_alive()
        source = _make_durable(tmp_path / "src")
        target = DurableCrowdServer(
            tmp_path / "dst", ServerConfig(workers_per_task=2), rng=11
        )
        try:
            c_assign = control.open_round("seg-a")
            s_assign = source.open_round("seg-a")
            vehicles = sorted(c_assign)
            control_rng = np.random.default_rng(17)
            handoff_rng = np.random.default_rng(17)
            _split_submit(control, c_assign, vehicles[:3], control_rng)
            _split_submit(source, s_assign, vehicles[:3], handoff_rng)
            target.install_segment(source.export_segment("seg-a"))
            _split_submit(control, c_assign, vehicles[3:], control_rng)
            _split_submit(target, s_assign, vehicles[3:], handoff_rng)
            c_map = control.aggregate("seg-a")
            t_map = target.aggregate("seg-a")
            assert encode_message(t_map) == encode_message(c_map)
            for vehicle_id in vehicles:
                assert target.reliability_of(
                    vehicle_id
                ) == control.reliability_of(vehicle_id)
        finally:
            source.close()
            target.close()
