"""Tests for the server's generic wire endpoint and protocol fuzzing."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.geo.grid import Grid
from repro.geo.points import BoundingBox
from repro.middleware.protocol import (
    ApRecord,
    DownloadResponse,
    ErrorResponse,
    LabelSubmission,
    LookupRequest,
    TaskAssignmentMessage,
    UploadReport,
    decode_message,
    encode_message,
)
from repro.middleware.server import CrowdServer, ServerConfig


@pytest.fixture
def server():
    server = CrowdServer(ServerConfig(workers_per_task=2), rng=0)
    server.register_segment(
        "seg-w", Grid(box=BoundingBox(0, 0, 100, 100), lattice_length=10.0)
    )
    return server


def upload_message(vehicle="v1", segment="seg-w"):
    return encode_message(
        UploadReport(
            vehicle_id=vehicle,
            segment_id=segment,
            timestamp=1.0,
            aps=(ApRecord(x=50.0, y=50.0),),
            lattice_length_m=10.0,
        )
    )


class TestWireEndpoint:
    def test_upload_is_acknowledged_silently(self, server):
        assert server.handle_wire_message(upload_message()) is None
        assert server.database.segment("seg-w").vehicles() == ["v1"]

    def test_lookup_roundtrip(self, server):
        server.handle_wire_message(upload_message())
        reply = server.handle_wire_message(
            encode_message(
                LookupRequest(vehicle_id="user-1", segment_id="seg-w")
            )
        )
        response = decode_message(reply)
        assert isinstance(response, DownloadResponse)
        assert response.segment_id == "seg-w"

    def test_lookup_unknown_segment_is_error(self, server):
        reply = server.handle_wire_message(
            encode_message(
                LookupRequest(vehicle_id="user-1", segment_id="ghost")
            )
        )
        error = decode_message(reply)
        assert isinstance(error, ErrorResponse)
        assert "ghost" in error.reason

    def test_malformed_text_is_error_response(self, server):
        reply = server.handle_wire_message("{definitely not json")
        assert isinstance(decode_message(reply), ErrorResponse)

    def test_upload_for_unregistered_segment_is_error(self, server):
        reply = server.handle_wire_message(
            upload_message(segment="unknown-seg")
        )
        assert isinstance(decode_message(reply), ErrorResponse)

    def test_label_submission_routed_to_open_round(self, server):
        for vehicle in ("v1", "v2"):
            server.handle_wire_message(upload_message(vehicle=vehicle))
        assignments = server.open_round("seg-w")
        for vehicle, assignment in assignments.items():
            submission = LabelSubmission(
                vehicle_id=vehicle,
                labels=tuple((tid, 1) for tid, _, _ in assignment.tasks),
            )
            assert server.handle_wire_message(encode_message(submission)) is None
        assert server.round_complete("seg-w")

    def test_label_without_open_round_is_error(self, server):
        submission = LabelSubmission(vehicle_id="stranger", labels=((0, 1),))
        reply = server.handle_wire_message(encode_message(submission))
        assert isinstance(decode_message(reply), ErrorResponse)

    def test_unroutable_message_type_is_error(self, server):
        message = TaskAssignmentMessage(vehicle_id="v", tasks=())
        reply = server.handle_wire_message(encode_message(message))
        error = decode_message(reply)
        assert isinstance(error, ErrorResponse)
        assert "TaskAssignmentMessage" in error.reason


# -- property-based codec fuzzing --------------------------------------------

safe_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), min_size=1, max_size=30
)
coords = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@st.composite
def upload_reports(draw):
    n_aps = draw(st.integers(min_value=0, max_value=5))
    return UploadReport(
        vehicle_id=draw(safe_text),
        segment_id=draw(safe_text),
        timestamp=draw(coords),
        aps=tuple(
            ApRecord(
                x=draw(coords), y=draw(coords),
                credits=draw(st.floats(0, 100)),
            )
            for _ in range(n_aps)
        ),
        lattice_length_m=draw(st.floats(min_value=0.1, max_value=100)),
    )


class TestProtocolFuzz:
    @given(upload_reports())
    @settings(max_examples=60, deadline=None)
    def test_upload_report_roundtrip(self, report):
        assert decode_message(encode_message(report)) == report

    @given(
        safe_text,
        st.lists(
            st.tuples(st.integers(0, 1000), st.sampled_from([-1, 1])),
            max_size=10,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_label_submission_roundtrip(self, vehicle, labels):
        message = LabelSubmission(vehicle_id=vehicle, labels=tuple(labels))
        assert decode_message(encode_message(message)) == message

    @given(st.text(max_size=120))
    @settings(max_examples=80, deadline=None)
    def test_decoder_never_crashes_unexpectedly(self, junk):
        """Arbitrary text either decodes or raises ValueError — never
        anything else."""
        try:
            decode_message(junk)
        except ValueError:
            pass
