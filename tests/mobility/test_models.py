"""Tests for path-following motion and drive schedules."""

import pytest

from repro.geo.points import Point
from repro.geo.trajectory import Trajectory
from repro.mobility.models import PathFollower, drive_schedule


@pytest.fixture
def loop():
    return Trajectory.rectangle(0, 0, 100, 100)  # length 400


@pytest.fixture
def follower(loop):
    return PathFollower(loop, speed_mps=10.0)


class TestPathFollower:
    def test_position_progression(self, follower):
        assert follower.position_at(0.0) == Point(0, 0)
        assert follower.position_at(5.0) == Point(50, 0)
        assert follower.position_at(15.0) == Point(100, 50)

    def test_wraps_after_full_lap(self, follower):
        assert follower.position_at(40.0).distance_to(Point(0, 0)) < 1e-9

    def test_start_offset(self, loop):
        offset_follower = PathFollower(loop, 10.0, start_offset_m=100.0)
        assert offset_follower.position_at(0.0) == Point(100, 0)

    def test_invalid_speed(self, loop):
        with pytest.raises(ValueError):
            PathFollower(loop, 0.0)

    def test_invalid_offset(self, loop):
        with pytest.raises(ValueError):
            PathFollower(loop, 1.0, start_offset_m=-5.0)

    def test_negative_time_rejected(self, follower):
        with pytest.raises(ValueError):
            follower.position_at(-1.0)

    def test_sample_fields(self, follower):
        fix = follower.sample(5.0)
        assert fix.time == 5.0
        assert fix.distance == pytest.approx(50.0)
        assert fix.position == Point(50, 0)
        assert fix.heading == pytest.approx(0.0)

    def test_time_to_complete(self, follower):
        assert follower.time_to_complete() == pytest.approx(40.0)
        assert follower.time_to_complete(laps=2.5) == pytest.approx(100.0)

    def test_time_to_complete_validation(self, follower):
        with pytest.raises(ValueError):
            follower.time_to_complete(laps=0.0)


class TestDriveSchedule:
    def test_count_and_spacing(self, follower):
        fixes = drive_schedule(follower, duration_s=10.0, sample_period_s=1.0)
        assert len(fixes) == 11
        assert fixes[0].time == 0.0
        assert fixes[-1].time == pytest.approx(10.0)

    def test_start_time_offset(self, follower):
        fixes = drive_schedule(
            follower, duration_s=2.0, sample_period_s=1.0, start_time_s=5.0
        )
        assert [f.time for f in fixes] == [5.0, 6.0, 7.0]

    def test_zero_duration_single_fix(self, follower):
        fixes = drive_schedule(follower, duration_s=0.0, sample_period_s=1.0)
        assert len(fixes) == 1

    def test_validation(self, follower):
        with pytest.raises(ValueError):
            drive_schedule(follower, duration_s=-1.0, sample_period_s=1.0)
        with pytest.raises(ValueError):
            drive_schedule(follower, duration_s=1.0, sample_period_s=0.0)

    def test_positions_consistent_with_follower(self, follower):
        fixes = drive_schedule(follower, duration_s=5.0, sample_period_s=2.5)
        for fix in fixes:
            assert fix.position == follower.position_at(fix.time)

    def test_fractional_period(self, follower):
        fixes = drive_schedule(follower, duration_s=1.0, sample_period_s=0.4)
        # Ticks at 0.0, 0.4, 0.8 (1.2 exceeds the duration window).
        assert len(fixes) in (3, 4)
        assert fixes[1].time == pytest.approx(0.4)
