"""Tests for the street-network mobility substrate."""

import pytest

from repro.geo.points import BoundingBox, Point
from repro.mobility.streets import StreetGrid


@pytest.fixture
def grid():
    return StreetGrid(BoundingBox(0, 0, 400, 300), n_rows=4, n_cols=5)


class TestConstruction:
    def test_intersection_count(self, grid):
        assert grid.n_intersections == 20

    def test_corner_coordinates(self, grid):
        assert grid.intersection(0, 0) == Point(0, 0)
        assert grid.intersection(3, 4) == Point(400, 300)

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            StreetGrid(BoundingBox(0, 0, 10, 10), n_rows=1, n_cols=5)

    def test_unknown_intersection(self, grid):
        with pytest.raises(KeyError):
            grid.intersection(9, 9)

    def test_edge_lengths_positive(self, grid):
        for _, _, data in grid.graph.edges(data=True):
            assert data["length"] > 0


class TestNearestIntersection:
    def test_exact_hit(self, grid):
        assert grid.nearest_intersection(Point(0, 0)) == (0, 0)

    def test_snap(self, grid):
        # (100, 100) is exactly at intersection (1, 1).
        assert grid.nearest_intersection(Point(110, 95)) == (1, 1)


class TestShortestRoute:
    def test_straight_route_length(self, grid):
        route = grid.shortest_route((0, 0), (0, 4))
        assert route.length == pytest.approx(400.0)

    def test_l_route_length(self, grid):
        route = grid.shortest_route((0, 0), (3, 4))
        assert route.length == pytest.approx(700.0)

    def test_route_follows_streets(self, grid):
        route = grid.shortest_route((0, 0), (2, 3))
        for waypoint in route.waypoints:
            node = grid.nearest_intersection(waypoint)
            assert grid.graph.nodes[node]["point"] == waypoint


class TestRemoveStreet:
    def test_detour_after_closure(self, grid):
        direct = grid.shortest_route((0, 0), (0, 2)).length
        grid.remove_street((0, 0), (0, 1))
        detour = grid.shortest_route((0, 0), (0, 2)).length
        assert detour > direct

    def test_unknown_street(self, grid):
        with pytest.raises(KeyError):
            grid.remove_street((0, 0), (3, 4))

    def test_disconnecting_closure_rejected(self):
        tiny = StreetGrid(BoundingBox(0, 0, 10, 10), n_rows=2, n_cols=2)
        tiny.remove_street((0, 0), (0, 1))
        with pytest.raises(ValueError, match="disconnect"):
            tiny.remove_street((0, 0), (1, 0))
        # The rejected closure must have been rolled back.
        assert tiny.graph.has_edge((0, 0), (1, 0))


class TestRandomPatrol:
    def test_leg_count(self, grid):
        route = grid.random_patrol(6, start=(0, 0), rng=0)
        # Non-backtracking walk on distinct intersections: at least 2
        # waypoints, at most n_legs + 1.
        assert 2 <= len(route.waypoints) <= 7
        assert route.length > 0

    def test_reproducible(self, grid):
        a = grid.random_patrol(8, start=(1, 1), rng=42)
        b = grid.random_patrol(8, start=(1, 1), rng=42)
        assert a.waypoints == b.waypoints

    def test_stays_on_network(self, grid):
        route = grid.random_patrol(10, rng=3)
        for waypoint in route.waypoints:
            node = grid.nearest_intersection(waypoint)
            assert grid.graph.nodes[node]["point"].distance_to(waypoint) < 1e-9

    def test_validation(self, grid):
        with pytest.raises(ValueError):
            grid.random_patrol(0)
        with pytest.raises(KeyError):
            grid.random_patrol(3, start=(99, 99))


class TestLoopRoute:
    def test_rectangle_loop(self, grid):
        route = grid.loop_route([(0, 0), (0, 4), (3, 4), (3, 0)])
        assert route.closed
        assert route.length == pytest.approx(2 * 400 + 2 * 300)

    def test_loop_needs_corners(self, grid):
        with pytest.raises(ValueError):
            grid.loop_route([(0, 0)])

    def test_loop_usable_by_follower(self, grid):
        from repro.mobility.models import PathFollower

        route = grid.loop_route([(0, 0), (0, 2), (2, 2), (2, 0)])
        follower = PathFollower(route, 10.0)
        # One full lap returns to the start.
        lap_time = follower.time_to_complete()
        assert follower.position_at(lap_time).distance_to(
            follower.position_at(0.0)
        ) < 1e-6
