"""Tests for speed-unit conversion."""

import pytest
from hypothesis import given, strategies as st

from repro.mobility.units import mph_to_mps, mps_to_mph


class TestConversions:
    def test_known_value(self):
        # 25 mph is about 11.176 m/s.
        assert mph_to_mps(25.0) == pytest.approx(11.176, abs=0.001)

    def test_inverse_known_value(self):
        assert mps_to_mph(11.176) == pytest.approx(25.0, abs=0.01)

    def test_zero(self):
        assert mph_to_mps(0.0) == 0.0
        assert mps_to_mph(0.0) == 0.0

    @given(st.floats(min_value=-1e4, max_value=1e4, allow_nan=False))
    def test_roundtrip(self, speed):
        assert mps_to_mph(mph_to_mps(speed)) == pytest.approx(speed, abs=1e-9)

    @given(st.floats(min_value=0.1, max_value=1e3))
    def test_mph_is_larger_number_than_mps(self, speed_mps):
        assert mps_to_mph(speed_mps) > speed_mps
