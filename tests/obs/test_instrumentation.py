"""End-to-end telemetry guarantees on the instrumented pipelines.

Three properties from the observability contract (docs/OBSERVABILITY.md):

1. *Bit-identity*: attaching a recorder never changes any numerical
   output — the instrumented pipelines compute exactly what the bare
   ones do, for any seed.
2. *Parallel == serial*: the deterministic telemetry aggregates are a
   function of the seed only, not of the worker count.
3. *Reported content*: the rendered report carries the per-round block
   and solve counts, the KOS iteration histogram, and span timings.
"""

import pytest

from repro.core.engine import EngineConfig, OnlineCsEngine
from repro.core.window import WindowConfig
from repro.experiments.common import crowdwifi_estimate, drive_and_collect
from repro.geo.points import BoundingBox, Point
from repro.geo.trajectory import Trajectory
from repro.middleware.fleet import FleetCampaign
from repro.middleware.segments import SegmentPlanner
from repro.obs.recorder import InMemoryRecorder
from repro.obs.report import render_report
from repro.radio.pathloss import PathLossModel
from repro.sim.scenarios import uci_campus
from repro.sim.world import AccessPoint, World


def _engine_config():
    return EngineConfig(
        window=WindowConfig(size=24, step=8),
        readings_per_round=6,
        max_aps_per_round=3,
        communication_radius_m=60.0,
    )


class TestEngineTelemetry:
    def test_recorder_does_not_change_results(self, small_world, small_trace):
        def run(recorder):
            engine = OnlineCsEngine(
                small_world.channel,
                _engine_config(),
                rng=5,
                recorder=recorder,
            )
            return engine.process_trace(list(small_trace))

        bare = run(None)
        recorded = run(InMemoryRecorder())
        assert [(p.x, p.y) for p in recorded.locations] == [
            (p.x, p.y) for p in bare.locations
        ]

    def test_round_counters_and_spans(self, small_world, small_trace):
        recorder = InMemoryRecorder()
        engine = OnlineCsEngine(
            small_world.channel, _engine_config(), rng=5, recorder=recorder
        )
        engine.process_trace(list(small_trace))
        counters = recorder.counters
        assert counters["engine.rounds"] >= 1
        assert counters["engine.blocks.unique"] <= counters[
            "engine.blocks.instances"
        ]
        assert (
            counters["engine.blocks.solved"]
            + counters.get("engine.blocks.failed", 0.0)
            == counters["engine.blocks.unique"]
        )
        spans = recorder.spans
        assert "engine.trace" in spans
        assert "engine.trace/engine.recover_blocks" in spans
        assert "consolidate.rounds" in counters


@pytest.mark.slow
class TestFleetTelemetry:
    @pytest.fixture(scope="class")
    def campaign_parts(self):
        world = World(
            access_points=[
                AccessPoint(
                    ap_id="w", position=Point(60, 70), radio_range_m=60.0
                ),
                AccessPoint(
                    ap_id="e", position=Point(260, 70), radio_range_m=60.0
                ),
            ],
            channel=PathLossModel(shadowing_sigma_db=0.5),
        )
        planner = SegmentPlanner(
            BoundingBox(0, 0, 320, 140), n_rows=1, n_cols=2
        )
        route = Trajectory(
            [Point(10, 30), Point(310, 30), Point(310, 110), Point(10, 110)],
            closed=True,
        )
        return world, planner, route

    def _run(self, parts, n_workers, telemetry):
        world, planner, route = parts
        fleet = FleetCampaign(world, planner, _engine_config())
        fleet.add_vehicle("bus-0", route, n_samples=120, speed_mph=12.0)
        fleet.add_vehicle("bus-1", route, n_samples=120, speed_mph=12.0)
        return fleet.run(rng=42, n_workers=n_workers, telemetry=telemetry)

    @staticmethod
    def _fingerprint(outcome):
        return (
            [(p.x, p.y) for p in outcome.city_map()],
            outcome.segments_mapped,
            outcome.reliabilities,
        )

    def test_recorder_off_bit_identity_and_parallel_aggregates(
        self, campaign_parts
    ):
        bare = self._fingerprint(self._run(campaign_parts, None, None))

        serial = InMemoryRecorder()
        serial_fp = self._fingerprint(
            self._run(campaign_parts, None, serial)
        )
        parallel = InMemoryRecorder()
        parallel_fp = self._fingerprint(
            self._run(campaign_parts, 4, parallel)
        )

        # 1. Telemetry never changes the outcome.
        assert serial_fp == bare
        assert parallel_fp == bare
        # 2. Aggregates are worker-count independent.
        assert parallel.aggregates() == serial.aggregates()
        assert parallel.events == serial.events

        # 3. The report shows the contract's headline quantities.
        text = render_report(serial)
        for marker in (
            "engine.rounds",
            "engine.blocks.solved",
            "kos.iterations",
            "server.reliability",
            "fleet.run",
            "fleet.run/fleet.phase2.rounds",
        ):
            assert marker in text, marker


@pytest.mark.slow
class TestCrowdwifiEstimateTelemetry:
    def test_parallel_aggregates_and_bit_identity(self):
        scenario = uci_campus()
        config = EngineConfig(
            window=WindowConfig(size=20, step=10),
            readings_per_round=5,
            max_aps_per_round=3,
            communication_radius_m=100.0,
        )
        traces = [
            drive_and_collect(
                scenario, n_samples=40, start_offset_m=100.0 * i, rng=10 + i
            )
            for i in range(3)
        ]

        bare = crowdwifi_estimate(scenario, traces, config, rng=7)
        serial = InMemoryRecorder()
        serial_pts = crowdwifi_estimate(
            scenario, traces, config, rng=7, telemetry=serial
        )
        parallel = InMemoryRecorder()
        parallel_pts = crowdwifi_estimate(
            scenario, traces, config, rng=7, n_workers=3, telemetry=parallel
        )

        key = [(p.x, p.y) for p in bare]
        assert [(p.x, p.y) for p in serial_pts] == key
        assert [(p.x, p.y) for p in parallel_pts] == key
        assert parallel.aggregates() == serial.aggregates()
        assert serial.counters["engine.rounds"] >= 3
        assert serial.counters["estimate.aps.fused"] >= 1
