"""Run-manifest construction and serialisation."""

import json

from repro.obs.manifest import (
    MANIFEST_SCHEMA_VERSION,
    RunManifest,
    build_manifest,
    git_revision,
)
from repro.obs.recorder import InMemoryRecorder


class TestGitRevision:
    def test_in_repo_returns_hex(self):
        rev = git_revision()
        assert rev == "unknown" or (
            len(rev) == 40 and all(c in "0123456789abcdef" for c in rev)
        )

    def test_outside_repo_is_unknown(self, tmp_path):
        assert git_revision(cwd=str(tmp_path)) == "unknown"


class TestBuildManifest:
    def test_fields_populated(self):
        recorder = InMemoryRecorder()
        with recorder.span("fleet.run"):
            pass
        manifest = build_manifest(
            "fig5", seed=2014, config={"trials": 3}, wall_s=1.25,
            recorder=recorder,
        )
        assert manifest.name == "fig5"
        assert manifest.seed == 2014
        assert manifest.config == {"trials": 3}
        assert manifest.wall_s == 1.25
        assert "fleet.run" in manifest.spans
        assert manifest.python
        assert manifest.numpy
        assert manifest.schema == MANIFEST_SCHEMA_VERSION

    def test_json_round_trip(self, tmp_path):
        manifest = build_manifest("fig6", seed=None)
        path = tmp_path / "fig6.manifest.json"
        manifest.write(str(path))
        loaded = json.loads(path.read_text())
        assert loaded["name"] == "fig6"
        assert loaded["seed"] is None
        assert loaded["schema"] == MANIFEST_SCHEMA_VERSION
        assert set(loaded) == set(RunManifest.__dataclass_fields__)
