"""Deterministic merging of child-process telemetry (run_recorded_tasks)."""

import pytest

from repro.obs.recorder import InMemoryRecorder, NULL_RECORDER
from repro.util.parallel import run_recorded_tasks


def _work(task, recorder):
    """Module-level so a ProcessPoolExecutor can pickle it."""
    recorder.count("work.items")
    recorder.observe("work.value", task)
    with recorder.span("work"):
        recorder.gauge("work.last", task)
    return task * 2


class TestDisabledRecorder:
    def test_serial(self):
        assert run_recorded_tasks(
            _work, [1, 2, 3], recorder=NULL_RECORDER
        ) == [2, 4, 6]

    def test_pooled(self):
        assert run_recorded_tasks(
            _work, list(range(6)), recorder=NULL_RECORDER, n_workers=3
        ) == [2 * t for t in range(6)]


class TestEnabledRecorder:
    def test_serial_results_and_aggregates(self):
        recorder = InMemoryRecorder()
        results = run_recorded_tasks(_work, [1, 2, 3], recorder=recorder)
        assert results == [2, 4, 6]
        aggregates = recorder.aggregates()
        assert aggregates["counter:work.items"] == 3.0
        assert aggregates["hist:work.value:total"] == 6.0
        assert aggregates["span:work:count"] == 3.0
        # Gauges merge last-write-wins in submission order.
        assert aggregates["gauge:work.last"] == 3.0

    @pytest.mark.parametrize("n_workers", [2, 4])
    def test_parallel_aggregates_equal_serial(self, n_workers):
        tasks = list(range(8))
        serial = InMemoryRecorder()
        serial_results = run_recorded_tasks(_work, tasks, recorder=serial)
        parallel = InMemoryRecorder()
        parallel_results = run_recorded_tasks(
            _work, tasks, recorder=parallel, n_workers=n_workers
        )
        assert parallel_results == serial_results
        assert parallel.aggregates() == serial.aggregates()
        assert parallel.events == serial.events

    def test_empty_task_list(self):
        recorder = InMemoryRecorder()
        assert run_recorded_tasks(_work, [], recorder=recorder) == []
        assert recorder.aggregates() == {}
