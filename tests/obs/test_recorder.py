"""Unit behaviour of the recorder implementations."""

import json
import pickle

from repro.obs.recorder import (
    JSONL_SCHEMA_VERSION,
    InMemoryRecorder,
    JsonlRecorder,
    NullRecorder,
    NULL_RECORDER,
    ensure_recorder,
    load_jsonl,
    replay_events,
)


def _record_everything(recorder):
    """Exercise every hook; shared by the equality/round-trip tests."""
    recorder.count("blocks")
    recorder.count("blocks", 4)
    recorder.gauge("pool", 3)
    recorder.gauge("pool", 1)
    recorder.observe("iters", 7.0)
    recorder.observe("iters", 3.0)
    recorder.event("reliability", vehicle="bus-0", value=0.9)
    with recorder.span("outer"):
        with recorder.span("inner"):
            recorder.count("nested")


class TestNullRecorder:
    def test_disabled_and_noop(self):
        recorder = NullRecorder()
        assert recorder.enabled is False
        _record_everything(recorder)  # must not raise, must not store

    def test_module_singleton(self):
        assert ensure_recorder(None) is NULL_RECORDER
        memory = InMemoryRecorder()
        assert ensure_recorder(memory) is memory

    def test_picklable(self):
        clone = pickle.loads(pickle.dumps(NULL_RECORDER))
        assert clone.enabled is False

    def test_span_reusable(self):
        recorder = NullRecorder()
        span = recorder.span("a")
        with span:
            pass
        assert recorder.span("b") is span  # single shared instance


class TestInMemoryRecorder:
    def test_counters_add(self):
        recorder = InMemoryRecorder()
        recorder.count("x")
        recorder.count("x", 2.5)
        assert recorder.counters == {"x": 3.5}

    def test_gauge_last_write_wins(self):
        recorder = InMemoryRecorder()
        recorder.gauge("level", 5)
        recorder.gauge("level", 2)
        assert recorder.gauges == {"level": 2.0}

    def test_histogram_stats(self):
        recorder = InMemoryRecorder()
        for value in (4.0, 1.0, 7.0):
            recorder.observe("iters", value)
        stats = recorder.histograms["iters"]
        assert stats["count"] == 3.0
        assert stats["total"] == 12.0
        assert stats["min"] == 1.0
        assert stats["max"] == 7.0

    def test_events_keep_order_and_fields(self):
        recorder = InMemoryRecorder()
        recorder.event("rel", vehicle="a", value=0.9)
        recorder.event("rel", vehicle="b", value=0.4)
        assert recorder.events == [
            ("rel", {"vehicle": "a", "value": 0.9}),
            ("rel", {"vehicle": "b", "value": 0.4}),
        ]

    def test_nested_span_paths(self):
        recorder = InMemoryRecorder()
        _record_everything(recorder)
        spans = recorder.spans
        assert set(spans) == {"outer", "outer/inner"}
        assert spans["outer"]["count"] == 1.0
        assert spans["outer/inner"]["count"] == 1.0
        assert spans["outer"]["total_s"] >= spans["outer/inner"]["total_s"]

    def test_snapshot_is_picklable(self):
        recorder = InMemoryRecorder()
        _record_everything(recorder)
        snapshot = pickle.loads(pickle.dumps(recorder.snapshot()))
        other = InMemoryRecorder()
        other.absorb(snapshot)
        assert other.aggregates() == recorder.aggregates()

    def test_absorb_matches_serial_recording(self):
        # One recorder fed directly == one that absorbed two children.
        serial = InMemoryRecorder()
        _record_everything(serial)
        _record_everything(serial)

        child_a, child_b = InMemoryRecorder(), InMemoryRecorder()
        _record_everything(child_a)
        _record_everything(child_b)
        parent = InMemoryRecorder()
        parent.absorb(child_a.snapshot())
        parent.absorb(child_b.snapshot())
        assert parent.aggregates() == serial.aggregates()
        assert parent.events == serial.events

    def test_aggregates_exclude_wall_times(self):
        recorder = InMemoryRecorder()
        _record_everything(recorder)
        for key in recorder.aggregates():
            assert "total_s" not in key
            assert "max_s" not in key
        assert recorder.aggregates()["span:outer:count"] == 1.0


class TestJsonlRecorder:
    def test_meta_header_first(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with JsonlRecorder(path) as recorder:
            recorder.count("x")
        first = json.loads(open(path, encoding="utf-8").readline())
        assert first == {"type": "meta", "schema": JSONL_SCHEMA_VERSION}

    def test_round_trip_equals_writer(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with JsonlRecorder(path) as recorder:
            _record_everything(recorder)
            child = InMemoryRecorder()
            _record_everything(child)
            recorder.absorb(child.snapshot())
            written = recorder.aggregates()
        replayed = replay_events(load_jsonl(path))
        assert replayed.aggregates() == written

    def test_close_is_idempotent(self, tmp_path):
        recorder = JsonlRecorder(str(tmp_path / "run.jsonl"))
        recorder.close()
        recorder.close()
        # In-memory aggregates survive closing.
        recorder.count("after")
        assert recorder.counters == {"after": 1.0}

    def test_unknown_record_kinds_are_skipped(self):
        replayed = replay_events(
            [{"type": "meta", "schema": 99}, {"type": "wat"}]
        )
        assert replayed.aggregates() == {}
