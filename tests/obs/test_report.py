"""Content of the rendered run report and its CLI entry point."""

from repro.obs.recorder import InMemoryRecorder, JsonlRecorder
from repro.obs.report import main, render_report


def _populated_recorder():
    recorder = InMemoryRecorder()
    recorder.count("engine.rounds", 4)
    recorder.count("engine.blocks.solved", 20)
    recorder.observe("kos.iterations", 6)
    recorder.observe("kos.iterations", 8)
    recorder.gauge("server.pools.open", 0)
    recorder.event("server.reliability", vehicle="bus-0", value=0.9)
    with recorder.span("engine.trace"):
        pass
    return recorder


class TestRenderReport:
    def test_counters_show_per_round_rate(self):
        text = render_report(_populated_recorder())
        assert "engine.blocks.solved" in text
        # 20 blocks over 4 rounds.
        assert "5.00" in text

    def test_all_sections_present(self):
        text = render_report(_populated_recorder(), title="run report")
        for marker in (
            "run report",
            "counters",
            "histograms",
            "kos.iterations",
            "spans",
            "engine.trace",
            "gauges",
            "events",
            "server.reliability",
        ):
            assert marker in text, marker

    def test_span_timings_rendered_with_units(self):
        text = render_report(_populated_recorder())
        assert (" ms" in text) or (" s" in text)

    def test_empty_stream_fallback(self):
        assert "(empty telemetry stream)" in render_report(InMemoryRecorder())

    def test_per_round_column_dashes_without_rounds(self):
        recorder = InMemoryRecorder()
        recorder.count("server.reports", 3)
        text = render_report(recorder)
        assert "-" in text


class TestReportCli:
    def test_renders_jsonl_file(self, tmp_path, capsys):
        path = str(tmp_path / "run.jsonl")
        with JsonlRecorder(path) as recorder:
            recorder.count("engine.rounds", 2)
            recorder.count("engine.blocks.solved", 6)
        assert main([path]) == 0
        out = capsys.readouterr().out
        assert "engine.blocks.solved" in out
        assert "3.00" in out  # 6 blocks / 2 rounds

    def test_unreadable_path_fails(self, tmp_path, capsys):
        assert main([str(tmp_path / "missing.jsonl")]) == 2
        assert "cannot read" in capsys.readouterr().err
