"""Tests for the myopic Gaussian-mixture RSS likelihood (§4.2.1)."""

import numpy as np
import pytest

from repro.geo.points import Point
from repro.radio.gmm import gmm_log_likelihood, myopic_weights
from repro.radio.pathloss import PathLossModel


@pytest.fixture
def channel():
    return PathLossModel(shadowing_sigma_db=0.0)


class TestMyopicWeights:
    def test_rows_sum_to_one(self):
        d = np.array([[10.0, 50.0, 90.0], [5.0, 5.0, 5.0]])
        w = myopic_weights(d)
        assert np.allclose(w.sum(axis=1), 1.0)

    def test_closer_ap_gets_more_weight(self):
        w = myopic_weights(np.array([[10.0, 50.0]]))
        assert w[0, 0] > w[0, 1]

    def test_equal_distances_equal_weights(self):
        w = myopic_weights(np.array([[30.0, 30.0]]))
        assert w[0, 0] == pytest.approx(w[0, 1])

    def test_scale_controls_myopia(self):
        d = np.array([[10.0, 60.0]])
        sharp = myopic_weights(d, scale_m=10.0)
        flat = myopic_weights(d, scale_m=1000.0)
        assert sharp[0, 0] > flat[0, 0]

    def test_extreme_distances_no_overflow(self):
        w = myopic_weights(np.array([[1.0, 1e6]]))
        assert np.all(np.isfinite(w))

    def test_validation(self):
        with pytest.raises(ValueError):
            myopic_weights(np.zeros(3))
        with pytest.raises(ValueError):
            myopic_weights(np.zeros((2, 2)), scale_m=0.0)


class TestGmmLikelihood:
    def test_true_location_beats_wrong_location(self, channel):
        ap = Point(50.0, 50.0)
        points = [Point(30, 50), Point(45, 60), Point(60, 40), Point(70, 55)]
        rss = [
            float(channel.mean_rss_dbm(ap.distance_to(p))) for p in points
        ]
        good = gmm_log_likelihood(rss, points, [ap], channel)
        bad = gmm_log_likelihood(rss, points, [Point(10.0, 90.0)], channel)
        assert good > bad

    def test_empty_hypothesis_is_minus_inf(self, channel):
        assert gmm_log_likelihood([-60.0], [Point(0, 0)], [], channel) == float(
            "-inf"
        )

    def test_no_measurements_is_zero(self, channel):
        assert gmm_log_likelihood([], [], [Point(0, 0)], channel) == 0.0

    def test_length_mismatch_rejected(self, channel):
        with pytest.raises(ValueError):
            gmm_log_likelihood([-60.0, -61.0], [Point(0, 0)], [Point(1, 1)], channel)

    def test_bad_sigma_factor(self, channel):
        with pytest.raises(ValueError):
            gmm_log_likelihood(
                [-60.0], [Point(0, 0)], [Point(1, 1)], channel, sigma_factor=0.0
            )

    def test_two_ap_mixture_beats_single_when_data_is_bimodal(self, channel):
        ap1, ap2 = Point(20.0, 50.0), Point(80.0, 50.0)
        points = [Point(15, 50), Point(25, 50), Point(75, 50), Point(85, 50)]
        sources = [ap1, ap1, ap2, ap2]
        rss = [
            float(channel.mean_rss_dbm(src.distance_to(p)))
            for src, p in zip(sources, points)
        ]
        both = gmm_log_likelihood(rss, points, [ap1, ap2], channel)
        middle_only = gmm_log_likelihood(rss, points, [Point(50, 50)], channel)
        assert both > middle_only

    def test_likelihood_is_finite_for_bad_fits(self, channel):
        value = gmm_log_likelihood(
            [-200.0], [Point(0, 0)], [Point(1, 1)], channel
        )
        assert np.isfinite(value)

    def test_deterministic(self, channel):
        points = [Point(1, 2), Point(3, 4)]
        a = gmm_log_likelihood([-60.0, -65.0], points, [Point(2, 3)], channel)
        b = gmm_log_likelihood([-60.0, -65.0], points, [Point(2, 3)], channel)
        assert a == b
