"""Tests for the log-distance path-loss model (§4.2.1)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.radio.pathloss import PathLossModel, snr_noise_sigma


@pytest.fixture
def model():
    return PathLossModel(
        tx_power_dbm=20.0,
        reference_loss_db=45.6,
        path_loss_exponent=1.76,
        shadowing_sigma_db=0.0,
    )


class TestMeanRss:
    def test_reference_distance_value(self, model):
        # At d0: r = t - l0.
        assert model.mean_rss_dbm(1.0) == pytest.approx(20.0 - 45.6)

    def test_paper_formula_at_10m(self, model):
        expected = 20.0 - 45.6 - 10 * 1.76 * np.log10(10.0)
        assert model.mean_rss_dbm(10.0) == pytest.approx(expected)

    def test_monotonically_decreasing(self, model):
        distances = np.linspace(1.0, 500.0, 100)
        rss = model.mean_rss_dbm(distances)
        assert np.all(np.diff(rss) < 0)

    def test_clamped_below_reference(self, model):
        assert model.mean_rss_dbm(0.01) == model.mean_rss_dbm(1.0)

    def test_vectorized(self, model):
        out = model.mean_rss_dbm([1.0, 10.0, 100.0])
        assert out.shape == (3,)

    def test_free_space_doubles_loss_per_decade(self):
        fs = PathLossModel(path_loss_exponent=2.0, shadowing_sigma_db=0.0)
        drop = fs.mean_rss_dbm(10.0) - fs.mean_rss_dbm(100.0)
        assert drop == pytest.approx(20.0)

    @given(st.floats(min_value=1.0, max_value=1e4))
    def test_inversion_roundtrip(self, distance):
        model = PathLossModel(shadowing_sigma_db=0.0)
        rss = model.mean_rss_dbm(distance)
        assert model.distance_for_rss(rss) == pytest.approx(
            distance, rel=1e-9
        )


class TestValidation:
    def test_bad_exponent(self):
        with pytest.raises(ValueError):
            PathLossModel(path_loss_exponent=0.0)

    def test_bad_sigma(self):
        with pytest.raises(ValueError):
            PathLossModel(shadowing_sigma_db=-1.0)

    def test_bad_reference_distance(self):
        with pytest.raises(ValueError):
            PathLossModel(reference_distance_m=0.0)


class TestShadowing:
    def test_zero_sigma_deterministic(self, model):
        a = model.sample_rss_dbm(50.0, rng=1)
        b = model.sample_rss_dbm(50.0, rng=2)
        assert a == b

    def test_sampling_statistics(self):
        model = PathLossModel(shadowing_sigma_db=2.0)
        rng = np.random.default_rng(0)
        samples = model.sample_rss_dbm(np.full(20000, 50.0), rng=rng)
        assert np.std(samples) == pytest.approx(2.0, rel=0.05)
        assert np.mean(samples) == pytest.approx(
            float(model.mean_rss_dbm(50.0)), abs=0.1
        )

    def test_seeded_reproducibility(self):
        model = PathLossModel(shadowing_sigma_db=1.0)
        a = model.sample_rss_dbm([10.0, 20.0], rng=9)
        b = model.sample_rss_dbm([10.0, 20.0], rng=9)
        assert np.array_equal(a, b)


class TestRangeHelpers:
    def test_range_and_sensitivity_are_inverse(self, model):
        sensitivity = model.sensitivity_for_range(100.0)
        assert model.range_for_sensitivity(sensitivity) == pytest.approx(100.0)

    def test_sensitivity_bad_range(self, model):
        with pytest.raises(ValueError):
            model.sensitivity_for_range(0.0)

    def test_distance_for_rss_clamped(self, model):
        # An absurdly strong RSS maps to the reference distance, not below.
        assert model.distance_for_rss(100.0) == pytest.approx(1.0)


class TestSnrNoise:
    def test_matches_definition(self):
        signal = np.full(1000, -60.0)
        sigma = snr_noise_sigma(signal, 30.0)
        assert 10 * np.log10(np.mean(signal**2) / sigma**2) == pytest.approx(30.0)

    def test_zero_signal_gives_zero_noise(self):
        assert snr_noise_sigma(np.zeros(10), 30.0) == 0.0

    def test_empty_signal_rejected(self):
        with pytest.raises(ValueError):
            snr_noise_sigma(np.array([]), 30.0)

    def test_higher_snr_means_less_noise(self):
        signal = np.array([-50.0, -60.0, -70.0])
        assert snr_noise_sigma(signal, 40.0) < snr_noise_sigma(signal, 20.0)
