"""Tests for RSS measurement records and traces."""

import pytest

from repro.geo.points import Point
from repro.radio.rss import RssMeasurement, RssTrace


def make(ts, rss=-60.0, ttl=100.0, ap=None):
    return RssMeasurement(
        rss_dbm=rss, position=Point(0, 0), timestamp=ts, ttl=ttl, source_ap=ap
    )


class TestMeasurement:
    def test_expiry(self):
        m = make(10.0, ttl=5.0)
        assert not m.expired(14.9)
        assert m.expired(15.1)

    def test_bad_ttl(self):
        with pytest.raises(ValueError):
            make(0.0, ttl=0.0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            make(0.0).rss_dbm = -10.0


class TestTrace:
    def test_append_and_len(self):
        trace = RssTrace()
        trace.append(make(0.0))
        trace.append(make(1.0))
        assert len(trace) == 2

    def test_time_ordering_enforced(self):
        trace = RssTrace()
        trace.append(make(5.0))
        with pytest.raises(ValueError):
            trace.append(make(4.0))

    def test_equal_timestamps_allowed(self):
        trace = RssTrace()
        trace.append(make(5.0))
        trace.append(make(5.0))
        assert len(trace) == 2

    def test_extend(self):
        trace = RssTrace()
        trace.extend([make(0.0), make(1.0), make(2.0)])
        assert len(trace) == 3

    def test_iteration_and_indexing(self):
        measurements = [make(float(i)) for i in range(3)]
        trace = RssTrace(measurements=list(measurements))
        assert list(trace) == measurements
        assert trace[1] is measurements[1]
        assert trace[1:] == measurements[1:]

    def test_alive_filters_expired(self):
        trace = RssTrace()
        trace.append(make(0.0, ttl=10.0))
        trace.append(make(5.0, ttl=10.0))
        alive = trace.alive(now=12.0)
        assert len(alive) == 1
        assert alive[0].timestamp == 5.0

    def test_window(self):
        trace = RssTrace(measurements=[make(float(i)) for i in range(10)])
        window = trace.window(2, 3)
        assert [m.timestamp for m in window] == [2.0, 3.0, 4.0]

    def test_window_validation(self):
        trace = RssTrace()
        with pytest.raises(ValueError):
            trace.window(-1, 2)

    def test_accessors(self):
        trace = RssTrace()
        trace.append(make(0.0, rss=-40.0, ap="x"))
        trace.append(make(1.0, rss=-50.0))
        assert trace.values() == [-40.0, -50.0]
        assert trace.source_aps() == ["x", None]
        assert len(trace.positions()) == 2
