"""Tests for the correlated shadowing field (Gudmundson model)."""

import numpy as np
import pytest

from repro.geo.points import Point
from repro.radio.shadowing import CorrelatedShadowingField


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"sigma_db": -1.0, "correlation_distance_m": 50.0},
            {"sigma_db": 2.0, "correlation_distance_m": 0.0},
            {"sigma_db": 2.0, "correlation_distance_m": 50.0, "max_memory": 0},
        ],
    )
    def test_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            CorrelatedShadowingField(**kwargs)


class TestSampling:
    def test_zero_sigma_is_zero(self):
        field = CorrelatedShadowingField(0.0, 50.0, rng=0)
        assert field.sample(Point(0, 0)) == 0.0
        assert field.sample(Point(100, 100)) == 0.0

    def test_marginal_statistics(self):
        """Fresh fields give N(0, σ²) marginals at any single point."""
        samples = [
            CorrelatedShadowingField(3.0, 50.0, rng=seed).sample(Point(0, 0))
            for seed in range(2000)
        ]
        assert np.mean(samples) == pytest.approx(0.0, abs=0.2)
        assert np.std(samples) == pytest.approx(3.0, rel=0.1)

    def test_coincident_points_agree(self):
        field = CorrelatedShadowingField(3.0, 50.0, rng=1)
        first = field.sample(Point(10, 10))
        second = field.sample(Point(10, 10))
        assert second == pytest.approx(first, abs=0.02)

    def test_nearby_points_correlated(self):
        """Fades 1 m apart nearly coincide; 1 km apart they don't."""
        near_gaps, far_gaps = [], []
        for seed in range(300):
            field = CorrelatedShadowingField(3.0, 50.0, rng=seed)
            a = field.sample(Point(0, 0))
            near_gaps.append(abs(field.sample(Point(1, 0)) - a))
            far_gaps.append(abs(field.sample(Point(1000, 0)) - a))
        assert np.mean(near_gaps) < 0.5 * np.mean(far_gaps)

    def test_empirical_correlation_decays_with_distance(self):
        distances = (10.0, 100.0)
        correlations = []
        for d in distances:
            pairs = []
            for seed in range(400):
                field = CorrelatedShadowingField(3.0, 50.0, rng=seed)
                pairs.append(
                    (field.sample(Point(0, 0)), field.sample(Point(d, 0)))
                )
            a, b = np.array(pairs).T
            correlations.append(np.corrcoef(a, b)[0, 1])
        assert correlations[0] > correlations[1]
        # Gudmundson: ρ(d) = exp(−d / d_corr).
        assert correlations[0] == pytest.approx(np.exp(-10 / 50), abs=0.15)
        assert correlations[1] == pytest.approx(np.exp(-100 / 50), abs=0.15)

    def test_sample_many(self):
        field = CorrelatedShadowingField(2.0, 30.0, rng=2)
        values = field.sample_many([Point(i * 5.0, 0) for i in range(10)])
        assert values.shape == (10,)
        assert np.all(np.isfinite(values))

    def test_memory_bound_respected(self):
        field = CorrelatedShadowingField(2.0, 30.0, max_memory=16, rng=3)
        field.sample_many([Point(float(i), 0) for i in range(50)])
        assert len(field._positions) == 16

    def test_reset(self):
        field = CorrelatedShadowingField(2.0, 30.0, rng=4)
        field.sample(Point(0, 0))
        field.reset()
        assert field._positions == []

    def test_reproducible(self):
        points = [Point(i * 10.0, 0) for i in range(5)]
        a = CorrelatedShadowingField(2.0, 40.0, rng=7).sample_many(points)
        b = CorrelatedShadowingField(2.0, 40.0, rng=7).sample_many(points)
        assert np.allclose(a, b)
