"""Deterministic transport fault injection for the runtime test suite.

:class:`FlakyTransport` wraps any transport and, driven by its own
seeded generator, injects the failure modes a roadside deployment sees:

* **drops** — the frame is lost *before* delivery
  (:class:`~repro.runtime.transport.TransportError`; a retry re-sends
  the same frame, so nothing is ever half-applied);
* **disconnects** — the frame is delivered but the connection dies
  before the reply arrives, so the client retries a message the server
  already processed — the natural source of duplicate deliveries that
  the crowd-server's handlers must tolerate;
* **duplicates** — the frame is delivered twice back-to-back (a
  retransmit the server sees even though the client never retried);
* **delays** — recorded, not slept, so fault suites run at full speed
  while still exercising the code path counts.

All draws come from the wrapper's own ``numpy`` generator: the fault
schedule is a pure function of the seed and the frame sequence, never of
wall-clock timing, which is what lets the suite assert *bit-identical*
campaign outcomes under faults.
"""

from typing import List, Optional

import numpy as np

from repro.runtime.transport import Transport, TransportError
from repro.util.rng import RngLike, ensure_rng

__all__ = ["FlakyTransport"]


class FlakyTransport:
    """Inject seeded drops, delays, duplicates and disconnects.

    Rates are independent per-request probabilities, checked in the
    order drop → disconnect → duplicate → delay.  Compose under
    :class:`~repro.runtime.net.RetryingTransport` (with a no-op sleep)
    to prove campaigns ride through the faults.
    """

    def __init__(
        self,
        inner: Transport,
        *,
        rng: RngLike = None,
        drop_rate: float = 0.0,
        disconnect_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        delay_rate: float = 0.0,
    ) -> None:
        for name, rate in (
            ("drop_rate", drop_rate),
            ("disconnect_rate", disconnect_rate),
            ("duplicate_rate", duplicate_rate),
            ("delay_rate", delay_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        self.inner = inner
        self.rng = ensure_rng(rng)
        self.drop_rate = drop_rate
        self.disconnect_rate = disconnect_rate
        self.duplicate_rate = duplicate_rate
        self.delay_rate = delay_rate
        self.drops = 0
        self.disconnects = 0
        self.duplicates = 0
        self.delays: List[float] = []

    @property
    def faults(self) -> int:
        """Total faults injected so far."""
        return self.drops + self.disconnects + self.duplicates + len(
            self.delays
        )

    def request(self, text: str) -> Optional[str]:
        """Deliver one frame, possibly injecting a fault first.

        Draws all four fault decisions up front so the generator
        consumption per request is constant — the schedule for request
        ``n`` never depends on which faults fired for requests ``< n``.
        """
        draws = self.rng.random(4)
        if draws[0] < self.drop_rate:
            self.drops += 1
            raise TransportError("injected fault: frame dropped")
        if draws[3] < self.delay_rate:
            # Recorded, not slept: the schedule is what matters.  The
            # draw itself doubles as the delay duration so consumption
            # stays at exactly four draws per request.
            self.delays.append(float(draws[3]))
        reply = self.inner.request(text)
        if draws[1] < self.disconnect_rate:
            # Delivered, but the reply is lost: the client sees an
            # error and will retry a frame the server already handled.
            self.disconnects += 1
            raise TransportError("injected fault: connection lost mid-reply")
        if draws[2] < self.duplicate_rate:
            # A retransmit the server sees without any client retry.
            self.duplicates += 1
            self.inner.request(text)
        return reply
