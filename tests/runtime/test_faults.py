"""Campaigns complete bit-identically under injected transport faults.

The acceptance criterion for the fault-injection satellite: with drops,
duplicate deliveries and mid-campaign disconnects enabled (deterministic
and seeded, see :mod:`tests.runtime.faults`), a retried campaign
publishes *exactly* the same state as the fault-free run — at-least-once
delivery over duplicate-tolerant handlers changes nothing observable.
"""

import pytest

from repro.geo.grid import Grid
from repro.geo.points import BoundingBox
from repro.middleware.protocol import (
    ApRecord,
    LookupRequest,
    UploadReport,
    decode_message,
    encode_message,
)
from repro.middleware.server import CrowdServer, ServerConfig
from repro.runtime.net import RetryPolicy, RetryingTransport
from repro.runtime.scheduler import CampaignScheduler
from repro.runtime.transport import InProcessTransport, TransportError

from tests.runtime.faults import FlakyTransport
from tests.runtime.test_scheduler import (
    SEED,
    _campaign,
    _fingerprint,
    planner,
    route,
    world,
)

pytestmark = pytest.mark.slow

__all__ = ["planner", "route", "world"]  # re-exported fixtures


def _flaky_factory(audit, *, seed=7, **rates):
    """A transport factory injecting seeded faults under a retry loop."""

    def factory(endpoint):
        flaky = FlakyTransport(
            InProcessTransport(endpoint), rng=seed, **rates
        )
        audit.append(flaky)
        return RetryingTransport(
            flaky,
            policy=RetryPolicy(max_attempts=50, base_delay_s=0.01),
            sleep=lambda s: None,
        )

    return factory


class TestFlakyTransportUnit:
    def _endpoint(self):
        server = CrowdServer(ServerConfig(workers_per_task=2), rng=0)
        server.register_segment(
            "seg",
            Grid(box=BoundingBox(0, 0, 100, 100), lattice_length=10.0),
        )
        return server

    def _upload(self):
        return encode_message(
            UploadReport(
                vehicle_id="v1",
                segment_id="seg",
                timestamp=0.0,
                aps=(ApRecord(x=5.0, y=5.0),),
                lattice_length_m=10.0,
            )
        )

    def test_drop_loses_the_frame_before_delivery(self):
        endpoint = self._endpoint()
        flaky = FlakyTransport(
            InProcessTransport(endpoint), rng=0, drop_rate=1.0
        )
        with pytest.raises(TransportError, match="dropped"):
            flaky.request(self._upload())
        assert flaky.drops == 1
        assert endpoint.database.segment("seg").vehicles() == []

    def test_disconnect_delivers_then_raises(self):
        endpoint = self._endpoint()
        flaky = FlakyTransport(
            InProcessTransport(endpoint), rng=0, disconnect_rate=1.0
        )
        with pytest.raises(TransportError, match="connection lost"):
            flaky.request(self._upload())
        assert flaky.disconnects == 1
        # The server DID get the frame — the retry will be a duplicate.
        assert endpoint.database.segment("seg").vehicles() == ["v1"]

    def test_duplicate_delivers_twice(self):
        endpoint = self._endpoint()
        seen = []

        class Spy:
            def request(self, text):
                seen.append(text)
                return None

        flaky = FlakyTransport(Spy(), rng=0, duplicate_rate=1.0)
        assert flaky.request(self._upload()) is None
        assert flaky.duplicates == 1
        assert len(seen) == 2
        assert seen[0] == seen[1]

    def test_delays_recorded_not_slept(self):
        flaky = FlakyTransport(
            InProcessTransport(self._endpoint()), rng=0, delay_rate=1.0
        )
        flaky.request(
            encode_message(LookupRequest(vehicle_id="u", segment_id="seg"))
        )
        assert len(flaky.delays) == 1
        assert 0.0 <= flaky.delays[0] < 1.0

    def test_fault_schedule_is_deterministic(self):
        def run(seed):
            flaky = FlakyTransport(
                InProcessTransport(self._endpoint()),
                rng=seed,
                drop_rate=0.3,
                disconnect_rate=0.2,
                duplicate_rate=0.2,
                delay_rate=0.3,
            )
            outcomes = []
            for _ in range(40):
                try:
                    flaky.request(self._upload())
                    outcomes.append("ok")
                except TransportError as error:
                    outcomes.append(str(error))
            return outcomes, flaky.faults

        assert run(123) == run(123)
        assert run(123) != run(124)

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError, match="drop_rate"):
            FlakyTransport(
                InProcessTransport(self._endpoint()), rng=0, drop_rate=1.5
            )

    def test_retry_loop_rides_through_drops(self):
        endpoint = self._endpoint()
        flaky = FlakyTransport(
            InProcessTransport(endpoint), rng=5, drop_rate=0.5
        )
        transport = RetryingTransport(
            flaky,
            policy=RetryPolicy(max_attempts=50, base_delay_s=0.01),
            sleep=lambda s: None,
        )
        for _ in range(20):
            assert transport.request(self._upload()) is None
        assert flaky.drops > 0
        assert endpoint.database.segment("seg").vehicles() == ["v1"]


class TestCampaignUnderFaults:
    @pytest.fixture(scope="class")
    def baseline(self, world, planner, route):
        scheduler = CampaignScheduler(_campaign(world, planner, route))
        return _fingerprint(scheduler.run(rng=SEED))

    @pytest.mark.parametrize(
        "rates",
        [
            {"drop_rate": 0.15},
            {"disconnect_rate": 0.15},
            {"duplicate_rate": 0.25},
            {"delay_rate": 0.5},
            {
                "drop_rate": 0.1,
                "disconnect_rate": 0.1,
                "duplicate_rate": 0.1,
                "delay_rate": 0.2,
            },
        ],
        ids=["drops", "disconnects", "duplicates", "delays", "all-at-once"],
    )
    def test_published_state_identical_under_faults(
        self, baseline, world, planner, route, rates
    ):
        audit = []
        scheduler = CampaignScheduler(
            _campaign(world, planner, route),
            transport_factory=_flaky_factory(audit, **rates),
        )
        outcome = scheduler.run(rng=SEED)
        assert _fingerprint(outcome) == baseline
        # The run must actually have been faulty, or this test proves
        # nothing.
        assert audit[0].faults > 0

    def test_sharded_campaign_under_combined_faults(
        self, baseline, world, planner, route
    ):
        audit = []
        scheduler = CampaignScheduler(
            _campaign(world, planner, route),
            n_shards=4,
            transport_factory=_flaky_factory(
                audit,
                drop_rate=0.1,
                disconnect_rate=0.1,
                duplicate_rate=0.1,
            ),
        )
        outcome = scheduler.run(rng=SEED)
        assert _fingerprint(outcome) == baseline
        assert audit[0].faults > 0
