"""TCP transport: framing, retry policy, and live socket exchanges.

The framing tests pin the wire format of docs/RUNTIME.md §5 (4-byte
big-endian length + UTF-8 JSON, empty frame = ack); the socket tests run
a real :class:`TcpServer` on loopback and prove the blocking client's
timeout, reconnect and crash-restart behaviour against it.
"""

import threading
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.geo.grid import Grid
from repro.geo.points import BoundingBox
from repro.middleware.protocol import (
    ApRecord,
    DownloadResponse,
    LookupRequest,
    UploadReport,
    decode_message,
    encode_message,
)
from repro.middleware.server import CrowdServer, ServerConfig
from repro.obs.recorder import InMemoryRecorder
from repro.runtime.net import (
    MAX_FRAME_BYTES,
    RetryPolicy,
    RetryingTransport,
    TcpServer,
    TcpTransport,
    decode_frames,
    encode_frame,
)
from repro.runtime.transport import (
    InProcessTransport,
    TransportError,
    TransportTimeout,
)

pytestmark = pytest.mark.slow


# -- framing ---------------------------------------------------------------


class TestFraming:
    @given(st.lists(st.text(min_size=1, max_size=200), max_size=10))
    @settings(max_examples=100, deadline=None)
    def test_frames_roundtrip(self, texts):
        # Non-empty texts only: the empty frame is reserved as the
        # ``None`` ack, and no protocol message encodes to "".
        buffer = b"".join(encode_frame(t) for t in texts)
        frames, tail = decode_frames(buffer)
        assert frames == texts
        assert tail == b""

    def test_none_is_the_empty_frame(self):
        assert encode_frame(None) == b"\x00\x00\x00\x00"
        frames, tail = decode_frames(encode_frame(None))
        assert frames == [None]
        assert tail == b""

    def test_partial_frame_stays_in_tail(self):
        buffer = encode_frame("hello") + encode_frame("world")[:3]
        frames, tail = decode_frames(buffer)
        assert frames == ["hello"]
        assert tail == encode_frame("world")[:3]

    def test_header_is_big_endian_length(self):
        frame = encode_frame("abc")
        assert frame[:4] == (3).to_bytes(4, "big")
        assert frame[4:] == b"abc"

    def test_oversize_payload_rejected_on_encode(self):
        with pytest.raises(ValueError, match="exceeds"):
            encode_frame("x" * (MAX_FRAME_BYTES + 1))

    def test_oversize_length_rejected_on_decode(self):
        header = (MAX_FRAME_BYTES + 1).to_bytes(4, "big")
        with pytest.raises(ValueError, match="exceeds"):
            decode_frames(header)


# -- retry policy ----------------------------------------------------------


class TestRetryPolicy:
    def test_delays_are_bounded_exponential(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay_s=0.1, backoff=2.0, max_delay_s=0.3
        )
        assert list(policy.delays()) == [0.1, 0.2, 0.3, 0.3]

    def test_single_attempt_means_no_delays(self):
        assert list(RetryPolicy(max_attempts=1).delays()) == []

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay_s": -1.0},
            {"max_delay_s": -0.1},
            {"backoff": 0.5},
        ],
    )
    def test_invalid_policies_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class _FailingNTimes:
    """A transport that raises ``error`` for the first ``n`` requests."""

    def __init__(self, n, error=TransportError("boom"), reply="ok"):
        self.n = n
        self.error = error
        self.reply = reply
        self.calls = 0

    def request(self, text):
        self.calls += 1
        if self.calls <= self.n:
            raise self.error
        return self.reply


class TestRetryingTransport:
    def test_retries_until_success(self):
        inner = _FailingNTimes(2)
        slept = []
        transport = RetryingTransport(
            inner,
            policy=RetryPolicy(max_attempts=4, base_delay_s=0.5, backoff=2.0),
            sleep=slept.append,
        )
        assert transport.request("x") == "ok"
        assert inner.calls == 3
        assert slept == [0.5, 1.0]

    def test_budget_exhaustion_reraises_last_error(self):
        inner = _FailingNTimes(99)
        transport = RetryingTransport(
            inner,
            policy=RetryPolicy(max_attempts=3),
            sleep=lambda s: None,
        )
        with pytest.raises(TransportError, match="boom"):
            transport.request("x")
        assert inner.calls == 3

    def test_only_transport_errors_are_retried(self):
        class Broken:
            def request(self, text):
                raise ValueError("a bug, not weather")

        transport = RetryingTransport(Broken(), sleep=lambda s: None)
        with pytest.raises(ValueError):
            transport.request("x")

    def test_retry_counters_recorded(self):
        recorder = InMemoryRecorder()
        transport = RetryingTransport(
            _FailingNTimes(99),
            policy=RetryPolicy(max_attempts=3),
            sleep=lambda s: None,
            recorder=recorder,
        )
        with pytest.raises(TransportError):
            transport.request("x")
        counters = recorder.counters
        assert counters["transport.retries"] == 2
        assert counters["transport.giveups"] == 1


# -- live sockets ----------------------------------------------------------


def _server(recorder=None):
    server = CrowdServer(ServerConfig(workers_per_task=2), rng=0)
    server.register_segment(
        "seg-w", Grid(box=BoundingBox(0, 0, 100, 100), lattice_length=10.0)
    )
    return TcpServer(server, recorder=recorder)


def _upload(vehicle="v1"):
    return encode_message(
        UploadReport(
            vehicle_id=vehicle,
            segment_id="seg-w",
            timestamp=1.0,
            aps=(ApRecord(x=50.0, y=50.0),),
            lattice_length_m=10.0,
        )
    )


class TestTcpEndToEnd:
    def test_request_reply_over_loopback(self):
        with _server() as net:
            host, port = net.address
            with TcpTransport(host, port, timeout_s=5.0) as transport:
                assert transport.request(_upload()) is None
                reply = transport.request(
                    encode_message(
                        LookupRequest(vehicle_id="u", segment_id="seg-w")
                    )
                )
                assert isinstance(decode_message(reply), DownloadResponse)

    def test_ephemeral_port_is_reported(self):
        net = _server()
        host, port = net.start()
        try:
            assert port != 0
            assert (host, port) == net.address
        finally:
            net.stop()

    def test_dead_server_raises_after_retry_budget(self):
        net = _server()
        host, port = net.start()
        net.stop()
        transport = TcpTransport(
            host,
            port,
            timeout_s=1.0,
            policy=RetryPolicy(max_attempts=2, base_delay_s=0.01),
            sleep=lambda s: None,
        )
        with pytest.raises(TransportError):
            transport.request(_upload())

    def test_server_restart_on_same_port_reconnects(self):
        net = _server()
        host, port = net.start()
        transport = TcpTransport(
            host,
            port,
            timeout_s=5.0,
            policy=RetryPolicy(max_attempts=8, base_delay_s=0.05),
        )
        try:
            assert transport.request(_upload("v1")) is None
            net.stop()
            net2 = TcpServer(net.endpoint, host=host, port=port)
            net2.start()
            try:
                # The old connection is dead; the retry loop reconnects.
                assert transport.request(_upload("v2")) is None
            finally:
                net2.stop()
        finally:
            transport.close()

    def test_retry_rides_through_an_outage(self):
        """A request issued while the server is down succeeds once it is
        back — the client's backoff covers the outage window."""
        net = _server()
        host, port = net.start()
        net.stop()
        restarted = TcpServer(net.endpoint, host=host, port=port)
        timer = threading.Timer(0.3, restarted.start)
        timer.start()
        transport = TcpTransport(
            host,
            port,
            timeout_s=5.0,
            policy=RetryPolicy(
                max_attempts=20, base_delay_s=0.05, max_delay_s=0.2
            ),
        )
        try:
            assert transport.request(_upload()) is None
        finally:
            timer.join()
            transport.close()
            restarted.stop()

    def test_slow_endpoint_times_out(self):
        class Sleepy:
            def handle_wire_message(self, text):
                time.sleep(1.0)
                return None

        net = TcpServer(Sleepy())
        host, port = net.start()
        recorder = InMemoryRecorder()
        transport = TcpTransport(
            host,
            port,
            timeout_s=0.1,
            policy=RetryPolicy(max_attempts=2, base_delay_s=0.01),
            sleep=lambda s: None,
            recorder=recorder,
        )
        try:
            with pytest.raises(TransportTimeout):
                transport.request(_upload())
            counters = recorder.counters
            assert counters["transport.timeouts"] == 2
            assert counters["transport.giveups"] == 1
        finally:
            transport.close()
            net.stop()

    def test_start_twice_rejected(self):
        with _server() as net:
            with pytest.raises(RuntimeError, match="already running"):
                net.start()

    def test_stop_is_idempotent(self):
        net = _server()
        net.start()
        net.stop()
        net.stop()
        assert not net.running

    def test_bind_failure_surfaces(self):
        with _server() as net:
            _, port = net.address
            clash = TcpServer(net.endpoint, port=port)
            with pytest.raises(RuntimeError, match="failed to bind"):
                clash.start()

    def test_server_counters(self):
        recorder = InMemoryRecorder()
        with _server(recorder) as net:
            host, port = net.address
            with TcpTransport(host, port, timeout_s=5.0) as transport:
                transport.request(_upload())
                transport.request(_upload("v2"))
        counters = recorder.counters
        assert counters["transport.connections"] == 1
        assert counters["transport.frames.served"] == 2


class TestRetryingTcpComposition:
    def test_wrapper_composes_with_tcp(self):
        """RetryingTransport over TcpTransport(max_attempts=1) is the
        same retry loop, lifted out — useful for fault injection."""
        with _server() as net:
            host, port = net.address
            inner = TcpTransport(
                host, port, timeout_s=5.0, policy=RetryPolicy(max_attempts=1)
            )
            transport = RetryingTransport(inner, sleep=lambda s: None)
            try:
                assert transport.request(_upload()) is None
            finally:
                inner.close()
