"""ServerRouter shard-merge determinism and routing behaviour.

The load-bearing property: a router with *any* shard count drives its
shards through the exact random stream a single ``CrowdServer`` with the
same seed would consume, so the full post-campaign state — assignments,
fused snapshots, reliabilities, merged database view — is bit-identical
across 1/2/4 shards and to the unsharded server.
"""

import numpy as np
import pytest

from repro.geo.grid import Grid
from repro.geo.points import BoundingBox
from repro.middleware.protocol import (
    ApRecord,
    DownloadResponse,
    ErrorResponse,
    LabelSubmission,
    LookupRequest,
    TaskRequest,
    UploadReport,
    decode_message,
    encode_message,
)
from repro.middleware.server import CrowdServer, ServerConfig
from repro.runtime.router import ServerRouter, shard_of

SEGMENTS = tuple(f"seg-{i}" for i in range(6))
SEED = 20240806


def _grid(index):
    return Grid(
        box=BoundingBox(index * 100.0, 0.0, index * 100.0 + 100.0, 80.0),
        lattice_length=10.0,
    )


def _populate(endpoint):
    """Register the segments and upload a deterministic report mix.

    Three mapper vehicles per segment report APs, five more upload empty
    reports (round participants without patterns), and two cross-segment
    "rover" vehicles report everywhere — those exercise the
    globally-last reliability merge across shards.
    """
    for index, segment_id in enumerate(SEGMENTS):
        endpoint.register_segment(segment_id, _grid(index))
    for index, segment_id in enumerate(SEGMENTS):
        base_x = index * 100.0
        for v in range(3):
            endpoint.receive_report(
                UploadReport(
                    vehicle_id=f"m{index}-{v}",
                    segment_id=segment_id,
                    timestamp=1.0,
                    aps=(
                        ApRecord(x=base_x + 20.0 + 7.0 * v, y=30.0),
                        ApRecord(x=base_x + 60.0, y=50.0 + 3.0 * v),
                    ),
                    lattice_length_m=10.0,
                )
            )
        for v in range(3, 8):
            endpoint.receive_report(
                UploadReport(
                    vehicle_id=f"m{index}-{v}",
                    segment_id=segment_id,
                    timestamp=1.0,
                    aps=(),
                    lattice_length_m=10.0,
                )
            )
        for rover in ("rover-0", "rover-1"):
            endpoint.receive_report(
                UploadReport(
                    vehicle_id=rover,
                    segment_id=segment_id,
                    timestamp=2.0,
                    aps=(ApRecord(x=base_x + 40.0, y=40.0),),
                    lattice_length_m=10.0,
                )
            )


def _label_for(vehicle_id, task_id):
    """A deterministic, mixed ±1 labeling rule (same for every endpoint)."""
    return 1 if (task_id + len(vehicle_id)) % 2 == 0 else -1


def _run_rounds(endpoint, n_workers=None):
    """Open, label and aggregate one round per segment; return the state."""
    assignments = endpoint.open_rounds(SEGMENTS, n_workers=n_workers)
    for segment_id in SEGMENTS:
        for vehicle_id, message in assignments[segment_id].items():
            endpoint.submit_labels(
                segment_id,
                LabelSubmission(
                    vehicle_id=vehicle_id,
                    labels=tuple(
                        (tid, _label_for(vehicle_id, tid))
                        for tid, _, _ in message.tasks
                    ),
                    segment_id=segment_id,
                ),
            )
    snapshots = endpoint.aggregate_rounds(SEGMENTS, n_workers=n_workers)
    vehicles = sorted(
        {f"m{i}-{v}" for i in range(len(SEGMENTS)) for v in range(8)}
        | {"rover-0", "rover-1"}
    )
    return {
        "assignments": assignments,
        "snapshots": snapshots,
        "reliabilities": {v: endpoint.reliability_of(v) for v in vehicles},
        "fused": [
            (p.x, p.y) for p in endpoint.database.all_fused_locations()
        ],
        "segment_ids": endpoint.database.segment_ids(),
    }


@pytest.fixture(scope="module")
def reference():
    server = CrowdServer(ServerConfig(), rng=np.random.default_rng(SEED))
    _populate(server)
    return _run_rounds(server)


class TestShardMergeDeterminism:
    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_router_matches_single_server(self, reference, n_shards):
        router = ServerRouter(
            ServerConfig(),
            n_shards=n_shards,
            rng=np.random.default_rng(SEED),
        )
        _populate(router)
        assert _run_rounds(router) == reference

    @pytest.mark.parametrize("n_shards", [2, 4])
    def test_parallel_workers_match_too(self, reference, n_shards):
        router = ServerRouter(
            ServerConfig(),
            n_shards=n_shards,
            rng=np.random.default_rng(SEED),
        )
        _populate(router)
        assert _run_rounds(router, n_workers=2) == reference

    def test_segments_actually_spread(self):
        homes = {shard_of(segment_id, 4) for segment_id in SEGMENTS}
        assert len(homes) > 1


class TestShardMapping:
    def test_deterministic_and_in_range(self):
        for segment_id in SEGMENTS:
            home = shard_of(segment_id, 4)
            assert home == shard_of(segment_id, 4)
            assert 0 <= home < 4

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            shard_of("seg-0", 0)
        with pytest.raises(ValueError):
            ServerRouter(n_shards=0)


class TestRouterRouting:
    @pytest.fixture
    def router(self):
        router = ServerRouter(
            ServerConfig(workers_per_task=2), n_shards=3, rng=7
        )
        _populate(router)
        return router

    def test_unknown_segment_raises(self, router):
        with pytest.raises(KeyError):
            router.segment_grid("ghost")
        with pytest.raises(KeyError):
            router.download("ghost")
        with pytest.raises(KeyError):
            router.database.segment("ghost")

    def test_duplicate_batch_rejected(self, router):
        with pytest.raises(ValueError, match="duplicate"):
            router.open_rounds(["seg-0", "seg-0"])

    def test_wire_upload_and_lookup(self, router):
        assert (
            router.handle_wire_message(
                encode_message(
                    UploadReport(
                        vehicle_id="wire-v",
                        segment_id="seg-0",
                        timestamp=9.0,
                        aps=(),
                        lattice_length_m=10.0,
                    )
                )
            )
            is None
        )
        assert "wire-v" in router.database.segment("seg-0").vehicles()
        reply = router.handle_wire_message(
            encode_message(LookupRequest(vehicle_id="u", segment_id="seg-3"))
        )
        response = decode_message(reply)
        assert isinstance(response, DownloadResponse)
        assert response.segment_id == "seg-3"

    def test_wire_task_poll_and_segment_addressed_labels(self, router):
        assignments = router.open_rounds(SEGMENTS)
        segment_id = "seg-2"
        for vehicle_id, expected in assignments[segment_id].items():
            reply = router.handle_wire_message(
                encode_message(
                    TaskRequest(vehicle_id=vehicle_id, segment_id=segment_id)
                )
            )
            polled = decode_message(reply)
            assert polled == expected
            assert (
                router.handle_wire_message(
                    encode_message(
                        LabelSubmission(
                            vehicle_id=vehicle_id,
                            labels=tuple(
                                (tid, 1) for tid, _, _ in polled.tasks
                            ),
                            segment_id=segment_id,
                        )
                    )
                )
                is None
            )
        assert router.round_complete(segment_id)

    def test_unaddressed_label_routes_to_oldest_global_round(self, router):
        assignments = router.open_rounds(SEGMENTS)
        # rover-0 participates everywhere; its oldest open round is the
        # first segment of the batch regardless of which shard hosts it.
        message = assignments["seg-0"]["rover-0"]
        assert (
            router.handle_wire_message(
                encode_message(
                    LabelSubmission(
                        vehicle_id="rover-0",
                        labels=tuple((tid, 1) for tid, _, _ in message.tasks),
                    )
                )
            )
            is None
        )

    def test_task_poll_without_round_is_error(self, router):
        reply = router.handle_wire_message(
            encode_message(TaskRequest(vehicle_id="m0-0", segment_id="seg-0"))
        )
        assert isinstance(decode_message(reply), ErrorResponse)
