"""CampaignScheduler: bit-identity to the pre-refactor driver, wire audit.

``_legacy_run`` below is a faithful copy of the pre-refactor
``FleetCampaign._run`` body — direct ``CrowdServer`` method calls, no
transport, no router, no codec.  The acceptance criterion is that the
scheduler (1 and 4 shards, serial and parallel workers) reproduces its
``CampaignOutcome`` bit-for-bit, and that a counting transport proves
every client↔server exchange crossed the wire.
"""

from dataclasses import replace

import pytest

from repro.core.engine import EngineConfig, OnlineCsEngine
from repro.core.window import WindowConfig
from repro.geo.points import BoundingBox, Point
from repro.geo.trajectory import Trajectory
from repro.middleware.client import CrowdVehicleClient
from repro.middleware.fleet import CampaignOutcome, FleetCampaign
from repro.middleware.segments import SegmentPlanner
from repro.middleware.server import CrowdServer
from repro.obs.recorder import NULL_RECORDER
from repro.radio.pathloss import PathLossModel
from repro.runtime.scheduler import (
    STEP_NAMES,
    CampaignScheduler,
    _sense_vehicle,
    _VehicleSenseJob,
)
from repro.runtime.transport import CountingTransport, InProcessTransport
from repro.sim.world import AccessPoint, World
from repro.util.parallel import run_recorded_tasks
from repro.util.rng import ensure_rng, spawn_children

pytestmark = pytest.mark.slow

SEED = 42


@pytest.fixture(scope="module")
def world():
    return World(
        access_points=[
            AccessPoint(ap_id="w", position=Point(60, 70), radio_range_m=60.0),
            AccessPoint(ap_id="e", position=Point(260, 70), radio_range_m=60.0),
        ],
        channel=PathLossModel(shadowing_sigma_db=0.5),
    )


@pytest.fixture(scope="module")
def planner():
    return SegmentPlanner(BoundingBox(0, 0, 320, 140), n_rows=1, n_cols=2)


@pytest.fixture(scope="module")
def route():
    return Trajectory(
        [Point(10, 30), Point(310, 30), Point(310, 110), Point(10, 110)],
        closed=True,
    )


def _engine_config():
    return EngineConfig(
        window=WindowConfig(size=24, step=8),
        readings_per_round=6,
        max_aps_per_round=3,
        communication_radius_m=60.0,
    )


def _campaign(world, planner, route):
    fleet = FleetCampaign(world, planner, _engine_config())
    fleet.add_vehicle("bus-0", route, n_samples=120, speed_mph=12.0)
    fleet.add_vehicle("bus-1", route, n_samples=120, speed_mph=12.0)
    return fleet


def _legacy_run(campaign, *, rng=None, n_workers=None):
    """The pre-refactor ``FleetCampaign._run``, verbatim semantics."""
    plans = list(campaign.plans)
    generator = ensure_rng(rng)
    children = spawn_children(generator, 1 + 2 * len(plans))
    server = CrowdServer(campaign.server_config, rng=children[0])
    for segment in campaign.planner.all_segments():
        server.register_segment(
            segment.segment_id,
            segment.grid(
                campaign.engine_config.lattice_length_m,
                margin_m=campaign.grid_margin_m,
            ),
        )
    grids = tuple(
        (segment.segment_id, server.segment_grid(segment.segment_id))
        for segment in campaign.planner.all_segments()
    )

    jobs = [
        _VehicleSenseJob(
            world=campaign.world,
            collector_config=campaign.collector_config,
            engine_config=campaign.engine_config,
            plan=plan,
            planner=campaign.planner,
            grids=grids,
            min_segment_readings=campaign.min_segment_readings,
            rng=children[1 + 2 * index],
        )
        for index, plan in enumerate(plans)
    ]
    sensed = run_recorded_tasks(
        _sense_vehicle, jobs, recorder=NULL_RECORDER, n_workers=n_workers
    )

    clients = {}
    per_vehicle_segments = {}
    for index, (plan, results) in enumerate(zip(plans, sensed)):
        label_rng = children[2 + 2 * index]
        per_vehicle_segments[plan.vehicle_id] = []
        for segment_id, result in results.items():
            engine = OnlineCsEngine(
                campaign.world.channel,
                campaign.engine_config,
                grid=server.segment_grid(segment_id),
                rng=label_rng,
            )
            client = CrowdVehicleClient(
                vehicle_id=plan.vehicle_id,
                engine=engine,
                spam_probability=plan.spam_probability,
                rng=label_rng,
            )
            client.last_result = result
            server.receive_report(client.build_report(segment_id, timestamp=0.0))
            clients[(plan.vehicle_id, segment_id)] = client
            per_vehicle_segments[plan.vehicle_id].append(segment_id)

    segments_mapped = [
        segment.segment_id
        for segment in campaign.planner.all_segments()
        if server.database.segment(segment.segment_id).vehicles()
    ]
    if segments_mapped:
        assignments_by_segment = server.open_rounds(
            segments_mapped, n_workers=n_workers
        )
        for segment_id in segments_mapped:
            grid = server.segment_grid(segment_id)
            for vehicle_id, message in assignments_by_segment[
                segment_id
            ].items():
                client = clients[(vehicle_id, segment_id)]
                server.submit_labels(
                    segment_id, client.answer_tasks(message, grid)
                )
        server.aggregate_rounds(segments_mapped, n_workers=n_workers)

    reliabilities = {
        plan.vehicle_id: server.reliability_of(plan.vehicle_id)
        for plan in plans
    }
    return CampaignOutcome(
        server=server,
        segments_mapped=segments_mapped,
        per_vehicle_segments=per_vehicle_segments,
        reliabilities=reliabilities,
    )


def _fingerprint(outcome):
    """Every observable of a campaign outcome, exact (no rounding)."""
    return (
        [(p.x, p.y) for p in outcome.city_map()],
        outcome.segments_mapped,
        outcome.per_vehicle_segments,
        outcome.reliabilities,
        {
            segment_id: outcome.server.download(segment_id)
            for segment_id in outcome.segments_mapped
        },
        [
            (p.x, p.y)
            for p in outcome.server.database.all_fused_locations()
        ],
    )


@pytest.fixture(scope="module")
def legacy(world, planner, route):
    return _fingerprint(
        _legacy_run(_campaign(world, planner, route), rng=SEED)
    )


class TestBitIdentityToLegacyDriver:
    @pytest.mark.parametrize("n_shards", [1, 4])
    @pytest.mark.parametrize("n_workers", [None, 2])
    def test_scheduler_matches_legacy(
        self, legacy, world, planner, route, n_shards, n_workers
    ):
        scheduler = CampaignScheduler(
            _campaign(world, planner, route), n_shards=n_shards
        )
        outcome = scheduler.run(rng=SEED, n_workers=n_workers)
        assert _fingerprint(outcome) == legacy

    def test_fleet_run_wrapper_matches_legacy(
        self, legacy, world, planner, route
    ):
        outcome = _campaign(world, planner, route).run(rng=SEED)
        assert _fingerprint(outcome) == legacy

    def test_fleet_run_sharded_matches_legacy(
        self, legacy, world, planner, route
    ):
        outcome = _campaign(world, planner, route).run(rng=SEED, n_shards=4)
        assert _fingerprint(outcome) == legacy


class TestEveryExchangeCrossesTheWire:
    def test_counting_transport_audit(self, world, planner, route):
        audit = {}

        def factory(endpoint):
            transport = CountingTransport(InProcessTransport(endpoint))
            audit["transport"] = transport
            return transport

        scheduler = CampaignScheduler(
            _campaign(world, planner, route), transport_factory=factory
        )
        outcome = scheduler.run(rng=SEED)
        transport = audit["transport"]

        participations = sum(
            len(segments)
            for segments in outcome.per_vehicle_segments.values()
        )
        assert participations > 0
        # One upload, one task poll and one label submission per
        # (vehicle, segment) pair — nothing else, and nothing bypasses
        # the transport.
        assert transport.requests_by_type == {
            "upload_report": participations,
            "task_request": participations,
            "label_submission": participations,
        }
        assert transport.replies_by_type == {
            "task_assignment": participations,
        }
        assert transport.requests == 3 * participations


class TestStepGraph:
    def test_steps_individually_runnable(self, legacy, world, planner, route):
        scheduler = CampaignScheduler(_campaign(world, planner, route))
        state = scheduler.start(rng=SEED)
        for name in STEP_NAMES:
            scheduler.run_step(state, name)
        assert state.completed_steps == list(STEP_NAMES)
        assert _fingerprint(state.outcome) == legacy

    def test_prerequisites_enforced(self, world, planner, route):
        scheduler = CampaignScheduler(_campaign(world, planner, route))
        state = scheduler.start(rng=SEED)
        with pytest.raises(RuntimeError, match="prerequisites"):
            scheduler.run_step(state, "upload")

    def test_unknown_step_rejected(self, world, planner, route):
        scheduler = CampaignScheduler(_campaign(world, planner, route))
        state = scheduler.start(rng=SEED)
        with pytest.raises(ValueError, match="unknown step"):
            scheduler.run_step(state, "fuse")

    def test_empty_campaign_rejected(self, world, planner):
        fleet = FleetCampaign(world, planner, _engine_config())
        with pytest.raises(RuntimeError, match="no vehicles"):
            CampaignScheduler(fleet).start(rng=0)

    def test_invalid_shards_rejected(self, world, planner, route):
        with pytest.raises(ValueError):
            CampaignScheduler(_campaign(world, planner, route), n_shards=0)

    def test_label_submissions_carry_segment_id(self, world, planner, route):
        """The scheduler's label traffic is v2 segment-addressed."""
        seen = []

        class SpyTransport:
            def __init__(self, inner):
                self.inner = inner

            def request(self, text):
                seen.append(text)
                return self.inner.request(text)

        scheduler = CampaignScheduler(
            _campaign(world, planner, route),
            transport_factory=lambda e: SpyTransport(InProcessTransport(e)),
        )
        scheduler.run(rng=SEED)
        from repro.middleware.protocol import LabelSubmission, decode_message

        submissions = [
            m
            for m in map(decode_message, seen)
            if isinstance(m, LabelSubmission)
        ]
        assert submissions
        assert all(s.segment_id for s in submissions)
