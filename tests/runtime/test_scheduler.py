"""CampaignScheduler: bit-identity to the pre-refactor driver, wire audit.

``_legacy_run`` below is a faithful copy of the pre-refactor
``FleetCampaign._run`` body — direct ``CrowdServer`` method calls, no
transport, no router, no codec.  The acceptance criterion is that the
scheduler (1 and 4 shards, serial and parallel workers) reproduces its
``CampaignOutcome`` bit-for-bit, and that a counting transport proves
every client↔server exchange crossed the wire.
"""

from dataclasses import replace

import pytest

from repro.core.engine import EngineConfig, OnlineCsEngine
from repro.core.window import WindowConfig
from repro.geo.points import BoundingBox, Point
from repro.geo.trajectory import Trajectory
from repro.middleware.client import CrowdVehicleClient
from repro.middleware.fleet import CampaignOutcome, FleetCampaign
from repro.middleware.segments import SegmentPlanner
from repro.middleware.server import CrowdServer
from repro.obs.recorder import NULL_RECORDER
from repro.radio.pathloss import PathLossModel
from repro.runtime.scheduler import (
    STEP_NAMES,
    CampaignScheduler,
    _sense_vehicle,
    _VehicleSenseJob,
)
from repro.runtime.transport import CountingTransport, InProcessTransport
from repro.sim.world import AccessPoint, World
from repro.util.parallel import run_recorded_tasks
from repro.util.rng import ensure_rng, spawn_children

pytestmark = pytest.mark.slow

SEED = 42


@pytest.fixture(scope="module")
def world():
    return World(
        access_points=[
            AccessPoint(ap_id="w", position=Point(60, 70), radio_range_m=60.0),
            AccessPoint(ap_id="e", position=Point(260, 70), radio_range_m=60.0),
        ],
        channel=PathLossModel(shadowing_sigma_db=0.5),
    )


@pytest.fixture(scope="module")
def planner():
    return SegmentPlanner(BoundingBox(0, 0, 320, 140), n_rows=1, n_cols=2)


@pytest.fixture(scope="module")
def route():
    return Trajectory(
        [Point(10, 30), Point(310, 30), Point(310, 110), Point(10, 110)],
        closed=True,
    )


def _engine_config():
    return EngineConfig(
        window=WindowConfig(size=24, step=8),
        readings_per_round=6,
        max_aps_per_round=3,
        communication_radius_m=60.0,
    )


def _campaign(world, planner, route):
    fleet = FleetCampaign(world, planner, _engine_config())
    fleet.add_vehicle("bus-0", route, n_samples=120, speed_mph=12.0)
    fleet.add_vehicle("bus-1", route, n_samples=120, speed_mph=12.0)
    return fleet


def _legacy_run(campaign, *, rng=None, n_workers=None):
    """The pre-refactor ``FleetCampaign._run``, verbatim semantics."""
    plans = list(campaign.plans)
    generator = ensure_rng(rng)
    children = spawn_children(generator, 1 + 2 * len(plans))
    server = CrowdServer(campaign.server_config, rng=children[0])
    for segment in campaign.planner.all_segments():
        server.register_segment(
            segment.segment_id,
            segment.grid(
                campaign.engine_config.lattice_length_m,
                margin_m=campaign.grid_margin_m,
            ),
        )
    grids = tuple(
        (segment.segment_id, server.segment_grid(segment.segment_id))
        for segment in campaign.planner.all_segments()
    )

    jobs = [
        _VehicleSenseJob(
            world=campaign.world,
            collector_config=campaign.collector_config,
            engine_config=campaign.engine_config,
            plan=plan,
            planner=campaign.planner,
            grids=grids,
            min_segment_readings=campaign.min_segment_readings,
            rng=children[1 + 2 * index],
        )
        for index, plan in enumerate(plans)
    ]
    sensed = run_recorded_tasks(
        _sense_vehicle, jobs, recorder=NULL_RECORDER, n_workers=n_workers
    )

    clients = {}
    per_vehicle_segments = {}
    for index, (plan, results) in enumerate(zip(plans, sensed)):
        label_rng = children[2 + 2 * index]
        per_vehicle_segments[plan.vehicle_id] = []
        for segment_id, result in results.items():
            engine = OnlineCsEngine(
                campaign.world.channel,
                campaign.engine_config,
                grid=server.segment_grid(segment_id),
                rng=label_rng,
            )
            client = CrowdVehicleClient(
                vehicle_id=plan.vehicle_id,
                engine=engine,
                spam_probability=plan.spam_probability,
                rng=label_rng,
            )
            client.last_result = result
            server.receive_report(client.build_report(segment_id, timestamp=0.0))
            clients[(plan.vehicle_id, segment_id)] = client
            per_vehicle_segments[plan.vehicle_id].append(segment_id)

    segments_mapped = [
        segment.segment_id
        for segment in campaign.planner.all_segments()
        if server.database.segment(segment.segment_id).vehicles()
    ]
    if segments_mapped:
        assignments_by_segment = server.open_rounds(
            segments_mapped, n_workers=n_workers
        )
        for segment_id in segments_mapped:
            grid = server.segment_grid(segment_id)
            for vehicle_id, message in assignments_by_segment[
                segment_id
            ].items():
                client = clients[(vehicle_id, segment_id)]
                server.submit_labels(
                    segment_id, client.answer_tasks(message, grid)
                )
        server.aggregate_rounds(segments_mapped, n_workers=n_workers)

    reliabilities = {
        plan.vehicle_id: server.reliability_of(plan.vehicle_id)
        for plan in plans
    }
    return CampaignOutcome(
        server=server,
        segments_mapped=segments_mapped,
        per_vehicle_segments=per_vehicle_segments,
        reliabilities=reliabilities,
    )


def _fingerprint(outcome):
    """Every observable of a campaign outcome, exact (no rounding)."""
    return (
        [(p.x, p.y) for p in outcome.city_map()],
        outcome.segments_mapped,
        outcome.per_vehicle_segments,
        outcome.reliabilities,
        {
            segment_id: outcome.server.download(segment_id)
            for segment_id in outcome.segments_mapped
        },
        [
            (p.x, p.y)
            for p in outcome.server.database.all_fused_locations()
        ],
    )


@pytest.fixture(scope="module")
def legacy(world, planner, route):
    return _fingerprint(
        _legacy_run(_campaign(world, planner, route), rng=SEED)
    )


class TestBitIdentityToLegacyDriver:
    @pytest.mark.parametrize("n_shards", [1, 4])
    @pytest.mark.parametrize("n_workers", [None, 2])
    def test_scheduler_matches_legacy(
        self, legacy, world, planner, route, n_shards, n_workers
    ):
        scheduler = CampaignScheduler(
            _campaign(world, planner, route), n_shards=n_shards
        )
        outcome = scheduler.run(rng=SEED, n_workers=n_workers)
        assert _fingerprint(outcome) == legacy

    def test_fleet_run_wrapper_matches_legacy(
        self, legacy, world, planner, route
    ):
        outcome = _campaign(world, planner, route).run(rng=SEED)
        assert _fingerprint(outcome) == legacy

    def test_fleet_run_sharded_matches_legacy(
        self, legacy, world, planner, route
    ):
        outcome = _campaign(world, planner, route).run(rng=SEED, n_shards=4)
        assert _fingerprint(outcome) == legacy


class TestEveryExchangeCrossesTheWire:
    def test_counting_transport_audit(self, world, planner, route):
        audit = {}

        def factory(endpoint):
            transport = CountingTransport(InProcessTransport(endpoint))
            audit["transport"] = transport
            return transport

        scheduler = CampaignScheduler(
            _campaign(world, planner, route), transport_factory=factory
        )
        outcome = scheduler.run(rng=SEED)
        transport = audit["transport"]

        participations = sum(
            len(segments)
            for segments in outcome.per_vehicle_segments.values()
        )
        assert participations > 0
        # One upload, one task poll and one label submission per
        # (vehicle, segment) pair — nothing else, and nothing bypasses
        # the transport.
        assert transport.requests_by_type == {
            "upload_report": participations,
            "task_request": participations,
            "label_submission": participations,
        }
        assert transport.replies_by_type == {
            "task_assignment": participations,
        }
        assert transport.requests == 3 * participations


class TestStepGraph:
    def test_steps_individually_runnable(self, legacy, world, planner, route):
        scheduler = CampaignScheduler(_campaign(world, planner, route))
        state = scheduler.start(rng=SEED)
        for name in STEP_NAMES:
            scheduler.run_step(state, name)
        assert state.completed_steps == list(STEP_NAMES)
        assert _fingerprint(state.outcome) == legacy

    def test_prerequisites_enforced(self, world, planner, route):
        scheduler = CampaignScheduler(_campaign(world, planner, route))
        state = scheduler.start(rng=SEED)
        with pytest.raises(RuntimeError, match="prerequisites"):
            scheduler.run_step(state, "upload")

    def test_unknown_step_rejected(self, world, planner, route):
        scheduler = CampaignScheduler(_campaign(world, planner, route))
        state = scheduler.start(rng=SEED)
        with pytest.raises(ValueError, match="unknown step"):
            scheduler.run_step(state, "fuse")

    def test_empty_campaign_rejected(self, world, planner):
        fleet = FleetCampaign(world, planner, _engine_config())
        with pytest.raises(RuntimeError, match="no vehicles"):
            CampaignScheduler(fleet).start(rng=0)

    def test_invalid_shards_rejected(self, world, planner, route):
        with pytest.raises(ValueError):
            CampaignScheduler(_campaign(world, planner, route), n_shards=0)

    def test_label_submissions_carry_segment_id(self, world, planner, route):
        """The scheduler's label traffic is v2 segment-addressed."""
        seen = []

        class SpyTransport:
            def __init__(self, inner):
                self.inner = inner

            def request(self, text):
                seen.append(text)
                return self.inner.request(text)

        scheduler = CampaignScheduler(
            _campaign(world, planner, route),
            transport_factory=lambda e: SpyTransport(InProcessTransport(e)),
        )
        scheduler.run(rng=SEED)
        from repro.middleware.protocol import LabelSubmission, decode_message

        submissions = [
            m
            for m in map(decode_message, seen)
            if isinstance(m, LabelSubmission)
        ]
        assert submissions
        assert all(s.segment_id for s in submissions)


def _published_bytes(outcome):
    """The published snapshots, as the exact bytes a client would receive."""
    from repro.middleware.protocol import encode_message

    return {
        segment_id: encode_message(outcome.server.download(segment_id))
        for segment_id in outcome.segments_mapped
    }


def _campaign_aggregates(recorder):
    """Deterministic telemetry, minus the transport/durability families.

    The wire and journal families are transport-specific by nature
    (an in-process run has no sockets to count); everything else —
    engine rounds, server spans, fleet counters — must be identical
    across transports for the same seed.
    """
    return {
        name: value
        for name, value in recorder.aggregates().items()
        if "transport." not in name and "durable." not in name
    }


class TestTransportDeterminism:
    """Fixed seed ⇒ byte-identical outcomes over any transport."""

    def test_tcp_loopback_matches_legacy_and_inprocess(
        self, legacy, world, planner, route
    ):
        from repro.obs.recorder import InMemoryRecorder

        in_recorder = InMemoryRecorder()
        in_process = CampaignScheduler(_campaign(world, planner, route)).run(
            rng=SEED, recorder=in_recorder
        )
        tcp_recorder = InMemoryRecorder()
        tcp = CampaignScheduler(
            _campaign(world, planner, route), transport="tcp"
        ).run(rng=SEED, recorder=tcp_recorder)

        assert _fingerprint(tcp) == _fingerprint(in_process) == legacy
        assert _published_bytes(tcp) == _published_bytes(in_process)
        # Telemetry (transport-family aside) is identical too…
        assert _campaign_aggregates(tcp_recorder) == _campaign_aggregates(
            in_recorder
        )
        # …and the TCP run really did put every frame on a socket: one
        # upload, one task poll and one label submission per
        # (vehicle, segment) pair, same budget the counting-transport
        # audit pins for the in-process run.
        participations = sum(
            len(segments) for segments in tcp.per_vehicle_segments.values()
        )
        counters = tcp_recorder.counters
        assert counters["transport.frames.served"] == 3 * participations
        assert counters["transport.connects"] >= 1
        assert "transport.frames.served" not in _campaign_aggregates(
            tcp_recorder
        )

    def test_tcp_sharded_matches_legacy(self, legacy, world, planner, route):
        outcome = CampaignScheduler(
            _campaign(world, planner, route), transport="tcp", n_shards=4
        ).run(rng=SEED)
        assert _fingerprint(outcome) == legacy

    def test_fleet_run_tcp_wrapper_matches_legacy(
        self, legacy, world, planner, route
    ):
        outcome = _campaign(world, planner, route).run(
            rng=SEED, transport="tcp"
        )
        assert _fingerprint(outcome) == legacy

    def test_tcp_rejects_a_transport_factory(self, world, planner, route):
        with pytest.raises(ValueError, match="transport_factory"):
            CampaignScheduler(
                _campaign(world, planner, route),
                transport="tcp",
                transport_factory=InProcessTransport,
            )

    def test_unknown_transport_rejected(self, world, planner, route):
        with pytest.raises(ValueError, match="transport"):
            CampaignScheduler(
                _campaign(world, planner, route), transport="carrier-pigeon"
            )


class TestServerCrashRecovery:
    """Kill the server mid-campaign; the durable log brings it back."""

    def _run_with_crash(
        self, world, planner, route, tmp_path, *, crash_after, n_shards=1
    ):
        scheduler = CampaignScheduler(
            _campaign(world, planner, route),
            transport="tcp",
            durable_dir=tmp_path,
            n_shards=n_shards,
        )
        state = scheduler.start(rng=SEED)
        try:
            for name in STEP_NAMES:
                scheduler.run_step(state, name)
                if name == crash_after:
                    scheduler.crash_server(state)
                    scheduler.restart_server(state)
        finally:
            scheduler.shutdown(state)
        assert state.completed_steps == list(STEP_NAMES)
        return state.outcome

    @pytest.mark.parametrize(
        "crash_after", ["upload", "open_round", "label"]
    )
    def test_crash_between_phase2_steps_is_invisible(
        self, legacy, world, planner, route, tmp_path, crash_after
    ):
        outcome = self._run_with_crash(
            world, planner, route, tmp_path, crash_after=crash_after
        )
        assert _fingerprint(outcome) == legacy

    def test_crash_recovery_sharded(
        self, legacy, world, planner, route, tmp_path
    ):
        outcome = self._run_with_crash(
            world,
            planner,
            route,
            tmp_path,
            crash_after="open_round",
            n_shards=2,
        )
        assert _fingerprint(outcome) == legacy

    def test_double_crash_still_recovers(
        self, legacy, world, planner, route, tmp_path
    ):
        scheduler = CampaignScheduler(
            _campaign(world, planner, route),
            transport="tcp",
            durable_dir=tmp_path,
        )
        state = scheduler.start(rng=SEED)
        try:
            scheduler.run_step(state, "sense")
            scheduler.run_step(state, "upload")
            scheduler.crash_server(state)
            scheduler.restart_server(state)
            scheduler.run_step(state, "open_round")
            scheduler.crash_server(state)
            scheduler.restart_server(state)
            scheduler.run_step(state, "label")
            scheduler.run_step(state, "aggregate")
            scheduler.run_step(state, "publish")
        finally:
            scheduler.shutdown(state)
        assert _fingerprint(state.outcome) == legacy

    def test_restart_without_durable_dir_refuses(self, world, planner, route):
        scheduler = CampaignScheduler(_campaign(world, planner, route))
        state = scheduler.start(rng=SEED)
        try:
            with pytest.raises(RuntimeError, match="durable_dir"):
                scheduler.restart_server(state)
        finally:
            scheduler.shutdown(state)

    def test_durable_log_artifact_export(
        self, legacy, world, planner, route, tmp_path
    ):
        """The e2e run leaves a complete durable log behind; CI uploads
        it (set ``REPRO_DURABLE_ARTIFACT_DIR``) for post-mortems."""
        import os
        import shutil
        from pathlib import Path

        durable_dir = tmp_path / "durable"
        outcome = self._run_with_crash(
            world, planner, route, durable_dir, crash_after="open_round"
        )
        assert _fingerprint(outcome) == legacy
        wal = durable_dir / "shard-0" / "wal.jsonl"
        assert wal.exists() and wal.stat().st_size > 0
        assert (durable_dir / "router" / "wal.jsonl").exists()
        export = os.environ.get("REPRO_DURABLE_ARTIFACT_DIR")
        if export:
            target = (
                Path(export) / "kill-the-server-mid-round"
            )
            shutil.copytree(durable_dir, target, dirs_exist_ok=True)
