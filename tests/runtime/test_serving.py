"""Multi-process serving tier: bit-identity, elasticity, recovery.

The acceptance criteria of the serving PR, as tests:

* a :class:`~repro.runtime.serving.ServingCluster` with *any* shard
  count reproduces the single in-process ``CrowdServer`` byte-for-byte
  (assignments, snapshots, reliabilities, merged database view);
* SIGKILLing a shard worker mid-round and replaying its WAL yields
  state bit-identical to a never-crashed twin, on 2- and 4-shard
  topologies — re-pulled task assignments included;
* live segment handoff preserves every published snapshot exactly
  (seeded property over random move sequences) and carries open rounds
  with it;
* the backpressure contract: a full shard answers with a busy frame
  carrying ``retry_after_s``, and ``RetryingTransport`` converts it
  into a delayed retry the caller never sees.
"""

import tempfile
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.grid import Grid
from repro.geo.points import BoundingBox
from repro.middleware.protocol import (
    ApRecord,
    BusyResponse,
    ErrorResponse,
    LabelSubmission,
    TaskRequest,
    UploadReport,
    decode_message,
    encode_message,
)
from repro.middleware.server import CrowdServer, ServerConfig
from repro.obs.recorder import InMemoryRecorder
from repro.runtime.net import RetryPolicy, RetryingTransport
from repro.runtime.router import ServerRouter, shard_of
from repro.runtime.scheduler import CampaignScheduler
from repro.runtime.serving import (
    PlacementRouterTransport,
    ServingCluster,
    _BackpressureEndpoint,
)
from repro.runtime.transport import TransportBusy

from tests.runtime.test_scheduler import (
    SEED as CAMPAIGN_SEED,
    _campaign,
    _fingerprint,
    legacy,
    planner,
    route,
    world,
)

pytestmark = pytest.mark.slow

__all__ = ["legacy", "planner", "route", "world"]  # re-exported fixtures

SEGMENTS = tuple(f"seg-{i}" for i in range(6))
SEED = 20260808


def _grid(index):
    return Grid(
        box=BoundingBox(index * 100.0, 0.0, index * 100.0 + 100.0, 80.0),
        lattice_length=10.0,
    )


def _reports():
    """The deterministic report mix of the router suite: three mappers
    and five empty-report participants per segment, plus two
    cross-segment rovers exercising the globally-last reliability merge.
    """
    for index, segment_id in enumerate(SEGMENTS):
        base_x = index * 100.0
        for v in range(3):
            yield UploadReport(
                vehicle_id=f"m{index}-{v}",
                segment_id=segment_id,
                timestamp=1.0,
                aps=(
                    ApRecord(x=base_x + 20.0 + 7.0 * v, y=30.0),
                    ApRecord(x=base_x + 60.0, y=50.0 + 3.0 * v),
                ),
                lattice_length_m=10.0,
            )
        for v in range(3, 8):
            yield UploadReport(
                vehicle_id=f"m{index}-{v}",
                segment_id=segment_id,
                timestamp=1.0,
                aps=(),
                lattice_length_m=10.0,
            )
        for rover in ("rover-0", "rover-1"):
            yield UploadReport(
                vehicle_id=rover,
                segment_id=segment_id,
                timestamp=2.0,
                aps=(ApRecord(x=base_x + 40.0, y=40.0),),
                lattice_length_m=10.0,
            )


_VEHICLES = sorted(
    {f"m{i}-{v}" for i in range(len(SEGMENTS)) for v in range(8)}
    | {"rover-0", "rover-1"}
)


def _populate_server(server):
    for index, segment_id in enumerate(SEGMENTS):
        server.register_segment(segment_id, _grid(index))
    for report in _reports():
        server.receive_report(report)


def _populate_cluster(cluster, transport):
    """Register over the control plane, upload over the wire."""
    for index, segment_id in enumerate(SEGMENTS):
        cluster.register_segment(segment_id, _grid(index))
    for report in _reports():
        transport.request(encode_message(report))


def _label_for(vehicle_id, task_id):
    return 1 if (task_id + len(vehicle_id)) % 2 == 0 else -1


def _submission(segment_id, vehicle_id, message):
    return LabelSubmission(
        vehicle_id=vehicle_id,
        labels=tuple(
            (tid, _label_for(vehicle_id, tid)) for tid, _, _ in message.tasks
        ),
        segment_id=segment_id,
    )


def _state_of(endpoint, assignments, snapshots):
    """Every observable of a completed round, exact (no rounding)."""
    return {
        "assignments": assignments,
        "snapshots": {
            segment_id: encode_message(message)
            for segment_id, message in snapshots.items()
        },
        "reliabilities": {v: endpoint.reliability_of(v) for v in _VEHICLES},
        "fused": sorted(
            (p.x, p.y) for p in endpoint.database.all_fused_locations()
        ),
        "segment_ids": sorted(endpoint.database.segment_ids()),
        "downloads": {
            segment_id: encode_message(endpoint.download(segment_id))
            for segment_id in SEGMENTS
        },
    }


def _run_rounds_server(server):
    assignments = server.open_rounds(SEGMENTS)
    for segment_id in SEGMENTS:
        for vehicle_id, message in assignments[segment_id].items():
            server.submit_labels(
                segment_id, _submission(segment_id, vehicle_id, message)
            )
    snapshots = server.aggregate_rounds(SEGMENTS)
    return _state_of(server, assignments, snapshots)


def _run_rounds_cluster(cluster, transport):
    """Rounds over the control plane, label traffic over the wire."""
    assignments = cluster.open_rounds(SEGMENTS)
    for segment_id in SEGMENTS:
        for vehicle_id, message in assignments[segment_id].items():
            reply = transport.request(
                encode_message(_submission(segment_id, vehicle_id, message))
            )
            assert reply is None, f"label submission rejected: {reply!r}"
    snapshots = cluster.aggregate_rounds(SEGMENTS)
    return _state_of(cluster, assignments, snapshots)


@pytest.fixture(scope="module")
def reference():
    """The single-process, single-server ground truth."""
    server = CrowdServer(ServerConfig(), rng=np.random.default_rng(SEED))
    _populate_server(server)
    return _run_rounds_server(server)


def _cluster(tmp_path, n_shards, **kwargs):
    kwargs.setdefault("rng", np.random.default_rng(SEED))
    return ServingCluster(
        tmp_path / "cluster", ServerConfig(), n_shards=n_shards, **kwargs
    )


class TestClusterBitIdentity:
    """Any worker-process count reproduces the single server exactly."""

    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_cluster_matches_single_server(
        self, reference, tmp_path, n_shards
    ):
        with _cluster(tmp_path, n_shards) as cluster:
            with PlacementRouterTransport(cluster) as transport:
                _populate_cluster(cluster, transport)
                state = _run_rounds_cluster(cluster, transport)
        assert state == reference

    @pytest.mark.parametrize("wal_format", ["jsonl", "block"])
    def test_wal_format_changes_nothing_observable(
        self, reference, tmp_path, wal_format
    ):
        with _cluster(tmp_path, 2, wal_format=wal_format) as cluster:
            with PlacementRouterTransport(cluster) as transport:
                _populate_cluster(cluster, transport)
                state = _run_rounds_cluster(cluster, transport)
        assert state == reference

    def test_segments_actually_spread(self, tmp_path):
        with _cluster(tmp_path, 4) as cluster:
            for index, segment_id in enumerate(SEGMENTS):
                cluster.register_segment(segment_id, _grid(index))
            homes = {
                cluster.shard_index_of(segment_id)
                for segment_id in SEGMENTS
            }
            assert len(homes) > 1
            for segment_id in SEGMENTS:
                assert cluster.shard_index_of(segment_id) == shard_of(
                    segment_id, 4
                )


class TestShardCrashMidRound:
    """SIGKILL one worker between open and label; WAL replay restores it."""

    @pytest.mark.parametrize("n_shards", [2, 4])
    def test_replay_is_bit_identical_to_never_crashed_twin(
        self, reference, tmp_path, n_shards
    ):
        with _cluster(tmp_path, n_shards) as cluster:
            with PlacementRouterTransport(cluster) as transport:
                _populate_cluster(cluster, transport)
                assignments = cluster.open_rounds(SEGMENTS)

                victim = cluster.shard_index_of(SEGMENTS[0])
                cluster.crash_shard(victim)
                report = cluster.telemetry_report()
                assert report["shards"][f"shard-{victim}"] == {
                    "alive": False
                }
                cluster.restart_shard(victim)

                # Every vehicle with an open round on the revived shard
                # re-pulls its tasks and gets the *same* assignment.
                for segment_id in SEGMENTS:
                    if cluster.shard_index_of(segment_id) != victim:
                        continue
                    for vehicle_id, original in assignments[
                        segment_id
                    ].items():
                        reply = transport.request(
                            encode_message(
                                TaskRequest(
                                    vehicle_id=vehicle_id,
                                    segment_id=segment_id,
                                )
                            )
                        )
                        assert decode_message(reply) == original

                for segment_id in SEGMENTS:
                    for vehicle_id, message in assignments[
                        segment_id
                    ].items():
                        transport.request(
                            encode_message(
                                _submission(segment_id, vehicle_id, message)
                            )
                        )
                snapshots = cluster.aggregate_rounds(SEGMENTS)
                state = _state_of(cluster, assignments, snapshots)
        assert state == reference

    def test_restart_requires_a_dead_shard(self, tmp_path):
        with _cluster(tmp_path, 2) as cluster:
            with pytest.raises(RuntimeError, match="still running"):
                cluster.restart_shard(0)


class TestSegmentHandoff:
    """Live migration preserves state byte-for-byte."""

    @settings(max_examples=5, deadline=None)
    @given(
        moves=st.lists(
            st.tuples(
                st.integers(0, len(SEGMENTS) - 1), st.integers(0, 3)
            ),
            min_size=1,
            max_size=4,
        )
    )
    def test_handoffs_preserve_every_snapshot(self, moves):
        """Property: any move sequence leaves the published maps intact.

        The reference snapshots come from the cluster itself *before*
        any handoff — after the moves, every segment must download the
        identical bytes from its (possibly new) owner, and placement
        must reflect the last move of each segment.
        """
        with tempfile.TemporaryDirectory() as tmp:
            with ServingCluster(
                tmp, ServerConfig(), n_shards=4, rng=SEED
            ) as cluster:
                with PlacementRouterTransport(cluster) as transport:
                    _populate_cluster(cluster, transport)
                before = {
                    segment_id: encode_message(cluster.download(segment_id))
                    for segment_id in SEGMENTS
                }
                epoch = cluster.epoch
                for seg_index, to_shard in moves:
                    segment_id = SEGMENTS[seg_index]
                    moved = cluster.shard_index_of(segment_id) != to_shard
                    cluster.handoff_segment(segment_id, to_shard)
                    assert cluster.shard_index_of(segment_id) == to_shard
                    assert cluster.epoch == epoch + (1 if moved else 0)
                    epoch = cluster.epoch
                after = {
                    segment_id: encode_message(cluster.download(segment_id))
                    for segment_id in SEGMENTS
                }
                assert after == before
                assert sorted(cluster.segment_ids()) == sorted(SEGMENTS)

    def test_handoff_mid_round_carries_the_open_round(
        self, reference, tmp_path
    ):
        """Moving a segment between open and label changes nothing."""
        with _cluster(tmp_path, 4) as cluster:
            with PlacementRouterTransport(cluster) as transport:
                _populate_cluster(cluster, transport)
                assignments = cluster.open_rounds(SEGMENTS)

                source = cluster.shard_index_of(SEGMENTS[0])
                target = (source + 1) % cluster.n_shards
                cluster.handoff_segment(SEGMENTS[0], target)

                # The new owner serves the migrated round's tasks.
                vehicle_id, original = next(
                    iter(assignments[SEGMENTS[0]].items())
                )
                reply = transport.request(
                    encode_message(
                        TaskRequest(
                            vehicle_id=vehicle_id, segment_id=SEGMENTS[0]
                        )
                    )
                )
                assert decode_message(reply) == original

                for segment_id in SEGMENTS:
                    for vid, message in assignments[segment_id].items():
                        transport.request(
                            encode_message(
                                _submission(segment_id, vid, message)
                            )
                        )
                snapshots = cluster.aggregate_rounds(SEGMENTS)
                state = _state_of(cluster, assignments, snapshots)
        assert state == reference

    def test_invalid_targets_rejected(self, tmp_path):
        with _cluster(tmp_path, 2) as cluster:
            cluster.register_segment(SEGMENTS[0], _grid(0))
            with pytest.raises(ValueError, match="to_shard"):
                cluster.handoff_segment(SEGMENTS[0], 2)
            with pytest.raises(KeyError):
                cluster.handoff_segment("ghost", 0)

    def test_stale_route_is_rerouted_once(self, tmp_path):
        """A client that routed before the handoff lands on the old
        owner, gets "not registered", and the transport retries once on
        the new owner — the caller never sees the race."""
        with _cluster(tmp_path, 2) as cluster:
            cluster.register_segment(SEGMENTS[0], _grid(0))
            source = cluster.shard_index_of(SEGMENTS[0])
            target = 1 - source
            cluster.handoff_segment(SEGMENTS[0], target)

            class StaleView:
                """The cluster as seen by a client that missed the move."""

                def __init__(self, inner):
                    self._inner = inner
                    self.topology_version = inner.topology_version
                    self._stale = True

                def shard_index_of(self, segment_id):
                    if self._stale:
                        self._stale = False
                        return source
                    return self._inner.shard_index_of(segment_id)

                def shard_of_vehicle(self, vehicle_id):
                    return self._inner.shard_of_vehicle(vehicle_id)

                def shard_address(self, index):
                    return self._inner.shard_address(index)

            recorder = InMemoryRecorder()
            with PlacementRouterTransport(
                StaleView(cluster), recorder=recorder
            ) as transport:
                reply = transport.request(
                    encode_message(
                        UploadReport(
                            vehicle_id="late-v",
                            segment_id=SEGMENTS[0],
                            timestamp=3.0,
                            aps=(),
                            lattice_length_m=10.0,
                        )
                    )
                )
            assert reply is None  # served by the new owner after reroute
            assert recorder.counters.get("serving.reroutes") == 1
            assert "late-v" in cluster.segment_store(SEGMENTS[0]).vehicles()

    def test_unroutable_frame_answered_with_error(self, tmp_path):
        with _cluster(tmp_path, 2) as cluster:
            with PlacementRouterTransport(cluster) as transport:
                reply = transport.request(
                    encode_message(
                        UploadReport(
                            vehicle_id="v",
                            segment_id="ghost",
                            timestamp=0.0,
                            aps=(),
                            lattice_length_m=10.0,
                        )
                    )
                )
        message = decode_message(reply)
        assert isinstance(message, ErrorResponse)
        assert "not registered" in message.reason


class TestFullClusterRecovery:
    def test_recover_resumes_bit_identically(self, reference, tmp_path):
        with _cluster(tmp_path, 4) as cluster:
            with PlacementRouterTransport(cluster) as transport:
                _populate_cluster(cluster, transport)
                placement = {
                    segment_id: cluster.shard_index_of(segment_id)
                    for segment_id in SEGMENTS
                }
            cluster.crash()

        recovered = ServingCluster.recover(
            tmp_path / "cluster", ServerConfig()
        )
        try:
            assert recovered.n_shards == 4
            assert {
                segment_id: recovered.shard_index_of(segment_id)
                for segment_id in SEGMENTS
            } == placement
            with PlacementRouterTransport(recovered) as transport:
                state = _run_rounds_cluster(recovered, transport)
        finally:
            recovered.close()
        assert state == reference

    def test_post_close_reads_still_work(self, tmp_path):
        with _cluster(tmp_path, 2) as cluster:
            with PlacementRouterTransport(cluster) as transport:
                _populate_cluster(cluster, transport)
                live = {
                    segment_id: encode_message(cluster.download(segment_id))
                    for segment_id in SEGMENTS
                }
        # The context manager closed the workers; the final snapshots
        # keep the database view readable for CampaignOutcome.
        assert {
            segment_id: encode_message(cluster.download(segment_id))
            for segment_id in SEGMENTS
        } == live
        assert sorted(cluster.database.segment_ids()) == sorted(SEGMENTS)


class TestBackpressure:
    """The wire-level busy/retry-after contract, end to end."""

    def _blocked_endpoint(self, release):
        class Slow:
            def handle_wire_message(self, text):
                release.wait(timeout=10.0)
                return None

        return Slow()

    def test_full_shard_sheds_with_retry_after(self):
        release = threading.Event()
        recorder = InMemoryRecorder()
        endpoint = _BackpressureEndpoint(
            self._blocked_endpoint(release),
            max_inflight=1,
            retry_after_s=0.25,
            recorder=recorder,
        )
        started = threading.Event()

        def occupy():
            started.set()
            endpoint.handle_wire_message("occupier")

        thread = threading.Thread(target=occupy, daemon=True)
        thread.start()
        started.wait(timeout=5.0)
        # Give the occupier time to take the inflight slot.
        for _ in range(1000):
            if endpoint._inflight:
                break
            thread.join(timeout=0.001)
        reply = endpoint.handle_wire_message("shed me")
        release.set()
        thread.join(timeout=5.0)

        message = decode_message(reply)
        assert isinstance(message, BusyResponse)
        assert message.retry_after_s == 0.25
        assert message.queue_depth == 1
        assert recorder.counters.get("serving.busy") == 1

    def test_retrying_transport_honors_retry_after(self):
        """Busy frames become delayed retries; the caller sees the reply."""
        busy = encode_message(
            BusyResponse(retry_after_s=0.5, queue_depth=9)
        )

        class BusyTwiceThenServe:
            def __init__(self):
                self.calls = 0

            def request(self, text):
                self.calls += 1
                return busy if self.calls <= 2 else "served"

        slept = []
        recorder = InMemoryRecorder()
        transport = RetryingTransport(
            BusyTwiceThenServe(),
            policy=RetryPolicy(max_attempts=5, base_delay_s=0.01),
            sleep=slept.append,
            recorder=recorder,
        )
        assert transport.request("frame") == "served"
        # The server's retry_after dominates the (smaller) backoff delay.
        assert slept == [0.5, 0.5]
        assert recorder.counters.get("transport.busy") == 2

    def test_busy_beyond_budget_raises(self):
        busy = encode_message(BusyResponse(retry_after_s=0.0, queue_depth=1))

        class AlwaysBusy:
            def request(self, text):
                return busy

        transport = RetryingTransport(
            AlwaysBusy(),
            policy=RetryPolicy(max_attempts=3, base_delay_s=0.0),
            sleep=lambda s: None,
        )
        with pytest.raises(TransportBusy) as excinfo:
            transport.request("frame")
        assert excinfo.value.queue_depth == 1

    def test_overloaded_cluster_loses_nothing(self, tmp_path):
        """A burst far beyond ``max_inflight`` lands completely once the
        clients ride their busy replies through the retry loop."""
        with _cluster(
            tmp_path, 1, max_inflight=1, retry_after_s=0.0
        ) as cluster:
            cluster.register_segment(SEGMENTS[0], _grid(0))
            n_clients, per_client = 8, 4
            errors = []

            def blast(client_index):
                transport = RetryingTransport(
                    PlacementRouterTransport(cluster),
                    policy=RetryPolicy(
                        max_attempts=50, base_delay_s=0.001
                    ),
                )
                try:
                    for upload in range(per_client):
                        reply = transport.request(
                            encode_message(
                                UploadReport(
                                    vehicle_id=(
                                        f"c{client_index}-{upload}"
                                    ),
                                    segment_id=SEGMENTS[0],
                                    timestamp=float(upload),
                                    aps=(),
                                    lattice_length_m=10.0,
                                )
                            )
                        )
                        if reply is not None:
                            errors.append(reply)
                except Exception as error:  # noqa: BLE001 - test audit
                    errors.append(repr(error))
                finally:
                    transport.inner.close()

            threads = [
                threading.Thread(target=blast, args=(i,), daemon=True)
                for i in range(n_clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60.0)
            assert not errors
            vehicles = cluster.segment_store(SEGMENTS[0]).vehicles()
        assert len(vehicles) == n_clients * per_client


class TestTelemetryReport:
    def test_reports_every_shard_and_the_cluster(self, tmp_path):
        recorder = InMemoryRecorder()
        with _cluster(tmp_path, 2, recorder=recorder) as cluster:
            with PlacementRouterTransport(cluster) as transport:
                _populate_cluster(cluster, transport)
                cluster.open_rounds(SEGMENTS)
                source = cluster.shard_index_of(SEGMENTS[0])
                cluster.handoff_segment(
                    SEGMENTS[0], (source + 1) % cluster.n_shards
                )
                report = cluster.telemetry_report()

        assert set(report["shards"]) == {"shard-0", "shard-1"}
        for shard_report in report["shards"].values():
            assert shard_report["alive"] is True
            assert len(shard_report["address"]) == 2
        served = sum(
            shard_report["counters"].get("transport.frames.served", 0)
            for shard_report in report["shards"].values()
        )
        assert served >= len(_VEHICLES)  # every upload crossed a wire
        assert any(
            "serving.queue.depth" in shard_report["gauges"]
            for shard_report in report["shards"].values()
        )
        cluster_report = report["cluster"]
        assert cluster_report["n_shards"] == 2
        assert cluster_report["epoch"] == 1
        assert cluster_report["segments"] == len(SEGMENTS)
        assert cluster_report["counters"].get("serving.handoffs") == 1
        assert recorder.spans.get("serving.open_rounds")
        assert recorder.spans.get("serving.handoff")


class TestSchedulerServingTransport:
    """The campaign scheduler over ``transport="serving"``."""

    def test_campaign_is_bit_identical_to_inprocess(
        self, legacy, world, planner, route, tmp_path
    ):
        scheduler = CampaignScheduler(
            _campaign(world, planner, route),
            transport="serving",
            n_shards=2,
            durable_dir=tmp_path / "campaign",
        )
        outcome = scheduler.run(rng=CAMPAIGN_SEED)
        assert _fingerprint(outcome) == legacy

    def test_campaign_rides_through_a_cluster_crash(
        self, legacy, world, planner, route, tmp_path
    ):
        scheduler = CampaignScheduler(
            _campaign(world, planner, route),
            transport="serving",
            n_shards=2,
            durable_dir=tmp_path / "campaign",
        )
        state = scheduler.start(rng=CAMPAIGN_SEED)
        try:
            scheduler.run_step(state, "sense")
            scheduler.run_step(state, "upload")
            scheduler.run_step(state, "open_round")
            scheduler.crash_server(state)
            scheduler.restart_server(state)
            scheduler.run_step(state, "label")
            scheduler.run_step(state, "aggregate")
            scheduler.run_step(state, "publish")
        finally:
            scheduler.shutdown(state)
        assert _fingerprint(state.outcome) == legacy

    def test_serving_requires_a_durable_dir(self, world, planner, route):
        with pytest.raises(ValueError, match="durable_dir"):
            CampaignScheduler(
                _campaign(world, planner, route), transport="serving"
            )
