"""Transport seam + protocol round-trip property tests.

Covers the runtime acceptance criteria on the wire format: every message
type (including the v2 additions ``TaskRequest`` and
``LabelSubmission.segment_id``) survives an encode/decode round trip,
the envelope carries the protocol version and rejects mismatches, and
``CountingTransport`` faithfully tallies frames without altering them.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.geo.grid import Grid
from repro.geo.points import BoundingBox
from repro.middleware.protocol import (
    PROTOCOL_VERSION,
    ApRecord,
    DownloadResponse,
    ErrorResponse,
    LabelSubmission,
    LookupRequest,
    ProtocolVersionError,
    TaskAssignmentMessage,
    TaskRequest,
    UploadReport,
    decode_message,
    encode_message,
)
from repro.middleware.server import CrowdServer, ServerConfig
from repro.runtime.transport import CountingTransport, InProcessTransport

safe_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)),
    min_size=1,
    max_size=30,
)
coords = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@st.composite
def ap_records(draw):
    return ApRecord(
        x=draw(coords),
        y=draw(coords),
        credits=draw(st.floats(0, 100)),
    )


@st.composite
def upload_reports(draw):
    return UploadReport(
        vehicle_id=draw(safe_text),
        segment_id=draw(safe_text),
        timestamp=draw(coords),
        aps=tuple(draw(st.lists(ap_records(), max_size=5))),
        lattice_length_m=draw(st.floats(min_value=0.1, max_value=100)),
    )


@st.composite
def task_requests(draw):
    return TaskRequest(vehicle_id=draw(safe_text), segment_id=draw(safe_text))


@st.composite
def task_assignments(draw):
    n_tasks = draw(st.integers(0, 6))
    return TaskAssignmentMessage(
        vehicle_id=draw(safe_text),
        tasks=tuple(
            (
                draw(st.integers(0, 1000)),
                draw(safe_text),
                tuple(draw(st.lists(st.integers(0, 5000), max_size=6))),
            )
            for _ in range(n_tasks)
        ),
    )


@st.composite
def label_submissions(draw):
    return LabelSubmission(
        vehicle_id=draw(safe_text),
        labels=tuple(
            draw(
                st.lists(
                    st.tuples(st.integers(0, 1000), st.sampled_from([-1, 1])),
                    max_size=10,
                )
            )
        ),
        segment_id=draw(st.one_of(st.just(""), safe_text)),
    )


@st.composite
def download_responses(draw):
    return DownloadResponse(
        segment_id=draw(safe_text),
        aps=tuple(draw(st.lists(ap_records(), max_size=5))),
        generation=draw(st.integers(0, 100)),
    )


@st.composite
def lookup_requests(draw):
    return LookupRequest(
        vehicle_id=draw(safe_text), segment_id=draw(safe_text)
    )


@st.composite
def error_responses(draw):
    return ErrorResponse(reason=draw(safe_text))


any_message = st.one_of(
    upload_reports(),
    task_requests(),
    task_assignments(),
    label_submissions(),
    download_responses(),
    lookup_requests(),
    error_responses(),
)


class TestProtocolRoundTrip:
    @given(any_message)
    @settings(max_examples=200, deadline=None)
    def test_every_message_type_roundtrips(self, message):
        assert decode_message(encode_message(message)) == message

    @given(any_message)
    @settings(max_examples=50, deadline=None)
    def test_envelope_is_versioned(self, message):
        payload = json.loads(encode_message(message))
        assert payload["v"] == PROTOCOL_VERSION

    @given(any_message, st.integers(-5, 50).filter(lambda v: v != PROTOCOL_VERSION))
    @settings(max_examples=50, deadline=None)
    def test_version_mismatch_rejected(self, message, wrong_version):
        payload = json.loads(encode_message(message))
        payload["v"] = wrong_version
        with pytest.raises(ProtocolVersionError):
            decode_message(json.dumps(payload))

    @given(st.text(max_size=120))
    @settings(max_examples=80, deadline=None)
    def test_decoder_never_crashes_unexpectedly(self, junk):
        try:
            decode_message(junk)
        except ValueError:
            pass


@pytest.fixture
def endpoint():
    server = CrowdServer(ServerConfig(workers_per_task=2), rng=0)
    server.register_segment(
        "seg-w", Grid(box=BoundingBox(0, 0, 100, 100), lattice_length=10.0)
    )
    return server


def _upload(vehicle="v1", segment="seg-w"):
    return encode_message(
        UploadReport(
            vehicle_id=vehicle,
            segment_id=segment,
            timestamp=1.0,
            aps=(ApRecord(x=50.0, y=50.0),),
            lattice_length_m=10.0,
        )
    )


class TestInProcessTransport:
    def test_request_reaches_endpoint(self, endpoint):
        transport = InProcessTransport(endpoint)
        assert transport.request(_upload()) is None
        assert endpoint.database.segment("seg-w").vehicles() == ["v1"]

    def test_reply_comes_back_encoded(self, endpoint):
        transport = InProcessTransport(endpoint)
        transport.request(_upload())
        reply = transport.request(
            encode_message(LookupRequest(vehicle_id="u", segment_id="seg-w"))
        )
        assert isinstance(decode_message(reply), DownloadResponse)

    def test_incompatible_version_gets_clear_error(self, endpoint):
        transport = InProcessTransport(endpoint)
        frame = json.loads(_upload())
        frame["v"] = 1
        reply = transport.request(json.dumps(frame))
        error = decode_message(reply)
        assert isinstance(error, ErrorResponse)
        assert "protocol version" in error.reason


class TestCountingTransport:
    def test_counts_by_type_and_forwards(self, endpoint):
        transport = CountingTransport(InProcessTransport(endpoint))
        assert transport.request(_upload()) is None
        reply = transport.request(
            encode_message(LookupRequest(vehicle_id="u", segment_id="seg-w"))
        )
        assert isinstance(decode_message(reply), DownloadResponse)
        assert transport.requests == 2
        assert transport.requests_by_type == {
            "upload_report": 1,
            "lookup_request": 1,
        }
        assert transport.replies_by_type == {"download_response": 1}

    def test_malformed_frames_still_counted(self, endpoint):
        transport = CountingTransport(InProcessTransport(endpoint))
        reply = transport.request("{broken")
        assert isinstance(decode_message(reply), ErrorResponse)
        assert transport.requests_by_type == {"<malformed>": 1}
        assert transport.replies_by_type == {"error_response": 1}


class TestCountingTransportFailures:
    """Failed exchanges are tallied by request type, not just successes."""

    class _Failing:
        def __init__(self, error):
            self.error = error

        def request(self, text):
            raise self.error

    def test_errors_counted_by_request_type(self):
        from repro.runtime.transport import TransportError

        transport = CountingTransport(
            self._Failing(TransportError("down"))
        )
        for _ in range(2):
            with pytest.raises(TransportError):
                transport.request(_upload())
        with pytest.raises(TransportError):
            transport.request(
                encode_message(
                    LookupRequest(vehicle_id="u", segment_id="seg-w")
                )
            )
        assert transport.errors_by_type == {
            "upload_report": 2,
            "lookup_request": 1,
        }
        assert transport.timeouts_by_type == {}
        # The attempts were still counted as requests.
        assert transport.requests == 3
        assert transport.requests_by_type == {
            "upload_report": 2,
            "lookup_request": 1,
        }
        # Nothing succeeded, so no replies were tallied.
        assert transport.replies_by_type == {}

    def test_timeouts_counted_as_their_own_subset(self):
        from repro.runtime.transport import TransportTimeout

        transport = CountingTransport(
            self._Failing(TransportTimeout("no reply"))
        )
        with pytest.raises(TransportTimeout):
            transport.request(_upload())
        assert transport.errors_by_type == {"upload_report": 1}
        assert transport.timeouts_by_type == {"upload_report": 1}

    def test_non_transport_errors_also_tallied_and_forwarded(self):
        transport = CountingTransport(self._Failing(ValueError("a bug")))
        with pytest.raises(ValueError):
            transport.request(_upload())
        assert transport.errors_by_type == {"upload_report": 1}
        assert transport.timeouts_by_type == {}

    def test_success_after_failure_keeps_both_tallies(self, endpoint):
        from repro.runtime.transport import TransportError

        class FlipFlop:
            def __init__(self, inner):
                self.inner = inner
                self.calls = 0

            def request(self, text):
                self.calls += 1
                if self.calls % 2:
                    raise TransportError("first try always fails")
                return self.inner.request(text)

        transport = CountingTransport(FlipFlop(InProcessTransport(endpoint)))
        with pytest.raises(TransportError):
            transport.request(_upload())
        assert transport.request(_upload()) is None
        assert transport.requests == 2
        assert transport.requests_by_type == {"upload_report": 2}
        assert transport.errors_by_type == {"upload_report": 1}
