"""Tests for drive-by RSS collection."""

import pytest

from repro.geo.points import Point
from repro.geo.trajectory import Trajectory
from repro.mobility.models import PathFollower
from repro.radio.pathloss import PathLossModel
from repro.sim.collector import CollectorConfig, RssCollector
from repro.sim.world import AccessPoint, World


@pytest.fixture
def world():
    return World(
        access_points=[
            AccessPoint(ap_id="near", position=Point(10, 0), radio_range_m=50.0),
            AccessPoint(ap_id="far", position=Point(45, 0), radio_range_m=50.0),
        ],
        channel=PathLossModel(shadowing_sigma_db=0.0),
    )


@pytest.fixture
def collector(world):
    return RssCollector(
        world,
        CollectorConfig(sample_period_s=1.0, communication_radius_m=50.0),
        rng=3,
    )


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"sample_period_s": 0.0},
            {"communication_radius_m": 0.0},
            {"ttl_s": 0.0},
            {"selection_temperature_db": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            CollectorConfig(**kwargs)


class TestMeasureAt:
    def test_no_ap_audible_returns_none(self, collector):
        assert collector.measure_at(Point(500, 500), 0.0) is None

    def test_measurement_fields(self, collector):
        m = collector.measure_at(Point(12, 0), 7.5)
        assert m is not None
        assert m.timestamp == 7.5
        assert m.position == Point(12, 0)
        assert m.source_ap in ("near", "far")
        assert m.rss_dbm < 0

    def test_respects_collector_radius(self, world):
        # Both APs in their own range, but the collector can only hear 5 m.
        tight = RssCollector(
            world,
            CollectorConfig(communication_radius_m=5.0),
            rng=0,
        )
        m = tight.measure_at(Point(12, 0), 0.0)
        assert m is not None and m.source_ap == "near"
        assert tight.measure_at(Point(30, 20), 0.0) is None

    def test_stronger_ap_selected_more_often(self, world):
        collector = RssCollector(
            world,
            CollectorConfig(communication_radius_m=50.0),
            rng=0,
        )
        # At (12, 0), "near" is 2 m away, "far" is 33 m away.
        picks = [
            collector.measure_at(Point(12, 0), float(i)).source_ap
            for i in range(200)
        ]
        near_fraction = picks.count("near") / len(picks)
        assert near_fraction > 0.8


class TestCollectAlong:
    def test_n_samples(self, collector, world):
        follower = PathFollower(
            Trajectory([Point(0, 0), Point(60, 0)]), speed_mps=1.0
        )
        trace = collector.collect_along(follower, n_samples=20)
        assert len(trace) == 20

    def test_duration_mode(self, collector):
        follower = PathFollower(
            Trajectory([Point(0, 0), Point(60, 0)]), speed_mps=1.0
        )
        trace = collector.collect_along(follower, duration_s=10.0)
        # Every fix along this path is in coverage, so 11 readings.
        assert len(trace) == 11

    def test_exactly_one_mode_required(self, collector):
        follower = PathFollower(
            Trajectory([Point(0, 0), Point(60, 0)]), speed_mps=1.0
        )
        with pytest.raises(ValueError):
            collector.collect_along(follower)
        with pytest.raises(ValueError):
            collector.collect_along(follower, n_samples=5, duration_s=5.0)

    def test_timestamps_monotonic(self, collector):
        follower = PathFollower(
            Trajectory.rectangle(0, 0, 60, 60), speed_mps=3.0
        )
        trace = collector.collect_along(follower, n_samples=30)
        times = [m.timestamp for m in trace]
        assert times == sorted(times)

    def test_no_coverage_raises(self, world):
        collector = RssCollector(
            world, CollectorConfig(communication_radius_m=50.0), rng=0
        )
        follower = PathFollower(
            Trajectory([Point(1000, 1000), Point(1060, 1000)]), speed_mps=1.0
        )
        with pytest.raises(RuntimeError, match="insufficient AP coverage"):
            collector.collect_along(follower, n_samples=5)

    def test_ground_truth_labels_present(self, collector):
        follower = PathFollower(
            Trajectory([Point(0, 0), Point(60, 0)]), speed_mps=1.0
        )
        trace = collector.collect_along(follower, n_samples=10)
        assert all(m.source_ap is not None for m in trace)


class TestCollectAtPoints:
    def test_skips_uncovered_points(self, collector):
        points = [Point(12, 0), Point(500, 500), Point(40, 0)]
        trace = collector.collect_at_points(points)
        assert len(trace) == 2

    def test_timestamps_spaced_by_period(self, collector):
        points = [Point(12, 0), Point(14, 0), Point(16, 0)]
        trace = collector.collect_at_points(points, start_time_s=100.0)
        assert [m.timestamp for m in trace] == [100.0, 101.0, 102.0]

    def test_empty_points(self, collector):
        assert len(collector.collect_at_points([])) == 0
