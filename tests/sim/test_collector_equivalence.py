"""Bit-identical traces from the looped and batched collector paths.

The batched fast path inside :class:`RssCollector` must replay exactly
the scalar per-tick RNG draw order, so two collectors with the same seed
— one walked fix by fix through :meth:`measure_at`, one driven through
the vectorized :meth:`collect_along` — produce identical
:class:`RssTrace` objects down to the last bit.
"""

import pytest

from repro.geo.points import BoundingBox, Point
from repro.geo.trajectory import Trajectory
from repro.mobility.models import PathFollower, drive_schedule
from repro.radio.rss import RssTrace
from repro.radio.shadowing import CorrelatedShadowingField
from repro.radio.pathloss import PathLossModel
from repro.sim.collector import CollectorConfig, RssCollector
from repro.sim.world import World, place_aps_randomly


def _world(seed, *, sigma=2.0, n_aps=40):
    aps = place_aps_randomly(
        n_aps,
        BoundingBox(0, 0, 400, 300),
        min_separation_m=10.0,
        radio_range_m=80.0,
        rng=seed,
    )
    return World(
        access_points=aps, channel=PathLossModel(shadowing_sigma_db=sigma)
    )


def _scalar_duration_trace(collector, follower, duration_s, period_s):
    """The looped reference: one measure_at call per drive fix."""
    trace = RssTrace()
    for fix in drive_schedule(follower, duration_s, period_s):
        measurement = collector.measure_at(fix.position, fix.time)
        if measurement is not None:
            trace.append(measurement)
    return trace


def _scalar_n_samples_trace(collector, follower, n_samples, period_s):
    """The looped reference for the sample-counted mode."""
    trace = RssTrace()
    max_ticks = max(10 * n_samples, 1000)
    tick = 0
    while len(trace) < n_samples and tick < max_ticks:
        fix = follower.sample(tick * period_s)
        measurement = collector.measure_at(fix.position, fix.time)
        if measurement is not None:
            trace.append(measurement)
        tick += 1
    assert len(trace) == n_samples
    return trace


def _traces_identical(a, b):
    assert len(a) == len(b)
    for left, right in zip(a, b):
        assert left == right  # frozen dataclass: bitwise field equality
    return True


@pytest.mark.parametrize("gps_sigma", [0.0, 2.0])
@pytest.mark.parametrize("sigma", [0.0, 2.0])
def test_duration_mode_bit_identical(sigma, gps_sigma):
    world = _world(17, sigma=sigma)
    config = CollectorConfig(
        sample_period_s=1.0,
        communication_radius_m=80.0,
        gps_sigma_m=gps_sigma,
    )
    route = Trajectory.rectangle(20, 20, 380, 280)
    fast = RssCollector(world, config, rng=5).collect_along(
        PathFollower(route, 9.0), duration_s=240.0
    )
    looped = _scalar_duration_trace(
        RssCollector(world, config, rng=5), PathFollower(route, 9.0), 240.0, 1.0
    )
    assert len(fast) > 50
    assert _traces_identical(fast, looped)


def test_n_samples_mode_bit_identical_across_chunks():
    # 700 samples spans two 512-tick chunks, exercising the stop_at seam.
    world = _world(23, sigma=1.5, n_aps=60)
    config = CollectorConfig(
        sample_period_s=1.0, communication_radius_m=80.0, gps_sigma_m=1.0
    )
    route = Trajectory.rectangle(10, 10, 390, 290)
    fast = RssCollector(world, config, rng=9).collect_along(
        PathFollower(route, 7.0), n_samples=700
    )
    looped = _scalar_n_samples_trace(
        RssCollector(world, config, rng=9), PathFollower(route, 7.0), 700, 1.0
    )
    assert len(fast) == 700
    assert _traces_identical(fast, looped)


def test_collect_at_points_bit_identical():
    world = _world(31)
    config = CollectorConfig(communication_radius_m=80.0)
    points = [Point(20.0 + 7.0 * i, 15.0 + 5.0 * i) for i in range(40)]
    fast = RssCollector(world, config, rng=3).collect_at_points(points)
    scalar_collector = RssCollector(world, config, rng=3)
    looped = RssTrace()
    for index, point in enumerate(points):
        measurement = scalar_collector.measure_at(point, float(index))
        if measurement is not None:
            looped.append(measurement)
    assert _traces_identical(fast, looped)


def test_fading_fields_bit_identical():
    world = _world(41, sigma=2.0, n_aps=30)
    fields = {
        ap.ap_id: CorrelatedShadowingField(
            sigma_db=3.0, correlation_distance_m=25.0, rng=100 + i
        )
        for i, ap in enumerate(world.access_points[:10])
    }
    fields_again = {
        ap.ap_id: CorrelatedShadowingField(
            sigma_db=3.0, correlation_distance_m=25.0, rng=100 + i
        )
        for i, ap in enumerate(world.access_points[:10])
    }
    config = CollectorConfig(communication_radius_m=80.0)
    route = Trajectory.rectangle(20, 20, 380, 280)
    fast = RssCollector(
        world, config, fading_fields=fields, rng=8
    ).collect_along(PathFollower(route, 10.0), duration_s=150.0)
    looped = _scalar_duration_trace(
        RssCollector(world, config, fading_fields=fields_again, rng=8),
        PathFollower(route, 10.0),
        150.0,
        1.0,
    )
    assert len(fast) > 20
    assert _traces_identical(fast, looped)
