"""Tests for the collector's GPS-noise and correlated-fading knobs."""

import numpy as np
import pytest

from repro.geo.points import Point
from repro.radio.pathloss import PathLossModel
from repro.radio.shadowing import CorrelatedShadowingField
from repro.sim.collector import CollectorConfig, RssCollector
from repro.sim.world import AccessPoint, World


@pytest.fixture
def world():
    return World(
        access_points=[
            AccessPoint(ap_id="a", position=Point(20, 0), radio_range_m=80.0)
        ],
        channel=PathLossModel(shadowing_sigma_db=0.0),
    )


class TestGpsNoise:
    def test_zero_sigma_records_true_position(self, world):
        collector = RssCollector(
            world, CollectorConfig(communication_radius_m=80.0), rng=0
        )
        m = collector.measure_at(Point(10, 0), 0.0)
        assert m.position == Point(10, 0)

    def test_noise_perturbs_recorded_position(self, world):
        collector = RssCollector(
            world,
            CollectorConfig(communication_radius_m=80.0, gps_sigma_m=5.0),
            rng=1,
        )
        offsets = []
        for i in range(200):
            m = collector.measure_at(Point(10, 0), float(i))
            offsets.append(m.position.distance_to(Point(10, 0)))
        # Mean offset of isotropic Gaussian: σ·√(π/2) ≈ 6.27 m.
        assert np.mean(offsets) == pytest.approx(5.0 * np.sqrt(np.pi / 2), rel=0.2)

    def test_rss_unaffected_by_gps_noise(self, world):
        quiet = RssCollector(
            world, CollectorConfig(communication_radius_m=80.0), rng=2
        )
        noisy = RssCollector(
            world,
            CollectorConfig(communication_radius_m=80.0, gps_sigma_m=10.0),
            rng=2,
        )
        # Without shadowing the RSS is deterministic in the TRUE position.
        assert noisy.measure_at(Point(10, 0), 0.0).rss_dbm == pytest.approx(
            quiet.measure_at(Point(10, 0), 0.0).rss_dbm
        )

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            CollectorConfig(gps_sigma_m=-1.0)


class TestCorrelatedFading:
    def test_field_overrides_iid_shadowing(self, world):
        field = CorrelatedShadowingField(3.0, 50.0, rng=3)
        collector = RssCollector(
            world,
            CollectorConfig(communication_radius_m=80.0),
            fading_fields={"a": field},
            rng=4,
        )
        mean = world.mean_rss_from("a", Point(10, 0))
        m = collector.measure_at(Point(10, 0), 0.0)
        assert m.rss_dbm != pytest.approx(mean)  # fade applied

    def test_fades_correlated_along_drive(self, world):
        """Two nearby readings share most of their fade."""
        gaps_near, gaps_far = [], []
        for seed in range(100):
            field = CorrelatedShadowingField(3.0, 50.0, rng=seed)
            collector = RssCollector(
                world,
                CollectorConfig(communication_radius_m=80.0),
                fading_fields={"a": field},
                rng=seed + 1000,
            )
            mean_a = world.mean_rss_from("a", Point(10, 0))
            mean_b = world.mean_rss_from("a", Point(11, 0))
            mean_c = world.mean_rss_from("a", Point(75, 0))
            fade_a = collector.measure_at(Point(10, 0), 0.0).rss_dbm - mean_a
            fade_b = collector.measure_at(Point(11, 0), 1.0).rss_dbm - mean_b
            fade_c = collector.measure_at(Point(75, 0), 2.0).rss_dbm - mean_c
            gaps_near.append(abs(fade_a - fade_b))
            gaps_far.append(abs(fade_a - fade_c))
        assert np.mean(gaps_near) < 0.6 * np.mean(gaps_far)

    def test_unlisted_ap_uses_channel_shadowing(self):
        world = World(
            access_points=[
                AccessPoint(ap_id="x", position=Point(0, 0), radio_range_m=50.0)
            ],
            channel=PathLossModel(shadowing_sigma_db=0.0),
        )
        collector = RssCollector(
            world,
            CollectorConfig(communication_radius_m=50.0),
            fading_fields={"other": CorrelatedShadowingField(3.0, 50.0, rng=0)},
            rng=5,
        )
        m = collector.measure_at(Point(10, 0), 0.0)
        assert m.rss_dbm == pytest.approx(world.mean_rss_from("x", Point(10, 0)))
