"""Tests for the paper's evaluation scenarios."""


from repro.sim.scenarios import TESTBED_CHANNEL, UCI_CHANNEL, random_deployment
from repro.sim.scenarios import testbed_campus as build_testbed
from repro.sim.scenarios import uci_campus


class TestUciCampus:
    def test_paper_parameters(self):
        sc = uci_campus()
        assert len(sc.world) == 8
        assert sc.area.width == 300.0 and sc.area.height == 180.0
        assert sc.grid.lattice_length == 8.0
        assert sc.world.channel.reference_loss_db == 45.6
        assert sc.world.channel.path_loss_exponent == 1.76
        assert sc.world.channel.shadowing_sigma_db == 0.5

    def test_ap_separation_over_50m(self):
        sc = uci_campus()
        assert sc.world.minimum_ap_separation() > 50.0

    def test_transmission_radius_100m(self):
        sc = uci_campus()
        assert all(ap.radio_range_m == 100.0 for ap in sc.world.access_points)

    def test_aps_snapped_to_grid_points(self):
        sc = uci_campus(snap_aps_to_lattice=True)
        for ap in sc.world.access_points:
            snapped_center = sc.grid.point_at(sc.grid.snap(ap.position))
            assert ap.position.distance_to(snapped_center) < 1e-9

    def test_unsnapped_aps_stay_off_grid(self):
        from repro.geo.points import Point

        custom = [
            Point(61.3, 37.2), Point(150.8, 30.1), Point(244.2, 41.7),
            Point(271.1, 96.4), Point(263.9, 149.2), Point(186.5, 151.3),
            Point(104.4, 148.8), Point(31.2, 93.9),
        ]
        sc = uci_campus(snap_aps_to_lattice=False, ap_positions=custom)
        assert sc.world.ap_positions() == custom

    def test_lattice_length_override(self):
        sc = uci_campus(lattice_length_m=4.0)
        assert sc.grid.lattice_length == 4.0
        assert sc.grid.n_points > uci_campus().grid.n_points

    def test_route_inside_area(self):
        sc = uci_campus()
        for waypoint in sc.route.waypoints:
            assert sc.area.contains(waypoint)

    def test_aps_within_reach_of_route(self):
        # Every AP must be audible from some point of the driving loop,
        # otherwise drive-by sensing cannot find it.
        sc = uci_campus()
        samples = sc.route.sample_uniform(200)
        for ap in sc.world.access_points:
            assert any(
                ap.position.distance_to(p) <= ap.radio_range_m for p in samples
            )


class TestTestbedCampus:
    def test_paper_parameters(self):
        sc = build_testbed()
        assert len(sc.world) == 6
        assert sc.area.width == 100.0 and sc.area.height == 100.0
        assert sc.grid.lattice_length == 10.0
        assert all(ap.radio_range_m == 30.0 for ap in sc.world.access_points)

    def test_channels_differ_in_tx_power(self):
        assert TESTBED_CHANNEL.tx_power_dbm < UCI_CHANNEL.tx_power_dbm

    def test_two_colocated_nodes(self):
        # Two Open-Mesh nodes share the Graduate Division Office.
        sc = build_testbed()
        close_pairs = 0
        aps = sc.world.access_points
        for i in range(len(aps)):
            for j in range(i + 1, len(aps)):
                if aps[i].position.distance_to(aps[j].position) < 15.0:
                    close_pairs += 1
        assert close_pairs == 1


class TestRandomDeployment:
    def test_ap_count(self):
        sc = random_deployment(10, rng=0)
        assert len(sc.world) == 10

    def test_fig8_grid_size(self):
        # 250 m / 8 m ≈ 32 cells per side ≈ 1024 points (paper: N = 900
        # usable grid points).
        sc = random_deployment(10, rng=0)
        assert 900 <= sc.grid.n_points <= 1100

    def test_reproducible(self):
        a = random_deployment(5, rng=42)
        b = random_deployment(5, rng=42)
        assert a.world.ap_positions() == b.world.ap_positions()

    def test_snap_option(self):
        sc = random_deployment(5, rng=1, snap_aps_to_lattice=True)
        for ap in sc.world.access_points:
            center = sc.grid.point_at(sc.grid.snap(ap.position))
            assert ap.position.distance_to(center) < 1e-9

    def test_aps_inside_area(self):
        sc = random_deployment(20, rng=3)
        assert all(sc.area.contains(p) for p in sc.world.ap_positions())

    def test_custom_area_and_lattice(self):
        sc = random_deployment(
            4, area_side_m=100.0, lattice_length_m=5.0, rng=0
        )
        assert sc.area.width == 100.0
        assert sc.grid.lattice_length == 5.0
