"""Scalar ↔ vectorized equivalence of the world/propagation layer.

The batched kernel (:meth:`World.rss_matrix`) and the spatial index
behind :meth:`World.audible_aps` are pure optimizations: these tests pin
down that they agree with the scalar reference paths exactly — bitwise
for the arithmetic, element-for-element for the audibility sets.
"""

import numpy as np
import pytest

from repro.geo.points import BoundingBox, Point
from repro.geo.spatialindex import GridBucketIndex
from repro.radio.pathloss import PathLossModel
from repro.sim.world import AccessPoint, World, place_aps_randomly
from repro.util.rng import ensure_rng


def _random_world(seed, *, n_aps=60, side=500.0, radio_range_m=80.0):
    aps = place_aps_randomly(
        n_aps,
        BoundingBox(0, 0, side, side),
        min_separation_m=5.0,
        radio_range_m=radio_range_m,
        rng=seed,
    )
    return World(access_points=aps, channel=PathLossModel(shadowing_sigma_db=3.0))


def _random_points(seed, n, side=500.0):
    rng = ensure_rng(seed)
    return [
        Point(float(x), float(y))
        for x, y in rng.uniform(-20.0, side + 20.0, size=(n, 2))
    ]


class TestRssMatrix:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_mean_rss_bitwise_equals_scalar_path(self, seed):
        world = _random_world(seed)
        points = _random_points(seed + 100, 40)
        field = world.rss_matrix(points)
        for row, point in enumerate(points):
            for col, ap in enumerate(world.access_points):
                scalar = world.mean_rss_from(ap.ap_id, point)
                assert field.mean_rss_dbm[row, col] == scalar  # bitwise
                assert field.distances_m[row, col] == ap.position.distance_to(
                    point
                )

    def test_audibility_mask_matches_in_range(self):
        world = _random_world(7)
        points = _random_points(8, 50)
        field = world.rss_matrix(points)
        for row, point in enumerate(points):
            for col, ap in enumerate(world.access_points):
                assert bool(field.audible[row, col]) == ap.in_range(point)

    def test_max_distance_mask(self):
        world = _random_world(3)
        points = _random_points(4, 30)
        radius = 50.0
        field = world.rss_matrix(points, max_distance_m=radius)
        for row, point in enumerate(points):
            for col, ap in enumerate(world.access_points):
                expected = ap.in_range(point) and (
                    ap.position.distance_to(point) <= radius
                )
                assert bool(field.audible[row, col]) == expected

    def test_audible_indices_rows(self):
        world = _random_world(11)
        points = _random_points(12, 20)
        field = world.rss_matrix(points)
        for row in range(len(points)):
            expected = [
                col
                for col in range(len(world.access_points))
                if field.audible[row, col]
            ]
            assert field.audible_indices(row).tolist() == expected

    def test_empty_positions(self):
        world = _random_world(5)
        field = world.rss_matrix([])
        assert field.mean_rss_dbm.shape == (0, len(world))


class TestSpatialIndexAudibility:
    @pytest.mark.parametrize("seed", [0, 5, 9])
    def test_audible_aps_matches_brute_force(self, seed):
        world = _random_world(seed, n_aps=80)
        for point in _random_points(seed + 50, 60):
            fast = world.audible_aps(point)
            brute = [ap for ap in world.access_points if ap.in_range(point)]
            assert fast == brute  # same APs, same deployment order

    def test_inclusive_boundary(self):
        world = World(
            access_points=[
                AccessPoint(ap_id="a", position=Point(0, 0), radio_range_m=10.0)
            ]
        )
        assert [ap.ap_id for ap in world.audible_aps(Point(10.0, 0.0))] == ["a"]
        assert world.audible_aps(Point(10.0 + 1e-9, 0.0)) == []

    def test_query_matches_brute_force(self):
        rng = ensure_rng(21)
        coords = rng.uniform(0.0, 300.0, size=(200, 2))
        index = GridBucketIndex(coords, 40.0)
        for x, y, radius in rng.uniform(0.0, 300.0, size=(25, 3)):
            radius = float(radius) / 3.0
            deltas = coords - (x, y)
            expected = np.flatnonzero(
                np.sqrt(deltas[:, 0] ** 2 + deltas[:, 1] ** 2) <= radius
            )
            got = index.query(float(x), float(y), radius)
            assert got.tolist() == expected.tolist()
            # candidates() is a superset of the exact result.
            assert set(expected.tolist()) <= set(
                index.candidates(float(x), float(y), radius).tolist()
            )


class TestVectorizedSeparation:
    def test_minimum_separation_matches_pairwise_loop(self):
        world = _random_world(13, n_aps=40)
        positions = world.ap_positions()
        expected = min(
            positions[i].distance_to(positions[j])
            for i in range(len(positions))
            for j in range(len(positions))
            if i != j
        )
        assert world.minimum_ap_separation() == expected

    def test_degenerate_counts(self):
        assert World().minimum_ap_separation() == float("inf")
        one = World(
            access_points=[AccessPoint(ap_id="a", position=Point(0, 0))]
        )
        assert one.minimum_ap_separation() == float("inf")

    def test_placement_respects_separation_and_is_seed_stable(self):
        box = BoundingBox(0, 0, 400, 400)
        first = place_aps_randomly(30, box, min_separation_m=25.0, rng=99)
        again = place_aps_randomly(30, box, min_separation_m=25.0, rng=99)
        assert [ap.position for ap in first] == [ap.position for ap in again]
        world = World(access_points=first)
        assert world.minimum_ap_separation() >= 25.0
