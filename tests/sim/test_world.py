"""Tests for the simulated world of APs."""

import numpy as np
import pytest

from repro.geo.points import BoundingBox, Point
from repro.radio.pathloss import PathLossModel
from repro.sim.world import (
    AccessPoint,
    World,
    place_aps_randomly,
    snap_aps_to_grid,
)


@pytest.fixture
def world():
    channel = PathLossModel(shadowing_sigma_db=0.0)
    return World(
        access_points=[
            AccessPoint(ap_id="a", position=Point(0, 0), radio_range_m=50.0),
            AccessPoint(ap_id="b", position=Point(100, 0), radio_range_m=50.0),
        ],
        channel=channel,
    )


class TestAccessPoint:
    def test_in_range(self):
        ap = AccessPoint(ap_id="x", position=Point(0, 0), radio_range_m=10.0)
        assert ap.in_range(Point(10, 0))
        assert not ap.in_range(Point(10.1, 0))

    def test_validation(self):
        with pytest.raises(ValueError):
            AccessPoint(ap_id="", position=Point(0, 0))
        with pytest.raises(ValueError):
            AccessPoint(ap_id="x", position=Point(0, 0), radio_range_m=0.0)


class TestWorld:
    def test_len_and_lookup(self, world):
        assert len(world) == 2
        assert world.ap("a").position == Point(0, 0)

    def test_unknown_ap(self, world):
        with pytest.raises(KeyError):
            world.ap("zz")

    def test_duplicate_ids_rejected(self):
        ap = AccessPoint(ap_id="a", position=Point(0, 0))
        with pytest.raises(ValueError):
            World(access_points=[ap, ap])

    def test_audible_aps(self, world):
        assert [a.ap_id for a in world.audible_aps(Point(10, 0))] == ["a"]
        assert [a.ap_id for a in world.audible_aps(Point(50, 0))] == ["a", "b"]
        assert world.audible_aps(Point(200, 200)) == []

    def test_mean_rss_decreases_with_distance(self, world):
        near = world.mean_rss_from("a", Point(5, 0))
        far = world.mean_rss_from("a", Point(40, 0))
        assert near > far

    def test_sample_rss_deterministic_without_shadowing(self, world):
        a = world.sample_rss_from("a", Point(10, 0), rng=1)
        b = world.sample_rss_from("a", Point(10, 0), rng=2)
        assert a == b

    def test_bounding_box(self, world):
        box = world.bounding_box(margin=10.0)
        assert box == BoundingBox(-10, -10, 110, 10)

    def test_bounding_box_empty_world(self):
        with pytest.raises(ValueError):
            World(access_points=[]).bounding_box()

    def test_minimum_separation(self, world):
        assert world.minimum_ap_separation() == pytest.approx(100.0)

    def test_minimum_separation_single_ap(self):
        w = World(access_points=[AccessPoint(ap_id="a", position=Point(0, 0))])
        assert w.minimum_ap_separation() == float("inf")


class TestRandomPlacement:
    def test_count_and_bounds(self):
        box = BoundingBox(0, 0, 100, 100)
        aps = place_aps_randomly(10, box, rng=0)
        assert len(aps) == 10
        assert all(box.contains(ap.position) for ap in aps)

    def test_min_separation_respected(self):
        box = BoundingBox(0, 0, 200, 200)
        aps = place_aps_randomly(8, box, min_separation_m=40.0, rng=1)
        for i in range(len(aps)):
            for j in range(i + 1, len(aps)):
                assert aps[i].position.distance_to(aps[j].position) >= 40.0

    def test_infeasible_density_raises(self):
        box = BoundingBox(0, 0, 10, 10)
        with pytest.raises(RuntimeError):
            place_aps_randomly(
                50, box, min_separation_m=9.0, rng=0, max_attempts=200
            )

    def test_unique_ids(self):
        aps = place_aps_randomly(5, BoundingBox(0, 0, 100, 100), rng=2)
        assert len({ap.ap_id for ap in aps}) == 5

    def test_negative_count(self):
        with pytest.raises(ValueError):
            place_aps_randomly(-1, BoundingBox(0, 0, 10, 10))

    def test_reproducible(self):
        box = BoundingBox(0, 0, 100, 100)
        a = place_aps_randomly(4, box, rng=7)
        b = place_aps_randomly(4, box, rng=7)
        assert [ap.position for ap in a] == [ap.position for ap in b]


class TestSnapToGrid:
    def test_moves_to_nearest_center(self):
        coords = np.array([[5.0, 5.0], [15.0, 5.0]])
        aps = [AccessPoint(ap_id="a", position=Point(6.0, 4.0))]
        snapped = snap_aps_to_grid(aps, coords)
        assert snapped[0].position == Point(5.0, 5.0)

    def test_preserves_id_and_range(self):
        coords = np.array([[0.0, 0.0]])
        aps = [AccessPoint(ap_id="keep", position=Point(1, 1), radio_range_m=42.0)]
        snapped = snap_aps_to_grid(aps, coords)
        assert snapped[0].ap_id == "keep"
        assert snapped[0].radio_range_m == 42.0

    def test_bad_coordinates_shape(self):
        with pytest.raises(ValueError):
            snap_aps_to_grid([], np.zeros((3,)))
