"""Tests for the command-line experiment runner."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["fig5"])
        assert args.experiment == "fig5"
        assert args.trials is None
        assert args.seed == 2014
        assert args.csv_dir is None
        assert args.shards == 1

    def test_overrides(self, tmp_path):
        args = build_parser().parse_args(
            ["fig7a", "--trials", "5", "--seed", "9", "--csv-dir", str(tmp_path)]
        )
        assert args.trials == 5
        assert args.seed == 9
        assert args.csv_dir == tmp_path

    def test_shards_flag(self):
        args = build_parser().parse_args(["city-scale", "--shards", "4"])
        assert args.shards == 4


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_unknown_experiment(self, capsys):
        assert main(["nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_runs_fig7a_quickly(self, capsys):
        assert main(["fig7a", "--trials", "2", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "workers_per_task" in out
        assert "crowdwifi" in out

    def test_csv_output(self, tmp_path, capsys):
        assert main(
            ["fig7b", "--trials", "2", "--csv-dir", str(tmp_path)]
        ) == 0
        files = list(tmp_path.glob("fig7b_*.csv"))
        assert len(files) == 1
        content = files[0].read_text()
        assert content.startswith("tasks_per_worker,")
        assert len(content.splitlines()) == 6  # header + 5 sweep points

    def test_bad_trials(self):
        with pytest.raises(SystemExit):
            main(["fig7a", "--trials", "0"])

    def test_bad_shards(self):
        with pytest.raises(SystemExit):
            main(["city-scale", "--shards", "0"])

    def test_every_registered_name_is_runnable_signature(self):
        # Each registry entry is (description, runner); runners accept
        # (trials, seed) — verified by introspection, not execution.
        for name, (description, runner) in EXPERIMENTS.items():
            assert isinstance(description, str) and description
            assert callable(runner)


class TestStreamFlag:
    def test_default_off(self):
        args = build_parser().parse_args(["fig8c"])
        assert args.stream is False

    def test_parsed(self):
        args = build_parser().parse_args(["fig8a", "--stream"])
        assert args.stream is True

    def test_rejected_for_non_online_harness(self):
        with pytest.raises(SystemExit, match="online-CS"):
            main(["fig7a", "--trials", "2", "--stream"])

    def test_accepted_by_online_harnesses_signature(self):
        # fig8a/fig8c advertise the streaming route; the runner forwards
        # stream=True without raising (full runs are exercised in the
        # experiments suite — here we only check flag plumbing).
        import inspect

        from repro.experiments import run_fig8_measurements, run_fig8_sparsity

        for fn in (run_fig8_sparsity, run_fig8_measurements):
            assert "stream" in inspect.signature(fn).parameters


class TestTransportFlags:
    def test_defaults(self):
        args = build_parser().parse_args(["city-scale"])
        assert args.transport == "inprocess"
        assert args.durable_dir is None

    def test_transport_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["city-scale", "--transport", "udp"])

    def test_transport_rejected_for_non_campaign_harness(self):
        with pytest.raises(SystemExit, match="campaign"):
            main(["fig7a", "--trials", "2", "--transport", "tcp"])

    def test_durable_dir_rejected_for_non_campaign_harness(self, tmp_path):
        with pytest.raises(SystemExit, match="campaign"):
            main(["fig7a", "--trials", "2", "--durable-dir", str(tmp_path)])

    @pytest.mark.slow
    def test_city_scale_over_tcp_with_journal(self, tmp_path, capsys):
        assert main(
            [
                "city-scale",
                "--trials", "1",
                "--transport", "tcp",
                "--durable-dir", str(tmp_path / "journal"),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "City-scale campaign" in out
        # One journal subdirectory per (fleet size, trial) campaign.
        journals = sorted(
            p.name for p in (tmp_path / "journal").iterdir()
        )
        assert journals == [
            "fleet-2-trial-0", "fleet-4-trial-0", "fleet-6-trial-0"
        ]
        assert (
            tmp_path / "journal" / "fleet-2-trial-0" / "router" / "wal.jsonl"
        ).exists()
