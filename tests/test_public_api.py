"""Public-API consistency: every ``__all__`` name exists and is importable."""

import importlib
import inspect

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.baselines",
    "repro.core",
    "repro.crowd",
    "repro.geo",
    "repro.handoff",
    "repro.metrics",
    "repro.middleware",
    "repro.mobility",
    "repro.radio",
    "repro.sim",
    "repro.util",
    "repro.experiments",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_package_imports(name):
    module = importlib.import_module(name)
    assert module is not None


@pytest.mark.parametrize("name", PACKAGES)
def test_all_names_resolve(name):
    module = importlib.import_module(name)
    for symbol in getattr(module, "__all__", []):
        assert hasattr(module, symbol), f"{name}.__all__ lists missing {symbol!r}"


@pytest.mark.parametrize("name", PACKAGES)
def test_public_callables_have_docstrings(name):
    module = importlib.import_module(name)
    for symbol in getattr(module, "__all__", []):
        obj = getattr(module, symbol)
        if inspect.isfunction(obj) or inspect.isclass(obj):
            assert inspect.getdoc(obj), f"{name}.{symbol} lacks a docstring"


def test_version_string():
    assert repro.__version__.count(".") == 2


def test_subpackage_modules_have_docstrings():
    import pkgutil

    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        if not hasattr(package, "__path__"):
            continue
        for info in pkgutil.iter_modules(package.__path__):
            module = importlib.import_module(f"{package_name}.{info.name}")
            assert module.__doc__, f"{module.__name__} lacks a module docstring"
