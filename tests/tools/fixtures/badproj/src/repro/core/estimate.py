"""Seeded CW101 (cross-module entropy reach) and CW102 (upward import).

``solve`` promises determinism (it takes ``rng``) but reaches
``crowd.noise:noise_floor``'s unseeded ``ensure_rng()`` through a
two-hop call chain; the ``repro.runtime`` import is an upward edge
against the layer DAG.  ``ping``/``pong`` form a call-graph cycle with
no entropy — the reachability walk must terminate without a finding.
"""

from repro.crowd.noise import noise_floor
from repro.runtime import driver


def solve(rng, grid):
    return _refine(grid)


def _refine(grid):
    return grid, noise_floor()


def ping(seed):
    return pong(seed)


def pong(seed):
    return ping(seed)


def attach(state):
    return driver.Driver(state)
