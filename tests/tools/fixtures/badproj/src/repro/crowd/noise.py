"""Seeded CW101 sink: fresh entropy minted outside util/rng.py."""

from repro.util.rng import ensure_rng


def noise_floor():
    generator = ensure_rng()
    return generator
