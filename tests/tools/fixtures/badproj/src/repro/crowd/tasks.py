"""Seeded CW101 closure-capture cases, with fixed counterparts.

``label_rounds_bad`` and ``relabel_bad`` capture the parent generator
in a callable submitted to the parallel driver; the ``_fixed``
versions pre-spawn child generators and pass one per task as an
argument, which is the sanctioned pattern and must not be flagged.
"""

from repro.util.parallel import run_tasks
from repro.util.rng import spawn_children


def label_rounds_bad(rng, tasks):
    return run_tasks(lambda task: rng.random() + task, tasks)


def relabel_bad(parent_rng, tasks):
    def work(task):
        return parent_rng.random() + task

    return run_tasks(work, tasks)


def label_rounds_fixed(rng, tasks):
    children = spawn_children(rng, len(tasks))
    return run_tasks(_label_one, list(zip(children, tasks)))


def relabel_fixed(rng, tasks):
    children = spawn_children(rng, len(tasks))

    def work(index):
        return children[index].random()

    return run_tasks(work, range(len(tasks)))


def _label_one(pair):
    child, task = pair
    return child.random() + task
