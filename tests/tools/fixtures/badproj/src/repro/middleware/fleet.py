"""Seeded CW103 raw wire dict, plus the two exempt edge kinds.

The ``TYPE_CHECKING`` import of the runtime driver is annotation-only
and must not create a layering edge; the deferred scheduler import in
``drive`` matches the default manifest's allowlist entry.
"""

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.runtime.driver import Driver


def announce(transport):
    body = {"type": "hello", "payload": 1}
    return transport.request(body)


def drive():
    from repro.runtime.scheduler import run

    return run()
