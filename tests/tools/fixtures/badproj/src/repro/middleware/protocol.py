"""Seeded CW103 codec: incomplete encoder/decoder registration.

``StatusPing`` is a union member with no decoder branch; ``ByeRequest``
is registered in ``_MESSAGE_TYPES`` but missing from the union.
``HelloRequest`` is fully registered and must not be flagged.
"""

from typing import Union


class HelloRequest:
    pass


class StatusPing:
    pass


class ByeRequest:
    pass


ProtocolMessage = Union[HelloRequest, StatusPing]

_MESSAGE_TYPES = {
    "hello": HelloRequest,
    "ping": StatusPing,
    "bye": ByeRequest,
}


def _body_of(message):
    if isinstance(message, HelloRequest):
        return {}
    if isinstance(message, StatusPing):
        return {}
    raise TypeError(type(message).__name__)


def _rebuild(cls, body):
    if cls is HelloRequest:
        return HelloRequest()
    raise TypeError(cls.__name__)
