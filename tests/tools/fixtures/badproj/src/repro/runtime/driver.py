"""Seeded CW104 spans: one dynamic name, one undocumented prefix.

``publish`` uses a static name under a documented family and must not
be flagged.
"""


class Driver:
    def __init__(self, recorder):
        self.recorder = recorder

    def step(self, name):
        with self.recorder.span(f"scheduler.{name}"):
            return name

    def open_round(self):
        with self.recorder.span("rounds.open"):
            return 1

    def publish(self):
        with self.recorder.span("scheduler.publish"):
            return 2
