"""Target of the allowlisted middleware -> runtime back-edge."""


def run():
    return 0
