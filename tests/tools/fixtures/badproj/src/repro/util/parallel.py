"""Parallel driver stubs (mirror repro/util/parallel.py signatures)."""


def run_tasks(fn, tasks, n_workers=None):
    return [fn(task) for task in tasks]


def run_recorded_tasks(fn, tasks, recorder=None, n_workers=None):
    return [fn(task) for task in tasks]
