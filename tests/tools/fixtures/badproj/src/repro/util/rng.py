"""Entropy home of the fixture project (mirrors repro/util/rng.py).

This module is the one place allowed to mint generators, so nothing in
here may be flagged by CW101.
"""


def default_rng():
    return object()


def ensure_rng(rng=None):
    if rng is None:
        return default_rng()
    return rng


def spawn_children(rng, n):
    return [rng for _ in range(n)]
