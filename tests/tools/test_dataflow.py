"""Whole-program CW1xx rules over the seeded fixture tree.

``tests/tools/fixtures/badproj`` is a miniature project (same package
names as the real tree, so the default layer manifest applies) with one
seeded violation per rule — and, next to each, the fixed counterpart
that must stay silent.
"""

from pathlib import Path

import pytest

from repro.tools.dataflow import (
    DEFAULT_MANIFEST,
    LayerManifest,
    PROJECT_RULES,
    analyze_project,
    check_project,
)
from repro.tools.graph import ProjectGraph

REPO_ROOT = Path(__file__).resolve().parents[2]
BADPROJ = Path(__file__).resolve().parent / "fixtures" / "badproj"


@pytest.fixture(scope="module")
def findings():
    return analyze_project(BADPROJ / "src", root=BADPROJ)


def by_rule(findings, rule):
    return [f for f in findings if f.rule == rule]


class TestCW101:
    def test_entropy_reach_reports_cross_module_chain(self, findings):
        hits = [
            f
            for f in by_rule(findings, "CW101")
            if f.path == "src/repro/core/estimate.py"
        ]
        assert len(hits) == 1
        message = hits[0].message
        # evidence chain: def site -> call path -> violation site
        assert "core.estimate:solve" in message
        assert "->" in message
        assert "crowd.noise:noise_floor" in message
        assert "src/repro/crowd/noise.py" in message

    def test_call_graph_cycle_terminates_without_finding(self, findings):
        # ping/pong take `seed` and recurse forever; no entropy reached
        assert not any(
            "ping" in f.message or "pong" in f.message
            for f in by_rule(findings, "CW101")
        )

    def test_closure_captured_rng_in_run_tasks_is_flagged(self, findings):
        tasks_hits = [
            f
            for f in by_rule(findings, "CW101")
            if f.path == "src/repro/crowd/tasks.py"
        ]
        assert len(tasks_hits) == 2
        lambda_hit, def_hit = tasks_hits
        assert "lambda" in lambda_hit.message
        assert "'rng'" in lambda_hit.message
        assert "spawn_children" in lambda_hit.message
        assert "'parent_rng'" in def_hit.message

    def test_pre_spawned_children_counterpart_is_clean(self, findings):
        assert not any(
            "fixed" in f.message for f in by_rule(findings, "CW101")
        )


class TestCW102:
    def test_upward_import_reports_both_layers(self, findings):
        hits = by_rule(findings, "CW102")
        assert len(hits) == 1
        hit = hits[0]
        assert hit.path == "src/repro/core/estimate.py"
        assert "'domain'" in hit.message and "'runtime'" in hit.message
        assert "repro.runtime.driver" in hit.message

    def test_type_checking_import_creates_no_edge(self, findings):
        # fleet's TYPE_CHECKING import of runtime.driver is exempt
        assert not any(
            f.path == "src/repro/middleware/fleet.py"
            for f in by_rule(findings, "CW102")
        )

    def test_allowlisted_back_edge_is_sanctioned(self, findings):
        # fleet's deferred import of runtime.scheduler is allowlisted
        assert (
            "repro.middleware.fleet",
            "repro.runtime.scheduler",
        ) in DEFAULT_MANIFEST.allowed_back_edges
        assert not any(
            "repro.runtime.scheduler" in f.message
            for f in by_rule(findings, "CW102")
        )

    def test_without_allowlist_the_back_edge_fires(self):
        strict = LayerManifest(layers=DEFAULT_MANIFEST.layers)
        graph = ProjectGraph.build(BADPROJ / "src", rel_base=BADPROJ)
        strict_findings = check_project(graph, manifest=strict)
        assert any(
            "repro.runtime.scheduler" in f.message
            and "(deferred import)" in f.message
            for f in by_rule(strict_findings, "CW102")
        )

    def test_unassigned_package_is_reported(self, tmp_path):
        package = tmp_path / "src" / "repro" / "mystery"
        package.mkdir(parents=True)
        (tmp_path / "src" / "repro" / "__init__.py").write_text("")
        (package / "__init__.py").write_text("")
        (package / "thing.py").write_text("x = 1\n")
        findings = analyze_project(tmp_path / "src", root=tmp_path)
        assert any(
            f.rule == "CW102" and "'mystery'" in f.message
            for f in findings
        )


class TestCW103:
    def test_union_member_without_decoder_is_flagged(self, findings):
        hits = [
            f
            for f in by_rule(findings, "CW103")
            if "StatusPing" in f.message
        ]
        assert len(hits) == 1
        assert "decoder branch" in hits[0].message
        assert hits[0].path == "src/repro/middleware/protocol.py"

    def test_registered_type_missing_from_union_is_flagged(self, findings):
        assert any(
            "ByeRequest" in f.message and "union member" in f.message
            for f in by_rule(findings, "CW103")
        )

    def test_fully_registered_member_is_clean(self, findings):
        assert not any(
            "HelloRequest" in f.message for f in by_rule(findings, "CW103")
        )

    def test_raw_wire_dict_in_fleet_is_flagged(self, findings):
        hits = [
            f
            for f in by_rule(findings, "CW103")
            if f.path == "src/repro/middleware/fleet.py"
        ]
        assert len(hits) == 1
        assert "'type' key" in hits[0].message
        # the evidence points at the codec module to use instead
        assert "src/repro/middleware/protocol.py" in hits[0].message


class TestCW104:
    def test_dynamic_span_name_is_flagged(self, findings):
        assert any(
            "f-string" in f.message
            and f.path == "src/repro/runtime/driver.py"
            for f in by_rule(findings, "CW104")
        )

    def test_undocumented_prefix_is_flagged(self, findings):
        assert any(
            "'rounds.open'" in f.message
            for f in by_rule(findings, "CW104")
        )

    def test_documented_static_span_is_clean(self, findings):
        assert not any(
            "scheduler.publish" in f.message
            for f in by_rule(findings, "CW104")
        )


class TestSuppression:
    def test_disable_flag_drops_a_whole_rule(self):
        findings = analyze_project(
            BADPROJ / "src", root=BADPROJ, disabled={"CW104"}
        )
        assert not by_rule(findings, "CW104")
        assert by_rule(findings, "CW101")

    def test_line_pragma_suppresses_project_finding(self, tmp_path):
        self._write_span_module(
            tmp_path,
            "def step(recorder, name):\n"
            "    with recorder.span(f'x.{name}'):  # crowdlint: disable=CW104\n"
            "        return name\n",
        )
        assert analyze_project(tmp_path / "src", root=tmp_path) == []

    def test_file_pragma_suppresses_project_finding(self, tmp_path):
        self._write_span_module(
            tmp_path,
            "# crowdlint: disable-file=CW104\n"
            "def step(recorder, name):\n"
            "    with recorder.span(f'x.{name}'):\n"
            "        return name\n",
        )
        assert analyze_project(tmp_path / "src", root=tmp_path) == []

    @staticmethod
    def _write_span_module(tmp_path, source):
        package = tmp_path / "src" / "repro" / "runtime"
        package.mkdir(parents=True)
        (tmp_path / "src" / "repro" / "__init__.py").write_text("")
        (package / "__init__.py").write_text("")
        (package / "driver.py").write_text(source)


class TestMetadata:
    def test_project_rules_cover_the_cw1xx_family(self):
        assert [rule.rule_id for rule in PROJECT_RULES] == [
            "CW101",
            "CW102",
            "CW103",
            "CW104",
        ]

    def test_manifest_chain_is_bottom_up(self):
        assert DEFAULT_MANIFEST.chain() == (
            "foundation -> domain -> middleware -> runtime -> apps"
        )
        assert DEFAULT_MANIFEST.package_layers()["util"] == "foundation"
        assert DEFAULT_MANIFEST.package_layers()["cli"] == "apps"


class TestRealTree:
    def test_repository_project_tier_is_clean(self):
        findings = analyze_project(REPO_ROOT / "src", root=REPO_ROOT)
        rendered = "\n".join(f.format() for f in findings)
        assert findings == [], f"project tier found violations:\n{rendered}"
