"""Edge cases of the project graph engine (repro.tools.graph).

Each test writes a minimal package tree to ``tmp_path`` and builds a
:class:`ProjectGraph` over it — nothing is ever imported, so the
fixture modules are free to reference undefined names.
"""

import time
from pathlib import Path

import pytest

from repro.tools.graph import ProjectGraph

REPO_ROOT = Path(__file__).resolve().parents[2]


def write_tree(root, files):
    """Materialise ``{relative path: source}`` under ``root/src``."""
    for rel, source in files.items():
        path = root / "src" / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    return root / "src"


@pytest.fixture
def build(tmp_path):
    def _build(files):
        return ProjectGraph.build(write_tree(tmp_path, files))

    return _build


class TestImports:
    def test_star_import_creates_star_edge_and_resolves_symbols(self, build):
        graph = build(
            {
                "repro/__init__.py": "",
                "repro/a.py": "def shared():\n    return 1\n",
                "repro/b.py": "from repro.a import *\n\n\ndef g():\n    return shared()\n",
            }
        )
        edge = next(e for e in graph.import_edges() if e.src == "repro.b")
        assert edge.star and edge.dst == "repro.a"
        resolution = graph.resolve_name("repro.b", "shared")
        assert resolution is not None
        assert resolution.target == "repro.a:shared"
        assert [e.callee for e in graph.callees("repro.b:g")] == [
            "repro.a:shared"
        ]

    def test_relative_imports_resolve_against_the_package(self, build):
        graph = build(
            {
                "repro/__init__.py": "",
                "repro/util/__init__.py": "",
                "repro/util/helpers.py": "def h():\n    return 0\n",
                "repro/core/__init__.py": "",
                "repro/core/a.py": "def f():\n    return 1\n",
                "repro/core/b.py": (
                    "from .a import f\n"
                    "from ..util import helpers\n"
                    "\n"
                    "\n"
                    "def g():\n"
                    "    return f() + helpers.h()\n"
                ),
            }
        )
        destinations = {
            e.dst for e in graph.import_edges() if e.src == "repro.core.b"
        }
        assert destinations == {"repro.core.a", "repro.util.helpers"}
        callees = {e.callee for e in graph.callees("repro.core.b:g")}
        assert callees == {"repro.core.a:f", "repro.util.helpers:h"}

    def test_type_checking_imports_are_marked_and_excluded(self, build):
        graph = build(
            {
                "repro/__init__.py": "",
                "repro/low.py": "x = 1\n",
                "repro/high.py": (
                    "from typing import TYPE_CHECKING\n"
                    "\n"
                    "if TYPE_CHECKING:\n"
                    "    from repro import low\n"
                ),
            }
        )
        edge = next(e for e in graph.import_edges() if e.src == "repro.high")
        assert edge.type_checking
        deps = graph.module_dependencies()
        assert deps["repro.high"] == set()
        deps_with = graph.module_dependencies(include_type_checking=True)
        assert deps_with["repro.high"] == {"repro.low"}

    def test_function_scoped_import_is_marked_deferred(self, build):
        graph = build(
            {
                "repro/__init__.py": "",
                "repro/low.py": "x = 1\n",
                "repro/high.py": (
                    "def g():\n"
                    "    from repro import low\n"
                    "    return low.x\n"
                ),
            }
        )
        edge = next(e for e in graph.import_edges() if e.src == "repro.high")
        assert edge.function_scoped and not edge.type_checking
        # deferred imports are still runtime edges
        assert graph.module_dependencies()["repro.high"] == {"repro.low"}


class TestCalls:
    def test_module_attribute_and_self_calls_resolve(self, build):
        graph = build(
            {
                "repro/__init__.py": "",
                "repro/a.py": (
                    "def f():\n"
                    "    return 1\n"
                    "\n"
                    "\n"
                    "class Widget:\n"
                    "    def __init__(self):\n"
                    "        self.x = 1\n"
                ),
                "repro/b.py": (
                    "import repro.a as a\n"
                    "\n"
                    "\n"
                    "class Runner:\n"
                    "    def outer(self):\n"
                    "        return self.inner() + a.f()\n"
                    "\n"
                    "    def inner(self):\n"
                    "        return a.Widget()\n"
                ),
            }
        )
        outer = {e.callee for e in graph.callees("repro.b:Runner.outer")}
        assert outer == {"repro.b:Runner.inner", "repro.a:f"}
        inner = {e.callee for e in graph.callees("repro.b:Runner.inner")}
        assert inner == {"repro.a:Widget.__init__"}

    def test_call_graph_cycle_is_representable(self, build):
        graph = build(
            {
                "repro/__init__.py": "",
                "repro/a.py": (
                    "def ping(seed):\n"
                    "    return pong(seed)\n"
                    "\n"
                    "\n"
                    "def pong(seed):\n"
                    "    return ping(seed)\n"
                ),
            }
        )
        assert [e.callee for e in graph.callees("repro.a:ping")] == [
            "repro.a:pong"
        ]
        assert [e.callee for e in graph.callees("repro.a:pong")] == [
            "repro.a:ping"
        ]


class TestRobustness:
    def test_syntax_error_skips_module_and_records_it(self, build):
        graph = build(
            {
                "repro/__init__.py": "",
                "repro/ok.py": "x = 1\n",
                "repro/broken.py": "def f(:\n",
            }
        )
        assert "repro.ok" in graph.modules
        assert "repro.broken" not in graph.modules
        assert len(graph.skipped) == 1
        assert graph.skipped[0][0].name == "broken.py"

    def test_to_dot_clusters_and_marks_edge_kinds(self, build):
        graph = build(
            {
                "repro/__init__.py": "",
                "repro/low.py": "x = 1\n",
                "repro/high.py": (
                    "from typing import TYPE_CHECKING\n"
                    "\n"
                    "if TYPE_CHECKING:\n"
                    "    from repro import low\n"
                    "\n"
                    "\n"
                    "def g():\n"
                    "    from repro import low\n"
                    "    return low.x\n"
                ),
            }
        )
        dot = graph.to_dot(layers={"low": "foundation", "high": "apps"})
        assert dot.startswith("digraph")
        assert 'label="foundation"' in dot and 'label="apps"' in dot
        assert "TYPE_CHECKING" in dot and "deferred" in dot


class TestPerformance:
    def test_full_tree_builds_in_under_five_seconds(self):
        started = time.perf_counter()
        graph = ProjectGraph.build(REPO_ROOT / "src")
        elapsed = time.perf_counter() - started
        assert len(graph.modules) > 50
        assert elapsed < 5.0, f"graph build took {elapsed:.2f}s"
