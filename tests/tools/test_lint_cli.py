"""CLI behavior of ``crowdlint``: exit codes, formats, pragmas, disables."""

import json
from pathlib import Path

import pytest

from repro.cli import main as repro_main
from repro.tools.lint import (
    _should_run_project,
    lint_source,
    main as lint_main,
)

REPO_ROOT = Path(__file__).resolve().parents[2]

BAD_MODULE = (
    "import numpy as np\n"
    "__all__ = ['f']\n"
    "\n"
    "def f(items=[]):\n"
    "    return np.random.normal(size=len(items))\n"
)


@pytest.fixture
def bad_file(tmp_path):
    path = tmp_path / "bad_module.py"
    path.write_text(BAD_MODULE)
    return path


class TestExitCodes:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "clean.py"
        path.write_text("def f():\n    return 1\n")
        assert lint_main([str(path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_violations_exit_one_with_rule_and_location(self, bad_file, capsys):
        assert lint_main([str(bad_file)]) == 1
        out = capsys.readouterr().out
        assert "CW001" in out
        assert "CW004" in out
        assert "bad_module.py:4" in out

    def test_unknown_rule_id_exits_two(self, capsys):
        assert lint_main(["--disable=CW999"]) == 2
        assert "unknown rule id" in capsys.readouterr().err

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert lint_main([str(tmp_path / "nope.py")]) == 2
        assert "no such file" in capsys.readouterr().err


class TestFormats:
    def test_json_format_is_machine_readable(self, bad_file, capsys):
        assert lint_main(["--format=json", str(bad_file)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == len(payload["findings"]) >= 2
        rules = {f["rule"] for f in payload["findings"]}
        assert {"CW001", "CW004"} <= rules
        first = payload["findings"][0]
        assert set(first) == {"path", "line", "col", "rule", "message"}

    def test_json_on_clean_tree_has_zero_count(self, tmp_path, capsys):
        path = tmp_path / "clean.py"
        path.write_text("x = 1\n")
        assert lint_main(["--format=json", str(path)]) == 0
        assert json.loads(capsys.readouterr().out)["count"] == 0

    def test_list_rules_names_all_eight(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (f"CW00{i}" for i in range(1, 9)):
            assert rule_id in out


class TestDisableFlags:
    def test_disable_silences_selected_rules(self, bad_file):
        assert lint_main(["--disable=CW001,CW004", str(bad_file)]) == 0

    def test_disable_is_repeatable(self, bad_file):
        assert (
            lint_main(["--disable=CW001", "--disable=CW004", str(bad_file)]) == 0
        )

    def test_disable_is_case_insensitive(self, bad_file):
        assert lint_main(["--disable=cw001,cw004", str(bad_file)]) == 0


class TestPragmas:
    def test_line_pragma_suppresses_named_rule(self):
        source = "def f(items=[]):  # crowdlint: disable=CW004\n    return items\n"
        assert lint_source(source, path="x.py") == []

    def test_bare_pragma_suppresses_everything_on_the_line(self):
        source = (
            "import numpy as np\n"
            "x = np.random.default_rng()  # crowdlint: disable\n"
        )
        assert lint_source(source, path="x.py") == []

    def test_pragma_for_other_rule_does_not_suppress(self):
        source = "def f(items=[]):  # crowdlint: disable=CW001\n    return items\n"
        assert any(
            f.rule == "CW004" for f in lint_source(source, path="x.py")
        )

    def test_pragma_on_other_line_does_not_suppress(self):
        source = "# crowdlint: disable=CW004\n\ndef f(items=[]):\n    return items\n"
        assert any(
            f.rule == "CW004" for f in lint_source(source, path="x.py")
        )


class TestProjectTier:
    def test_list_rules_includes_project_family(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("CW101", "CW102", "CW103", "CW104"):
            assert rule_id in out

    def test_graph_dot_dumps_layered_digraph(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        assert lint_main(["--graph-dot"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert 'label="foundation"' in out and 'label="runtime"' in out
        assert '"repro.runtime.scheduler"' in out

    def test_graph_dot_without_project_tree_exits_two(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        assert lint_main(["--graph-dot"]) == 2
        assert "no src/repro tree" in capsys.readouterr().err

    def test_project_flag_forces_the_tier(self, tmp_path, capsys):
        # the scratch file is outside src/repro, so only --project pulls
        # in the whole-program tier; the repaired tree keeps it at 0
        path = tmp_path / "clean.py"
        path.write_text("x = 1\n")
        assert lint_main(["--project", str(path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_auto_mode_runs_only_for_repo_files(self, tmp_path):
        src_root = REPO_ROOT / "src"
        repo_file = src_root / "repro" / "cli.py"
        scratch = tmp_path / "x.py"
        assert _should_run_project(None, src_root, [repo_file])
        assert not _should_run_project(None, src_root, [scratch])
        assert not _should_run_project(None, None, [repo_file])
        assert _should_run_project(True, src_root, [scratch])
        assert not _should_run_project(False, src_root, [repo_file])


class TestCliIntegration:
    def test_crowdwifi_repro_lint_subcommand(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        path = tmp_path / "clean.py"
        path.write_text("x = 1\n")
        assert repro_main(["lint", str(path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_subcommand_forwards_flags(self, capsys):
        assert repro_main(["lint", "--list-rules"]) == 0
        assert "CW001" in capsys.readouterr().out

    def test_experiment_dispatch_still_works(self, capsys):
        assert repro_main(["list"]) == 0
        assert "fig5" in capsys.readouterr().out
