"""Meta-test: the repository's own tree must be crowdlint-clean.

This is the same gate CI runs; keeping it inside tier-1 means a PR that
introduces an unseeded RNG call or drops an ``__all__`` entry fails fast
locally, without waiting for the CI workflow.
"""

from pathlib import Path

from repro.tools.lint import DEFAULT_TARGETS, lint_paths, main as lint_main

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_repository_tree_is_clean():
    targets = [REPO_ROOT / name for name in DEFAULT_TARGETS]
    targets = [t for t in targets if t.is_dir()]
    assert targets, f"no lint targets found under {REPO_ROOT}"
    findings = lint_paths(targets, root=REPO_ROOT)
    rendered = "\n".join(f.format() for f in findings)
    assert findings == [], f"crowdlint found violations:\n{rendered}"


def test_src_alone_is_clean():
    findings = lint_paths([REPO_ROOT / "src"], root=REPO_ROOT)
    assert findings == []


def test_default_cli_gate_is_clean_including_project_tier(
    capsys, monkeypatch
):
    """The exact invocation CI runs: per-file tier + whole-program tier.

    Linting from the repo root discovers ``src/repro``, which switches
    the project tier on automatically — so this asserts the CW1xx rules
    stay clean too.
    """
    monkeypatch.chdir(REPO_ROOT)
    assert lint_main([]) == 0
    assert "clean" in capsys.readouterr().out
