"""Suppression pragma semantics (repro.tools.pragmas).

The file-level ``disable-file`` pragma is new; the key contracts are
that it silences a rule for the whole module, that line pragmas keep
taking precedence, and that the two pragma shapes never shadow each
other.
"""

from repro.tools.findings import Finding
from repro.tools.lint import lint_source
from repro.tools.pragmas import apply_pragmas, parse_pragmas


def finding(line, rule):
    return Finding(path="x.py", line=line, col=1, rule=rule, message="m")


class TestParsing:
    def test_line_and_file_pragmas_are_disjoint(self):
        pragmas = parse_pragmas(
            "# crowdlint: disable-file=CW004\n"
            "x = 1  # crowdlint: disable=CW001\n"
        )
        assert pragmas.file_rules == frozenset({"CW004"})
        assert pragmas.lines == {2: frozenset({"CW001"})}

    def test_file_pragma_does_not_act_as_line_pragma(self):
        # a bare `disable` matches all rules; `disable-file=...` on a
        # line must NOT be read as that bare line pragma
        pragmas = parse_pragmas("x = 1  # crowdlint: disable-file=CW004\n")
        assert pragmas.lines == {}
        assert not pragmas.suppresses(finding(1, "CW001"))

    def test_multiple_file_pragmas_union(self):
        pragmas = parse_pragmas(
            "# crowdlint: disable-file=CW001\n"
            "# crowdlint: disable-file=CW002\n"
        )
        assert pragmas.file_rules == frozenset({"CW001", "CW002"})

    def test_bare_file_pragma_disables_everything(self):
        pragmas = parse_pragmas("# crowdlint: disable-file\n")
        assert pragmas.suppresses(finding(40, "CW007"))


class TestSuppression:
    def test_file_pragma_suppresses_anywhere_in_the_file(self):
        pragmas = parse_pragmas("# crowdlint: disable-file=CW004\n")
        assert pragmas.suppresses(finding(99, "CW004"))
        assert not pragmas.suppresses(finding(99, "CW001"))

    def test_line_pragma_takes_precedence_over_file_pragma(self):
        # the file pragma covers CW004 only; the line pragma on line 3
        # still suppresses CW001 on exactly that line
        pragmas = parse_pragmas(
            "# crowdlint: disable-file=CW004\n"
            "x = 1\n"
            "y = 2  # crowdlint: disable=CW001\n"
        )
        assert pragmas.suppresses(finding(3, "CW001"))
        assert not pragmas.suppresses(finding(2, "CW001"))
        assert pragmas.suppresses(finding(2, "CW004"))

    def test_apply_pragmas_filters_findings(self):
        pragmas = parse_pragmas("# crowdlint: disable-file=CW004\n")
        kept = apply_pragmas(
            [finding(5, "CW004"), finding(5, "CW001")], pragmas
        )
        assert [f.rule for f in kept] == ["CW001"]


class TestEndToEnd:
    def test_disable_file_silences_rule_for_whole_module(self):
        source = (
            "# crowdlint: disable-file=CW004\n"
            "def f(items=[]):\n"
            "    return items\n"
            "\n"
            "def g(extra=[]):\n"
            "    return extra\n"
        )
        assert lint_source(source, path="x.py") == []

    def test_disable_file_keeps_other_rules_firing(self):
        source = (
            "# crowdlint: disable-file=CW004\n"
            "import numpy as np\n"
            "x = np.random.default_rng()\n"
            "def f(items=[]):\n"
            "    return items\n"
        )
        rules = {f.rule for f in lint_source(source, path="x.py")}
        assert "CW004" not in rules
        assert "CW001" in rules

    def test_line_pragma_still_works_alongside_file_pragma(self):
        source = (
            "# crowdlint: disable-file=CW004\n"
            "import numpy as np\n"
            "x = np.random.default_rng()  # crowdlint: disable=CW001\n"
            "def f(items=[]):\n"
            "    return items\n"
        )
        assert lint_source(source, path="x.py") == []
