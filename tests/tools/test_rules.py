"""Positive/negative fixture pairs for every crowdlint rule.

Each rule gets at least one *bad* snippet that must trigger it and one
*good* snippet that must not.  Snippets are linted as if they lived at a
library path (``src/repro/...``) unless the rule's scoping is itself
under test.
"""

import pytest

from repro.tools.lint import lint_source
from repro.tools.rules import RULE_IDS

LIB_PATH = "src/repro/example.py"

#: Rules whose scoping needs a more specific path than the generic
#: library module (CW010 only watches core/, crowd/ and middleware/;
#: CW011 only watches the client side of the transport seam).
RULE_PATHS = {
    "CW010": "src/repro/core/example.py",
    "CW011": "src/repro/runtime/example.py",
}


def rule_ids(source: str, path: str = LIB_PATH):
    return {finding.rule for finding in lint_source(source, path=path)}


def findings_for(rule: str, source: str, path: str = LIB_PATH):
    return [f for f in lint_source(source, path=path) if f.rule == rule]


GOOD_BAD = {
    "CW001": {
        "bad": [
            "import numpy as np\n__all__ = []\nx = np.random.default_rng()\n",
            "import numpy as np\n__all__ = []\n\n"
            "def f():\n    return np.random.normal(0.0, 1.0)\n",
            "from numpy.random import default_rng\n__all__ = []\n",
            "import numpy.random as npr\n__all__ = []\nx = npr.standard_normal(3)\n",
        ],
        "good": [
            "from repro.util.rng import ensure_rng\n__all__ = ['f']\n\n"
            "def f(rng=None):\n    return ensure_rng(rng).normal()\n",
            # Type references are not entropy draws.
            "import numpy as np\n__all__ = ['is_gen']\n\n"
            "def is_gen(x):\n    return isinstance(x, np.random.Generator)\n",
        ],
    },
    "CW002": {
        "bad": [
            "import random\n__all__ = []\n",
            "from random import choice\n__all__ = []\n",
            "import random as rnd\n__all__ = []\n",
        ],
        "good": [
            # numpy.random is CW001's business, not CW002's.
            "from repro.sim.scenarios import random_deployment\n__all__ = []\n",
        ],
    },
    "CW003": {
        "bad": [
            # Declared but never threaded.
            "__all__ = ['simulate']\n\n"
            "def simulate(n, rng=None):\n    return n * 2\n",
            # Draws from the raw argument: breaks on int seeds.
            "__all__ = ['simulate']\n\n"
            "def simulate(n, rng=None):\n    return rng.normal(size=n)\n",
        ],
        "good": [
            "from repro.util.rng import ensure_rng\n__all__ = ['simulate']\n\n"
            "def simulate(n, rng=None):\n"
            "    generator = ensure_rng(rng)\n"
            "    return generator.normal(size=n)\n",
            # Explicit discard marks the function deterministic.
            "__all__ = ['layout']\n\n"
            "def layout(rng=None):\n    del rng\n    return [1, 2]\n",
            # Forwarding to a stochastic callee threads the argument.
            "__all__ = ['outer']\n\n"
            "def outer(seed=None):\n    return inner(seed=seed)\n",
            # Private helpers may receive an already-coerced Generator.
            "__all__ = []\n\n"
            "def _advance(rng):\n    return rng.random() < 0.5\n",
        ],
    },
    "CW004": {
        "bad": [
            "__all__ = ['f']\n\ndef f(items=[]):\n    return items\n",
            "__all__ = ['f']\n\ndef f(*, table={}):\n    return table\n",
            "__all__ = ['f']\n\ndef f(bag=set()):\n    return bag\n",
            "__all__ = ['f']\n\ndef f(rows=list()):\n    return rows\n",
        ],
        "good": [
            "__all__ = ['f']\n\ndef f(items=None):\n"
            "    return list(items or [])\n",
            "__all__ = ['f']\n\ndef f(pair=(1, 2), label=''):\n    return pair\n",
        ],
    },
    "CW005": {
        "bad": [
            "__all__ = ['f']\n\ndef f():\n"
            "    try:\n        g()\n    except:\n        return 1\n",
            "__all__ = ['f']\n\ndef f():\n"
            "    try:\n        g()\n    except ValueError:\n        pass\n",
            "__all__ = ['f']\n\ndef f():\n"
            "    try:\n        g()\n    except Exception:\n        return None\n",
            # the former blind spot: narrow handlers whose body is only
            # loop control or a bare/None return are just as silent
            "__all__ = ['f']\n\ndef f(items):\n"
            "    for item in items:\n        try:\n            g(item)\n"
            "        except ValueError:\n            continue\n",
            "__all__ = ['f']\n\ndef f():\n"
            "    try:\n        return g()\n    except KeyError:\n"
            "        return None\n",
            "__all__ = ['f']\n\ndef f():\n"
            "    try:\n        g()\n    except ValueError:\n        return\n",
        ],
        "good": [
            "__all__ = ['f']\n\ndef f():\n"
            "    try:\n        g()\n    except KeyError:\n"
            "        raise KeyError('missing') from None\n",
            "__all__ = ['f']\n\ndef f():\n"
            "    try:\n        return g()\n    except ValueError:\n"
            "        return fallback()\n",
            "__all__ = ['f']\n\ndef f(log):\n"
            "    try:\n        g()\n    except Exception as error:\n"
            "        log.warning('recovering: %s', error)\n        return None\n",
            "__all__ = ['f']\n\ndef f():\n"
            "    try:\n        return g()\n    except (ValueError, RuntimeError):\n"
            "        return fallback()\n",
        ],
    },
    "CW006": {
        "bad": [
            "__all__ = ['f']\n\ndef f(rss_dbm, power_mw):\n"
            "    return rss_dbm + power_mw\n",
            "__all__ = ['f']\n\ndef f(x_db):\n    return 10 ** (x_db / 10)\n",
            "__all__ = ['f']\nimport numpy as np\n\n"
            "def f(x_db):\n    return np.power(10, x_db / 10)\n",
        ],
        "good": [
            "__all__ = ['f']\n\ndef f(rss_dbm, noise_dbm):\n"
            "    return rss_dbm - noise_dbm\n",
            "__all__ = ['f']\n\ndef f(a_mw, b_mw):\n    return a_mw + b_mw\n",
        ],
    },
    "CW007": {
        "bad": [
            "def f():\n    return 1\n",
            "__all__ = ['missing']\n\ndef f():\n    return 1\n",
            "__all__ = ['f', 'f']\n\ndef f():\n    return 1\n",
            "NAMES = ['f']\n__all__ = NAMES\n\ndef f():\n    return 1\n",
        ],
        "good": [
            "__all__ = ['f', 'LIMIT']\nLIMIT = 3\n\ndef f():\n    return LIMIT\n",
            "from repro.util.rng import ensure_rng\n__all__ = ['ensure_rng']\n",
        ],
    },
    "CW008": {
        "bad": [
            "import numpy as np\n__all__ = []\nnp.random.seed(42)\n",
            "import numpy as np\n__all__ = []\nnp.seterr(all='ignore')\n",
        ],
        "good": [
            "import numpy as np\n__all__ = ['f']\n\ndef f(x):\n"
            "    with np.errstate(divide='ignore'):\n        return 1.0 / x\n",
        ],
    },
    "CW010": {
        "bad": [
            # Undocumented public function.
            "__all__ = ['f']\n\ndef f():\n    return 1\n",
            # Undocumented public class.
            "__all__ = ['Thing']\n\nclass Thing:\n    pass\n",
            # Documented class, undocumented public method.
            "__all__ = ['Thing']\n\nclass Thing:\n"
            "    '''A thing.'''\n\n"
            "    def act(self):\n        return 1\n",
        ],
        "good": [
            "__all__ = ['f']\n\ndef f():\n    '''Does f (§4.3).'''\n    return 1\n",
            # Private helpers and dunders are exempt.
            "__all__ = ['Thing']\n\nclass Thing:\n"
            "    '''A thing (§5.2).'''\n\n"
            "    def __init__(self):\n        self.x = 1\n\n"
            "    def _helper(self):\n        return self.x\n",
            "__all__ = []\n\ndef _internal():\n    return 1\n",
        ],
    },
    "CW011": {
        "bad": [
            # Reaching into a server's private round table.
            "__all__ = ['f']\n\ndef f(server):\n"
            "    return server._rounds\n",
            # Private attribute behind a call result.
            "__all__ = ['g']\n\ndef g(campaign):\n"
            "    return campaign.endpoint()._rng\n",
            # Private import from the server module.
            "from repro.middleware.server import _install_round\n"
            "__all__ = []\n",
        ],
        "good": [
            # A module's own private state is its business.
            "__all__ = ['T']\n\nclass T:\n"
            "    def __init__(self):\n        self._x = 1\n\n"
            "    def get(self):\n        return self._x\n",
            # Public surface of a foreign object is fine.
            "__all__ = ['f']\n\ndef f(server):\n"
            "    return server.database.segment_ids()\n",
            # Dunders are universal, not seam leaks.
            "__all__ = ['g']\n\ndef g(obj):\n"
            "    return type(obj).__name__\n",
            # Public imports are fine.
            "from repro.middleware.server import CrowdServer\n"
            "__all__ = ['CrowdServer']\n",
        ],
    },
    "CW009": {
        "bad": [
            # The exact shape of the seed's vehicle_order.index hot-spot.
            "__all__ = ['f']\n\ndef f(order, subs):\n"
            "    out = []\n"
            "    for sub in subs:\n"
            "        out.append(order.index(sub))\n"
            "    return out\n",
            # While loops scan too (the double-edge-swap repair shape).
            "__all__ = ['g']\n\ndef g(edges, dups):\n"
            "    while dups:\n"
            "        pair = dups.pop()\n"
            "        slot = edges.index(pair)\n"
            "    return edges\n",
        ],
        "good": [
            # Precomputed position map: O(1) per iteration.
            "__all__ = ['f']\n\ndef f(order, subs):\n"
            "    position = {v: i for i, v in enumerate(order)}\n"
            "    out = []\n"
            "    for sub in subs:\n"
            "        out.append(position[sub])\n"
            "    return out\n",
            # A single scan outside any loop is fine.
            "__all__ = ['g']\n\ndef g(order, item):\n"
            "    return order.index(item)\n",
            # String-literal receivers are not sequence scans of interest.
            "__all__ = ['h']\n\ndef h(chars):\n"
            "    return ['abc'.index(c) for c in 'ab']\n",
        ],
    },
}


@pytest.mark.parametrize(
    "rule,snippet",
    [(rule, s) for rule, pair in GOOD_BAD.items() for s in pair["bad"]],
)
def test_bad_snippet_triggers_rule(rule, snippet):
    path = RULE_PATHS.get(rule, LIB_PATH)
    assert rule in rule_ids(snippet, path=path), (
        f"{rule} should fire on:\n{snippet}"
    )


@pytest.mark.parametrize(
    "rule,snippet",
    [(rule, s) for rule, pair in GOOD_BAD.items() for s in pair["good"]],
)
def test_good_snippet_is_clean(rule, snippet):
    path = RULE_PATHS.get(rule, LIB_PATH)
    assert rule not in rule_ids(snippet, path=path), (
        f"{rule} should not fire on:\n{snippet}"
    )


def test_every_rule_has_fixture_coverage():
    assert set(GOOD_BAD) == set(RULE_IDS)


class TestScoping:
    def test_cw001_allowed_inside_util_rng(self):
        source = "import numpy as np\n__all__ = []\nx = np.random.default_rng(3)\n"
        assert "CW001" not in rule_ids(source, path="src/repro/util/rng.py")

    def test_cw006_conversion_allowed_inside_radio(self):
        source = "__all__ = ['db_to_linear']\n\n" \
                 "def db_to_linear(x_db):\n    return 10 ** (x_db / 10)\n"
        assert "CW006" not in rule_ids(source, path="src/repro/radio/convert.py")

    def test_cw007_only_applies_to_library_modules(self):
        source = "def f():\n    return 1\n"
        assert "CW007" not in rule_ids(source, path="benchmarks/bench_example.py")

    def test_cw002_only_applies_to_library_modules(self):
        source = "import random\n"
        assert "CW002" not in rule_ids(source, path="benchmarks/bench_example.py")

    def test_private_module_exempt_from_cw007(self):
        source = "def f():\n    return 1\n"
        assert "CW007" not in rule_ids(source, path="src/repro/core/_private.py")

    def test_cw010_only_watches_documented_packages(self):
        source = "__all__ = ['f']\n\ndef f():\n    return 1\n"
        # radio/ and util/ are outside the paper-facing API surface.
        assert "CW010" not in rule_ids(source, path="src/repro/radio/x.py")
        assert "CW010" not in rule_ids(source, path="src/repro/util/x.py")
        assert "CW010" in rule_ids(source, path="src/repro/crowd/x.py")
        assert "CW010" in rule_ids(source, path="src/repro/middleware/x.py")

    def test_cw011_scoped_to_seam_clients(self):
        source = "__all__ = ['f']\n\ndef f(server):\n    return server._rounds\n"
        assert "CW011" in rule_ids(source, path="src/repro/middleware/client.py")
        assert "CW011" in rule_ids(source, path="src/repro/middleware/fleet.py")
        assert "CW011" in rule_ids(source, path="src/repro/runtime/router.py")
        # The server owns its privates; generic library code is out of scope.
        assert "CW011" not in rule_ids(
            source, path="src/repro/middleware/server.py"
        )
        assert "CW011" not in rule_ids(source, path=LIB_PATH)
        assert "CW011" not in rule_ids(source, path="tests/runtime/x.py")

    def test_cw010_exempts_private_modules(self):
        source = "def f():\n    return 1\n"
        assert "CW010" not in rule_ids(
            source, path="src/repro/core/_private.py"
        )


class TestFindingLocations:
    def test_line_and_column_point_at_violation(self):
        source = "__all__ = ['f']\n\n\ndef f(items=[]):\n    return items\n"
        (finding,) = findings_for("CW004", source)
        assert finding.line == 4
        assert "mutable default" in finding.message

    def test_syntax_error_reported_as_cw000(self):
        (finding,) = lint_source("def broken(:\n", path=LIB_PATH)
        assert finding.rule == "CW000"
        assert "syntax error" in finding.message
