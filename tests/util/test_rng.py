"""Tests for deterministic RNG plumbing."""

import numpy as np
import pytest

from repro.util.rng import ensure_rng, spawn_children


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_reproducible(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).random(5)
        b = ensure_rng(2).random(5)
        assert not np.array_equal(a, b)

    def test_generator_passes_through_unchanged(self):
        g = np.random.default_rng(0)
        assert ensure_rng(g) is g

    def test_numpy_integer_seed_accepted(self):
        a = ensure_rng(np.int64(42)).random(3)
        b = ensure_rng(42).random(3)
        assert np.array_equal(a, b)

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError):
            ensure_rng("not-a-seed")

    def test_float_seed_rejected(self):
        with pytest.raises(TypeError):
            ensure_rng(3.14)


class TestSpawnChildren:
    def test_count(self):
        assert len(spawn_children(0, 5)) == 5

    def test_zero_children(self):
        assert spawn_children(0, 0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_children(0, -1)

    def test_children_are_independent(self):
        children = spawn_children(7, 3)
        streams = [c.random(10) for c in children]
        assert not np.array_equal(streams[0], streams[1])
        assert not np.array_equal(streams[1], streams[2])

    def test_children_reproducible_from_seed(self):
        a = [c.random(4) for c in spawn_children(99, 3)]
        b = [c.random(4) for c in spawn_children(99, 3)]
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_adding_trials_preserves_earlier_children(self):
        three = [c.random(4) for c in spawn_children(5, 3)]
        five = [c.random(4) for c in spawn_children(5, 5)]
        for x, y in zip(three, five[:3]):
            assert np.array_equal(x, y)
