"""Tests for the ResultTable benchmark-output helper."""

import pytest

from repro.util.tables import ResultTable


class TestConstruction:
    def test_needs_columns(self):
        with pytest.raises(ValueError):
            ResultTable([])

    def test_rejects_duplicate_columns(self):
        with pytest.raises(ValueError, match="duplicate"):
            ResultTable(["a", "a"])


class TestRows:
    def test_add_and_len(self):
        t = ResultTable(["k", "err"])
        t.add_row(k=1, err=0.5)
        t.add_row(k=2, err=0.25)
        assert len(t) == 2

    def test_missing_column_raises(self):
        t = ResultTable(["k", "err"])
        with pytest.raises(ValueError, match="missing"):
            t.add_row(k=1)

    def test_extra_column_raises(self):
        t = ResultTable(["k"])
        with pytest.raises(ValueError, match="unknown"):
            t.add_row(k=1, other=2)

    def test_column_accessor(self):
        t = ResultTable(["k", "err"])
        t.add_row(k=1, err=0.5)
        t.add_row(k=2, err=0.25)
        assert t.column("k") == [1, 2]

    def test_unknown_column_accessor(self):
        t = ResultTable(["k"])
        with pytest.raises(KeyError):
            t.column("nope")

    def test_iteration_yields_dicts(self):
        t = ResultTable(["k"])
        t.add_row(k=3)
        assert list(t) == [{"k": 3}]


class TestRender:
    def test_render_contains_title_header_and_values(self):
        t = ResultTable(["k", "err"], title="Fig. X")
        t.add_row(k=10, err=0.1234)
        text = t.render()
        assert "Fig. X" in text
        assert "k" in text and "err" in text
        assert "0.1234" in text

    def test_render_empty_table(self):
        t = ResultTable(["alpha"])
        text = t.render()
        assert "alpha" in text

    def test_floats_are_fixed_width(self):
        t = ResultTable(["v"])
        t.add_row(v=1.0 / 3.0)
        assert "0.3333" in t.render()

    def test_bools_render_as_words(self):
        t = ResultTable(["ok"])
        t.add_row(ok=True)
        assert "True" in t.render()
