"""Tests for ResultTable CSV rendering."""

import csv
import io

from repro.util.tables import ResultTable


class TestToCsv:
    def test_header_and_rows(self):
        table = ResultTable(["k", "err"])
        table.add_row(k=1, err=0.5)
        table.add_row(k=2, err=0.25)
        parsed = list(csv.reader(io.StringIO(table.to_csv())))
        assert parsed[0] == ["k", "err"]
        assert parsed[1] == ["1", "0.5"]
        assert len(parsed) == 3

    def test_empty_table(self):
        table = ResultTable(["only"])
        parsed = list(csv.reader(io.StringIO(table.to_csv())))
        assert parsed == [["only"]]

    def test_quoting_of_commas(self):
        table = ResultTable(["name"])
        table.add_row(name="a,b")
        parsed = list(csv.reader(io.StringIO(table.to_csv())))
        assert parsed[1] == ["a,b"]

    def test_roundtrip_column_order(self):
        table = ResultTable(["b", "a"])
        table.add_row(b=2, a=1)
        first_line = table.to_csv().splitlines()[0]
        assert first_line == "b,a"
