"""Tests for argument-validation helpers."""

import numpy as np
import pytest

from repro.util.validation import (
    require,
    require_in_range,
    require_positive,
    require_shape,
)


class TestRequire:
    def test_passes_silently(self):
        require(True, "never shown")

    def test_raises_with_message(self):
        with pytest.raises(ValueError, match="boom"):
            require(False, "boom")


class TestRequirePositive:
    def test_strict_accepts_positive(self):
        require_positive(0.1, "x")

    def test_strict_rejects_zero(self):
        with pytest.raises(ValueError, match="x must be > 0"):
            require_positive(0.0, "x")

    def test_nonstrict_accepts_zero(self):
        require_positive(0.0, "x", strict=False)

    def test_nonstrict_rejects_negative(self):
        with pytest.raises(ValueError):
            require_positive(-1.0, "x", strict=False)


class TestRequireInRange:
    def test_inclusive_bounds(self):
        require_in_range(0.0, "x", 0.0, 1.0)
        require_in_range(1.0, "x", 0.0, 1.0)

    def test_exclusive_rejects_bounds(self):
        with pytest.raises(ValueError):
            require_in_range(0.0, "x", 0.0, 1.0, inclusive=False)

    def test_outside_raises(self):
        with pytest.raises(ValueError, match="x must be in"):
            require_in_range(2.0, "x", 0.0, 1.0)


class TestRequireShape:
    def test_exact_shape(self):
        out = require_shape(np.zeros((3, 2)), (3, 2), "m")
        assert out.shape == (3, 2)

    def test_wildcard_axis(self):
        require_shape(np.zeros((7, 2)), (None, 2), "m")

    def test_wrong_ndim(self):
        with pytest.raises(ValueError, match="dimensions"):
            require_shape(np.zeros(3), (3, 1), "m")

    def test_wrong_extent(self):
        with pytest.raises(ValueError, match="axis 1"):
            require_shape(np.zeros((3, 5)), (3, 2), "m")

    def test_coerces_lists(self):
        out = require_shape([[1, 2], [3, 4]], (2, 2), "m")
        assert isinstance(out, np.ndarray)
